//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate provides the subset of the crossbeam API the workspace
//! uses: multi-producer channels with `Sender` values that can be shared
//! between threads by reference. Since Rust 1.72 `std::sync::mpsc` is backed
//! by the crossbeam implementation and its `Sender` is `Sync`, so a thin
//! wrapper is all that is needed.

/// Multi-producer, single-consumer FIFO channels.
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available, failing only if every sender
        /// was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a value if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::sync::Arc;

    #[test]
    fn senders_are_shareable_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx = Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(rx.recv().is_err());
    }
}
