//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object safe (via [`Strategy::generate`]) so strategies can be unioned by
/// [`crate::prop_oneof!`]; the combinator methods require `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy producing clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy choosing uniformly among several strategies of the same value
/// type. Built by [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Union<T> {
    /// Creates an empty union; generate panics until [`Union::or`] adds an
    /// option.
    pub fn new() -> Self {
        Self {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! requires at least one strategy"
        );
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
