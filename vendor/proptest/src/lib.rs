//! Offline stand-in for the `proptest` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate implements the subset of the proptest API the
//! workspace uses: the [`proptest!`] macro, range / `Just` / `prop_oneof!` /
//! `prop_map` / `collection::vec` / `sample::select` strategies, and the
//! `prop_assert*` macros. Unlike upstream proptest there is no shrinking and
//! no persistence file: cases are generated from a generator seeded
//! deterministically per test (override with the `PROPTEST_SEED` environment
//! variable), so every failure is reproducible by rerunning the test.

pub mod strategy;
pub mod test_runner;

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` namespace of upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking a uniformly random element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the generated arguments reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Builds a strategy choosing uniformly between the given strategies (which
/// must all produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` that runs its body
/// for `ProptestConfig::cases` generated argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[test] fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let args = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  with {}",
                            case + 1, config.cases, e, args
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in -5i64..=5, n in 1usize..100) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((1..100).contains(&n));
        }

        #[test]
        fn map_and_oneof_compose(p in (1u32..=6).prop_map(|s| 1usize << s), pick in prop_oneof![Just(3usize), Just(7)]) {
            prop_assert!(p.is_power_of_two());
            prop_assert!(pick == 3 || pick == 7);
        }

        #[test]
        fn collections_and_select(v in crate::collection::vec(0u32..16, 2..9), c in prop::sample::select(vec!['a', 'b'])) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 16));
            prop_assert!(c == 'a' || c == 'b');
        }
    }

    #[test]
    fn failed_assertions_become_errors() {
        let attempt = || -> Result<(), TestCaseError> {
            let x = 5u32;
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        };
        let err = attempt().unwrap_err();
        assert_eq!(err.to_string(), "x was 5");
        let eq = || -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        };
        assert!(eq().unwrap_err().to_string().contains("2 != 3"));
    }
}
