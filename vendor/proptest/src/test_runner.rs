//! Test configuration, the per-test generator and case failure reporting.

use std::fmt;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator driving strategy generation (SplitMix64).
///
/// Seeded from the test name so different tests explore different streams;
/// set `PROPTEST_SEED` to perturb every stream at once when hunting for
/// additional counterexamples.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let env_seed: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x005E_ED0F_BEEF);
        // FNV-1a over the test name, mixed with the environment seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ env_seed;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
