//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate provides the (small) subset of the rand 0.8 API the
//! workspace actually uses: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the benchmark
//! harness and tests rely on (they never depend on the exact stream of the
//! upstream `StdRng`).

/// A source of randomness: the core 64-bit generator plus the convenience
/// methods the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

/// Converts 64 random bits into a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange {
    /// The type of the sampled value.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// A generator that can be built from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place using `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
