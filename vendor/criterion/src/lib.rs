//! Offline stand-in for the `criterion` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate implements the subset of the criterion API the
//! workspace's benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!`/
//! `criterion_main!` macros and `black_box`. Measurement is a calibrated
//! batch loop reporting the median over `sample_size` samples, one line per
//! benchmark:
//!
//! ```text
//! group/name/param        time:   12345 ns/iter (10 samples)
//! ```
//!
//! Setting `CRITERION_JSON=/path/file.json` additionally appends one JSON
//! object per benchmark (`{"id": ..., "ns_per_iter": ...}`) to that file,
//! which is how `bine-bench` records execution benchmarks for `BENCH_exec.json`.
//! When invoked with `--test` (CI does `cargo test --benches -- --test`)
//! every benchmark body runs exactly once, unmeasured.

use std::fmt::Write as _;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier with a function name and a displayed parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// The measurement configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(self, name, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        run_benchmark(self.criterion, &id, f);
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}/{}", self.name, id.name, id.parameter);
        run_benchmark(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Ends the group (statistics are reported per benchmark, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    mode: BenchMode,
    /// Median nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
}

enum BenchMode {
    /// Run the body once, unmeasured (`--test`).
    Test,
    /// Measure `samples` batches after `warm_up` of warm-up.
    Measure {
        samples: usize,
        warm_up: Duration,
        budget: Duration,
    },
}

impl Bencher {
    /// Runs `body` under the configured measurement loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            BenchMode::Test => {
                hint::black_box(body());
                self.result_ns = 0.0;
            }
            BenchMode::Measure {
                samples,
                warm_up,
                budget,
            } => {
                // Warm up and estimate the cost of one iteration.
                let warm_start = Instant::now();
                let mut iters_done = 0u64;
                while warm_start.elapsed() < warm_up || iters_done == 0 {
                    hint::black_box(body());
                    iters_done += 1;
                    if iters_done >= 1_000_000 {
                        break;
                    }
                }
                let est_ns = (warm_start.elapsed().as_nanos() as f64 / iters_done as f64).max(1.0);
                // Pick a batch size so all samples fit the measurement budget.
                let budget_ns = budget.as_nanos() as f64;
                let batch =
                    ((budget_ns / samples as f64 / est_ns).floor() as u64).clamp(1, 1 << 24);
                let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..batch {
                        hint::black_box(body());
                    }
                    sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
                }
                sample_ns.sort_by(|a, b| a.total_cmp(b));
                self.result_ns = sample_ns[sample_ns.len() / 2];
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, id: &str, mut f: F) {
    let mode = if criterion.test_mode {
        BenchMode::Test
    } else {
        BenchMode::Measure {
            samples: criterion.sample_size,
            warm_up: criterion.warm_up_time,
            budget: criterion.measurement_time,
        }
    };
    let mut bencher = Bencher {
        mode,
        result_ns: 0.0,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("{id:<56} ok (--test, 1 iter)");
        return;
    }
    println!(
        "{id:<56} time: {:>12.0} ns/iter ({} samples)",
        bencher.result_ns, criterion.sample_size
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let mut line = String::new();
        let _ = writeln!(
            line,
            "{{\"id\": \"{id}\", \"ns_per_iter\": {:.1}}}",
            bencher.result_ns
        );
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_a_positive_median() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.test_mode = false;
        let mut group = c.benchmark_group("smoke");
        let mut measured = 0.0;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            measured = b.result_ns;
        });
        group.finish();
        assert!(measured > 0.0);
    }

    #[test]
    fn ids_render_with_parameters() {
        let id = BenchmarkId::new("alg", 256);
        assert_eq!(id.name, "alg");
        assert_eq!(id.parameter, "256");
    }
}
