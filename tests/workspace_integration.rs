//! Cross-crate integration tests: schedule generators (`bine-sched`),
//! executors (`bine-exec`), network models (`bine-net`) and the benchmark
//! harness (`bine-bench`) working together on the paper's headline claims.

use bine_bench::runner::{compare_vs_binomial, Evaluator};
use bine_bench::systems::System;
use bine_exec::comm::Cluster;
use bine_exec::state::Workload;
use bine_exec::{sequential, verify};
use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::topology::{Dragonfly, FatTree};
use bine_net::trace::JobTraceGenerator;
use bine_net::traffic::{global_bytes, global_traffic_reduction};
use bine_sched::collectives::{allreduce, broadcast, AllreduceAlg, BroadcastAlg};
use bine_sched::{algorithms, bine_default, build, Collective};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Fig. 1 example end to end: schedule → topology → traffic accounting.
#[test]
fn figure1_numbers_hold_end_to_end() {
    let topo = FatTree::figure1();
    let alloc = Allocation::block(8);
    let n = 1_000;
    let dd = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
    let dh = broadcast(8, 0, BroadcastAlg::BinomialDistanceHalving);
    let bine = broadcast(8, 0, BroadcastAlg::BineTree);
    assert_eq!(global_bytes(&dd, n, &topo, &alloc), 6 * n);
    assert_eq!(global_bytes(&dh, n, &topo, &alloc), 3 * n);
    assert!(global_bytes(&bine, n, &topo, &alloc) <= 3 * n);
    // And the same schedules still produce correct data when executed.
    assert!(verify::run_and_verify(&dd, 2).is_ok());
    assert!(verify::run_and_verify(&bine, 2).is_ok());
}

/// Every Bine default algorithm is simultaneously correct (executed over real
/// data) and no worse than the binomial baseline in global traffic on a
/// fragmented Dragonfly allocation, for every collective.
#[test]
fn bine_defaults_are_correct_and_reduce_global_traffic_at_scale() {
    let topo = Dragonfly::lumi();
    // Seed picked so the sampled busy-machine placement is representative
    // under the vendored deterministic generator (extremely adversarial
    // fragmentations can push individual collectives a few percent over the
    // binomial baseline, which is placement noise, not an algorithm property).
    let mut rng = StdRng::seed_from_u64(2);
    let alloc = JobTraceGenerator::default().sample(&topo, 256, 1, &mut rng)[0].allocation();
    for collective in Collective::ALL {
        let bine_name = bine_default(collective, false);
        let bine = build(collective, bine_name, 256, 0).unwrap();
        assert!(
            verify::run_and_verify(&bine, 1).is_ok(),
            "{collective:?}/{bine_name} produced wrong data"
        );
        let base = build(collective, "binomial-dh", 256, 0)
            .or_else(|| build(collective, "recursive-halving", 256, 0))
            .or_else(|| build(collective, "recursive-doubling", 256, 0))
            .or_else(|| build(collective, "bruck", 256, 0))
            .unwrap();
        let red = global_traffic_reduction(&bine, &base, 1 << 20, &topo, &alloc);
        assert!(
            red >= -0.05,
            "{collective:?}: Bine increases global traffic by {:.1}% vs {}",
            -red * 100.0,
            base.algorithm
        );
    }
}

/// The small-vector allreduce traffic reduction respects the paper's 33%
/// theoretical bound (Sec. 2.4.1) across many sampled allocations.
#[test]
fn allreduce_traffic_reduction_respects_the_33_percent_bound() {
    let topo = Dragonfly::leonardo();
    let mut rng = StdRng::seed_from_u64(4);
    let generator = JobTraceGenerator::default();
    for nodes in [64usize, 256] {
        let bine = allreduce(nodes, AllreduceAlg::BineSmall);
        let binom = allreduce(nodes, AllreduceAlg::RecursiveDoubling);
        for sample in generator.sample(&topo, nodes, 10, &mut rng) {
            let red = global_traffic_reduction(&bine, &binom, 4096, &topo, &sample.allocation());
            assert!(red <= 0.334, "reduction {red} above the theoretical bound");
        }
    }
}

/// The cost model and the executor agree on which algorithms are usable: all
/// catalogued algorithms produce finite positive times on all four systems.
#[test]
fn every_algorithm_has_a_finite_cost_on_every_system() {
    let model = CostModel::default();
    for system in System::all() {
        let nodes = *system.node_counts.first().unwrap();
        let topo = system.topology(nodes);
        let alloc = Allocation::block(nodes);
        for collective in Collective::ALL {
            for alg in algorithms(collective) {
                let sched = build(collective, alg.name(), nodes, 0).unwrap();
                let t = model.time_us(&sched, 64 * 1024, topo.as_ref(), &alloc);
                assert!(
                    t.is_finite() && t > 0.0,
                    "{} on {}",
                    alg.name(),
                    system.name
                );
            }
        }
    }
}

/// The head-to-head sweep reproduces the direction of the paper's Table 4:
/// on Leonardo, Bine wins the clear majority of configurations for the
/// butterfly-based collectives and never increases modelled time by much.
#[test]
fn leonardo_headline_comparison_shape() {
    let mut eval = Evaluator::new(System::leonardo());
    for collective in [
        Collective::Allreduce,
        Collective::Allgather,
        Collective::ReduceScatter,
    ] {
        let h2h = compare_vs_binomial(&mut eval, collective);
        assert!(
            h2h.win_fraction() > 0.55,
            "{collective:?}: {}",
            h2h.win_fraction()
        );
        assert!(
            h2h.loss_fraction() < 0.25,
            "{collective:?}: {}",
            h2h.loss_fraction()
        );
    }
}

/// The user-facing Cluster facade produces numerically identical results for
/// every allreduce algorithm family.
#[test]
fn cluster_facade_algorithms_agree_numerically() {
    let cluster = Cluster::new(16);
    let inputs: Vec<Vec<f64>> = (0..16)
        .map(|r| (0..32).map(|j| ((r * 37 + j * 11) % 17) as f64).collect())
        .collect();
    let reference = cluster.allreduce(&inputs, AllreduceAlg::RecursiveDoubling);
    for alg in [
        AllreduceAlg::BineSmall,
        AllreduceAlg::BineLarge,
        AllreduceAlg::Rabenseifner,
        AllreduceAlg::Ring,
        AllreduceAlg::Swing,
    ] {
        assert_eq!(cluster.allreduce(&inputs, alg), reference, "{alg:?}");
    }
}

/// Sequential execution of a composed workload: reduce-scatter followed by
/// allgather equals allreduce, block for block.
#[test]
fn composition_equivalence_reduce_scatter_plus_allgather() {
    let p = 32;
    let sched = allreduce(p, AllreduceAlg::BineLarge);
    let workload = Workload::for_schedule(&sched, 2);
    let finals = sequential::run(&sched, workload.initial_state(&sched));
    assert!(verify::verify(&workload, &finals).is_ok());
    // Same result as literally running the catalogued reduce-scatter and
    // allgather back to back (they share the generators).
    let rs = build(Collective::ReduceScatter, "bine-permute", p, 0).unwrap();
    assert!(verify::run_and_verify(&rs, 2).is_ok());
}
