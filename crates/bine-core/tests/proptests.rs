//! Property-based tests for the core Bine building blocks.

use bine_core::block::{contiguous_segments, inverse_permutation, nu_bit_reversal_permutation};
use bine_core::butterfly::{Butterfly, ButterflyKind};
use bine_core::distance::modular_distance;
use bine_core::negabinary::{
    from_negabinary, from_negabinary_reference, nb2rank, rank2nb, to_negabinary,
    to_negabinary_reference,
};
use bine_core::nonpow2::Pow2Fold;
use bine_core::torus::TorusShape;
use bine_core::tree::{build_tree, CommTree, TreeKind};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy producing a power-of-two rank count between 2 and 1024.
fn pow2_p() -> impl Strategy<Value = usize> {
    (1u32..=10).prop_map(|s| 1usize << s)
}

fn tree_kind() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        Just(TreeKind::BineDistanceHalving),
        Just(TreeKind::BineDistanceDoubling),
        Just(TreeKind::BinomialDistanceHalving),
        Just(TreeKind::BinomialDistanceDoubling),
    ]
}

fn butterfly_kind() -> impl Strategy<Value = ButterflyKind> {
    prop_oneof![
        Just(ButterflyKind::BineDistanceHalving),
        Just(ButterflyKind::BineDistanceDoubling),
        Just(ButterflyKind::RecursiveDoubling),
        Just(ButterflyKind::RecursiveHalving),
    ]
}

proptest! {
    #[test]
    fn negabinary_roundtrip(n in -1_000_000_000i64..1_000_000_000) {
        prop_assert_eq!(from_negabinary(to_negabinary(n)), n);
        prop_assert_eq!(to_negabinary(n), to_negabinary_reference(n));
    }

    #[test]
    fn negabinary_eval_matches_reference(nb in 0u64..(1 << 40)) {
        prop_assert_eq!(from_negabinary(nb), from_negabinary_reference(nb));
    }

    #[test]
    fn rank_encoding_roundtrip(p in pow2_p(), r_seed in 0usize..1_000_000) {
        let r = r_seed % p;
        prop_assert_eq!(nb2rank(rank2nb(r, p), p), r);
    }

    #[test]
    fn modular_distance_triangle_inequality(
        p in 2usize..512, a_seed in 0usize..1_000_000, b_seed in 0usize..1_000_000, c_seed in 0usize..1_000_000
    ) {
        let (a, b, c) = (a_seed % p, b_seed % p, c_seed % p);
        prop_assert!(modular_distance(a, c, p) <= modular_distance(a, b, p) + modular_distance(b, c, p));
    }

    #[test]
    fn trees_reach_every_rank_exactly_once(kind in tree_kind(), p in pow2_p(), root_seed in 0usize..1_000_000) {
        let root = root_seed % p;
        let tree = build_tree(kind, p, root);
        // Every non-root has a parent that joined strictly earlier.
        let mut reached: HashSet<usize> = HashSet::from([root]);
        for step in 0..tree.num_steps() {
            let mut new = Vec::new();
            for &r in &reached {
                if step >= tree.first_send_step(r) {
                    if let Some(c) = tree.partner(r, step) {
                        new.push(c);
                    }
                }
            }
            for c in new {
                prop_assert!(reached.insert(c), "rank {} reached twice", c);
            }
        }
        prop_assert_eq!(reached.len(), p);
    }

    #[test]
    fn tree_subtrees_partition_the_ranks(kind in tree_kind(), p in pow2_p(), root_seed in 0usize..1_000_000) {
        let root = root_seed % p;
        let tree = build_tree(kind, p, root);
        let mut seen: HashSet<usize> = HashSet::from([root]);
        for (_, child) in tree.children(root) {
            for r in tree.subtree(child) {
                prop_assert!(seen.insert(r), "rank {} appears in two subtrees", r);
            }
        }
        prop_assert_eq!(seen.len(), p);
    }

    #[test]
    fn bine_trees_cover_less_modular_distance(p in (3u32..=10).prop_map(|s| 1usize << s)) {
        let bine = build_tree(TreeKind::BineDistanceHalving, p, 0);
        let binom = build_tree(TreeKind::BinomialDistanceHalving, p, 0);
        let total = |t: &dyn CommTree| -> usize {
            (1..p).map(|r| modular_distance(r, t.parent(r).unwrap(), p)).sum()
        };
        prop_assert!(total(bine.as_ref()) < total(binom.as_ref()));
    }

    #[test]
    fn butterflies_disseminate_fully(kind in butterfly_kind(), p in pow2_p()) {
        let bf = Butterfly::new(kind, p);
        let mut have: Vec<HashSet<usize>> = (0..p).map(|r| HashSet::from([r])).collect();
        for step in 0..bf.num_steps() {
            let snap = have.clone();
            for (r, set) in have.iter_mut().enumerate() {
                let q = bf.partner(r, step);
                prop_assert_eq!(bf.partner(q, step), r);
                set.extend(snap[q].iter().copied());
            }
        }
        for set in &have {
            prop_assert_eq!(set.len(), p);
        }
    }

    #[test]
    fn butterfly_responsibilities_form_a_partition(kind in butterfly_kind(), p in (1u32..=7).prop_map(|s| 1usize << s)) {
        let bf = Butterfly::new(kind, p);
        let resp = bf.responsibilities();
        for (step, step_resp) in resp.iter().enumerate() {
            // At every step the responsibility sets of all ranks cover every
            // block the "right" number of times: block b appears in exactly
            // 2^(s−1−step) responsibility sets.
            let mut count = vec![0usize; p];
            for rank_resp in step_resp {
                for &b in rank_resp {
                    count[b as usize] += 1;
                }
            }
            let expected = 1usize << (bf.num_steps() as usize - 1 - step);
            for (b, &c) in count.iter().enumerate() {
                prop_assert_eq!(c, expected, "block {} step {}", b, step);
            }
        }
    }

    #[test]
    fn bit_reversal_permutation_is_bijective(p in pow2_p()) {
        let perm = nu_bit_reversal_permutation(p);
        let inv = inverse_permutation(&perm);
        for i in 0..p {
            prop_assert_eq!(inv[perm[i]], i);
        }
    }

    #[test]
    fn contiguous_segment_count_never_exceeds_block_count(
        p in 4usize..128, blocks in proptest::collection::vec(0u32..128, 0..64)
    ) {
        let blocks: Vec<u32> = blocks.into_iter().map(|b| b % p as u32).collect();
        let mut dedup: Vec<u32> = blocks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let segs = contiguous_segments(&dedup, p);
        prop_assert!(segs <= dedup.len());
        if !dedup.is_empty() {
            prop_assert!(segs >= 1);
        }
    }

    #[test]
    fn pow2_fold_is_consistent(p in 1usize..4096) {
        let fold = Pow2Fold::new(p);
        prop_assert!(fold.core.is_power_of_two());
        prop_assert!(fold.core <= p && p < 2 * fold.core);
        for r in 0..p {
            if fold.is_extra(r) {
                prop_assert_eq!(fold.extra_of(fold.proxy_of(r)), Some(r));
            }
        }
    }

    #[test]
    fn torus_coords_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let shape = TorusShape::new(dims);
        for r in 0..shape.num_ranks() {
            prop_assert_eq!(shape.rank(&shape.coords(r)), r);
        }
    }
}
