//! Torus-optimized Bine construction (Appendix D).
//!
//! On a torus the flat rank space does not reflect physical proximity, so the
//! paper applies the Bine construction dimension by dimension: ranks are
//! treated as coordinates, and at every step communication happens along a
//! single dimension. With multiple NICs per node (e.g. six TNIs on Fugaku)
//! the vector is additionally split into `2·D` parts, each processed with a
//! rotated dimension order and mirrored direction so that all ports are busy
//! at once.

use crate::butterfly::{Butterfly, ButterflyKind};

/// The shape of a multi-dimensional torus (e.g. `[4, 4]` for a 4×4 torus).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TorusShape {
    dims: Vec<usize>,
}

impl TorusShape {
    /// Creates a torus shape. Every dimension must be at least 1.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "a torus needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "dimensions must be positive");
        Self { dims }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions `D`.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of ranks (product of the dimension sizes).
    pub fn num_ranks(&self) -> usize {
        self.dims.iter().product()
    }

    /// Converts a linear rank to torus coordinates (row-major: the last
    /// dimension varies fastest).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.num_ranks());
        let mut rest = rank;
        let mut out = vec![0; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            out[d] = rest % self.dims[d];
            rest /= self.dims[d];
        }
        out
    }

    /// Converts torus coordinates to a linear rank.
    pub fn rank(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut r = 0;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.dims[d], "coordinate {c} out of range in dim {d}");
            r = r * self.dims[d] + c;
        }
        r
    }

    /// Minimal hop distance between two ranks on the torus (sum of the
    /// per-dimension wrap-around distances).
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        ca.iter()
            .zip(cb.iter())
            .zip(self.dims.iter())
            .map(|((&x, &y), &k)| {
                let d = (x + k - y) % k;
                d.min(k - d)
            })
            .sum()
    }

    /// True when every dimension size is a power of two (required by the
    /// torus-optimized butterfly construction used here).
    pub fn is_power_of_two(&self) -> bool {
        self.dims.iter().all(|d| d.is_power_of_two())
    }
}

/// A butterfly pattern over a torus built dimension by dimension
/// (Appendix D): at every step, the two communicating ranks differ in exactly
/// one coordinate, chosen according to a per-port dimension order.
#[derive(Debug, Clone)]
pub struct TorusButterfly {
    shape: TorusShape,
    kind: ButterflyKind,
    /// Order in which dimensions are processed.
    dim_order: Vec<usize>,
    /// Whether the even/odd roles are mirrored (reverses travel direction).
    mirrored: bool,
    /// Per-dimension 1-D butterflies, indexed by dimension (not order).
    per_dim: Vec<Butterfly>,
    /// step -> (dimension, step within that dimension)
    step_map: Vec<(usize, u32)>,
}

impl TorusButterfly {
    /// Creates a torus butterfly processing dimensions in their natural order.
    pub fn new(shape: TorusShape, kind: ButterflyKind) -> Self {
        let order: Vec<usize> = (0..shape.num_dims()).collect();
        Self::with_order(shape, kind, order, false)
    }

    /// Creates a torus butterfly with an explicit dimension order and
    /// optional mirroring, as used for multi-port execution.
    pub fn with_order(
        shape: TorusShape,
        kind: ButterflyKind,
        dim_order: Vec<usize>,
        mirrored: bool,
    ) -> Self {
        assert!(
            shape.is_power_of_two(),
            "torus-optimized Bine requires power-of-two dimensions"
        );
        assert_eq!(dim_order.len(), shape.num_dims());
        let per_dim: Vec<Butterfly> = shape
            .dims()
            .iter()
            .map(|&k| Butterfly::new(kind, k.max(1)))
            .collect();
        let mut step_map = Vec::new();
        for &d in &dim_order {
            for j in 0..per_dim[d].num_steps() {
                step_map.push((d, j));
            }
        }
        Self {
            shape,
            kind,
            dim_order,
            mirrored,
            per_dim,
            step_map,
        }
    }

    /// The `port`-th of `2·D` port schedules (Appendix D.4): the dimension
    /// order is rotated by `port` and the direction mirrored for the second
    /// half of the ports.
    pub fn for_port(shape: TorusShape, kind: ButterflyKind, port: usize) -> Self {
        let d = shape.num_dims();
        assert!(
            port < 2 * d,
            "port {port} out of range for a {d}-dimensional torus"
        );
        let rot = port % d;
        let order: Vec<usize> = (0..d).map(|i| (i + rot) % d).collect();
        Self::with_order(shape, kind, order, port >= d)
    }

    /// The torus shape of this butterfly.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// The underlying 1-D construction rule.
    pub fn kind(&self) -> ButterflyKind {
        self.kind
    }

    /// The dimension order used by this schedule.
    pub fn dim_order(&self) -> &[usize] {
        &self.dim_order
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.shape.num_ranks()
    }

    /// Total number of steps (`Σ_d log2 dims[d]`).
    pub fn num_steps(&self) -> u32 {
        self.step_map.len() as u32
    }

    /// The dimension along which communication happens at `step`.
    pub fn step_dimension(&self, step: u32) -> usize {
        self.step_map[step as usize].0
    }

    /// The peer of rank `r` at `step`; the two ranks differ only in the
    /// coordinate of [`Self::step_dimension`].
    pub fn partner(&self, r: usize, step: u32) -> usize {
        let (dim, sub) = self.step_map[step as usize];
        let mut coords = self.shape.coords(r);
        let c = coords[dim];
        let bf = &self.per_dim[dim];
        let c = if self.mirrored {
            // Mirror the 1-D pattern: run it on the reflected coordinate.
            let k = self.shape.dims()[dim];
            (k - bf.partner((k - c) % k, sub)) % k
        } else {
            bf.partner(c, sub)
        };
        coords[dim] = c;
        self.shape.rank(&coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn coordinate_roundtrip() {
        let shape = TorusShape::new(vec![4, 8, 2]);
        for r in 0..shape.num_ranks() {
            assert_eq!(shape.rank(&shape.coords(r)), r);
        }
        assert_eq!(shape.coords(0), vec![0, 0, 0]);
        assert_eq!(shape.coords(shape.num_ranks() - 1), vec![3, 7, 1]);
    }

    #[test]
    fn hop_distance_wraps_around() {
        let shape = TorusShape::new(vec![4, 4]);
        // (0,0) to (3,0) is one hop thanks to the wrap-around link.
        assert_eq!(shape.hop_distance(0, shape.rank(&[3, 0])), 1);
        assert_eq!(shape.hop_distance(0, shape.rank(&[2, 2])), 4);
        assert_eq!(shape.hop_distance(5, 5), 0);
    }

    fn check_full_dissemination(bf: &TorusButterfly) {
        let p = bf.num_ranks();
        let mut have: Vec<HashSet<usize>> = (0..p).map(|r| HashSet::from([r])).collect();
        for step in 0..bf.num_steps() {
            let snap = have.clone();
            for (r, set) in have.iter_mut().enumerate() {
                let q = bf.partner(r, step);
                assert_eq!(bf.partner(q, step), r, "involution violated at step {step}");
                set.extend(snap[q].iter().copied());
            }
        }
        for set in &have {
            assert_eq!(set.len(), p);
        }
    }

    #[test]
    fn torus_butterfly_disseminates_fully() {
        for kind in [
            ButterflyKind::BineDistanceDoubling,
            ButterflyKind::RecursiveDoubling,
        ] {
            for dims in [vec![2, 2, 2], vec![4, 4], vec![8, 4, 2], vec![16]] {
                let bf = TorusButterfly::new(TorusShape::new(dims), kind);
                check_full_dissemination(&bf);
            }
        }
    }

    #[test]
    fn every_step_moves_along_one_dimension() {
        let shape = TorusShape::new(vec![4, 4, 4]);
        let bf = TorusButterfly::new(shape.clone(), ButterflyKind::BineDistanceDoubling);
        for step in 0..bf.num_steps() {
            let dim = bf.step_dimension(step);
            for r in 0..shape.num_ranks() {
                let q = bf.partner(r, step);
                let cr = shape.coords(r);
                let cq = shape.coords(q);
                for d in 0..shape.num_dims() {
                    if d == dim {
                        assert_ne!(cr[d], cq[d]);
                    } else {
                        assert_eq!(cr[d], cq[d], "step {step} moved along dim {d} too");
                    }
                }
            }
        }
    }

    #[test]
    fn ports_use_distinct_first_dimensions() {
        let shape = TorusShape::new(vec![4, 4, 4]);
        let mut firsts = HashSet::new();
        for port in 0..6 {
            let bf =
                TorusButterfly::for_port(shape.clone(), ButterflyKind::BineDistanceDoubling, port);
            check_full_dissemination(&bf);
            firsts.insert((bf.step_dimension(0), port >= 3));
        }
        // 2·D distinct (dimension, direction) combinations for the first step.
        assert_eq!(firsts.len(), 6);
    }

    #[test]
    fn torus_optimized_reduces_hops_vs_flat_bine() {
        // Appendix D: on a 4×4 torus the flat Bine tree communicates with
        // ranks that are several hops away, while the torus-optimized variant
        // always talks to single-dimension neighbours at bounded distance.
        let shape = TorusShape::new(vec![4, 4]);
        let p = shape.num_ranks();
        let flat = Butterfly::new(ButterflyKind::BineDistanceDoubling, p);
        let torus = TorusButterfly::new(shape.clone(), ButterflyKind::BineDistanceDoubling);
        let hops = |pairs: Vec<(usize, usize)>| -> usize {
            pairs.iter().map(|&(a, b)| shape.hop_distance(a, b)).sum()
        };
        let flat_hops: usize = (0..flat.num_steps())
            .map(|s| hops((0..p).map(|r| (r, flat.partner(r, s))).collect()))
            .sum();
        let torus_hops: usize = (0..torus.num_steps())
            .map(|s| hops((0..p).map(|r| (r, torus.partner(r, s))).collect()))
            .sum();
        assert!(
            torus_hops < flat_hops,
            "torus {torus_hops} !< flat {flat_hops}"
        );
    }
}
