//! Negabinary (base −2) arithmetic and the rank encoding used by Bine trees.
//!
//! Bine trees (Sec. 2.3 of the paper) assign every rank a *negabinary*
//! representation: the rank identifier is written as a sum of powers of −2
//! instead of powers of 2. Because negabinary can encode both positive and
//! negative integers, the encoding of a rank `r` in a collective over `p`
//! ranks is defined as
//!
//! * the negabinary representation of `r` when `r ≤ m`, where `m` is the
//!   largest non-negative integer representable with `s = log2 p` negabinary
//!   digits (all even positions set, e.g. `0101₋₂ = 5` for `s = 3`), and
//! * the negabinary representation of `r − p` (a negative number) otherwise.
//!
//! This module provides the conversions (`rank2nb` / `nb2rank` in the paper's
//! notation) together with the low-level helpers they are built from.

/// Bit mask with ones in all *odd* bit positions (`…10101010₂`).
///
/// Odd negabinary positions contribute negative values (powers `(−2)^1`,
/// `(−2)^3`, …), which is what makes the mask-based conversion below work.
const ODD_MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Converts a signed integer to its negabinary bit pattern.
///
/// Uses the classic mask identity `nb = (n + M) ^ M` with `M` having ones in
/// every odd position. The result is the unique base −2 representation of
/// `n`; bit `j` of the returned value is the digit multiplying `(−2)^j`.
///
/// # Examples
/// ```
/// use bine_core::negabinary::to_negabinary;
/// assert_eq!(to_negabinary(2), 0b110);   // 4 − 2
/// assert_eq!(to_negabinary(-1), 0b11);   // −2 + 1
/// assert_eq!(to_negabinary(-2), 0b10);   // −2
/// assert_eq!(to_negabinary(0), 0);
/// ```
#[inline]
pub fn to_negabinary(n: i64) -> u64 {
    (n as u64).wrapping_add(ODD_MASK) ^ ODD_MASK
}

/// Converts a negabinary bit pattern back to the signed integer it encodes.
///
/// Inverse of [`to_negabinary`].
///
/// # Examples
/// ```
/// use bine_core::negabinary::from_negabinary;
/// assert_eq!(from_negabinary(0b110), 2);
/// assert_eq!(from_negabinary(0b11), -1);
/// assert_eq!(from_negabinary(0b101), 5);
/// ```
#[inline]
pub fn from_negabinary(nb: u64) -> i64 {
    (nb ^ ODD_MASK).wrapping_sub(ODD_MASK) as i64
}

/// Reference (digit-by-digit) negabinary conversion.
///
/// Slower than [`to_negabinary`] but trivially auditable; used by the test
/// suite to cross-check the mask-based fast path.
pub fn to_negabinary_reference(mut n: i64) -> u64 {
    let mut out = 0u64;
    let mut bit = 0u32;
    while n != 0 {
        let mut rem = n % -2;
        n /= -2;
        if rem < 0 {
            rem += 2;
            n += 1;
        }
        out |= (rem as u64) << bit;
        bit += 1;
    }
    out
}

/// Evaluates a negabinary pattern digit by digit (reference for tests).
pub fn from_negabinary_reference(nb: u64) -> i64 {
    let mut value = 0i64;
    let mut power = 1i64;
    for j in 0..64 {
        if (nb >> j) & 1 == 1 {
            value += power;
        }
        power = power.wrapping_mul(-2);
    }
    value
}

/// Number of communication steps `s = log2 p` for a power-of-two rank count.
///
/// # Panics
/// Panics if `p` is zero or not a power of two.
#[inline]
pub fn num_steps(p: usize) -> u32 {
    assert!(
        p.is_power_of_two() && p > 0,
        "p must be a power of two, got {p}"
    );
    p.trailing_zeros()
}

/// A bit mask of `k` ones (`111…1` with `k` bits), as used in Eq. (1).
#[inline]
pub fn ones(k: u32) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// The largest non-negative integer representable with `s` negabinary digits.
///
/// Obtained by setting every even position (`0101…01₋₂`); see Sec. 2.3.1.
///
/// # Examples
/// ```
/// use bine_core::negabinary::largest_positive;
/// assert_eq!(largest_positive(3), 5);   // 101₋₂ = 4 + 1
/// assert_eq!(largest_positive(6), 21);  // 010101₋₂ = 16 + 4 + 1
/// ```
#[inline]
pub fn largest_positive(s: u32) -> i64 {
    let mut m = 0i64;
    let mut k = 0;
    while k < s {
        m += 1i64 << k;
        k += 2;
    }
    m
}

/// `rank2nb(r, p)`: the negabinary encoding of rank `r` in a collective over
/// `p` ranks (Sec. 2.3.1).
///
/// Ranks `r ≤ m` are encoded as the negabinary of `r`; ranks above `m` (the
/// ranks "to the left of the root" on the circle) are encoded as the
/// negabinary of `r − p`.
///
/// # Panics
/// Panics if `p` is not a power of two or `r ≥ p`.
///
/// # Examples
/// ```
/// use bine_core::negabinary::rank2nb;
/// assert_eq!(rank2nb(2, 8), 0b110);
/// assert_eq!(rank2nb(6, 8), 0b010); // encoded as 6 − 8 = −2
/// assert_eq!(rank2nb(8, 16), 0b1000); // encoded as 8 − 16 = −8
/// ```
#[inline]
pub fn rank2nb(r: usize, p: usize) -> u64 {
    assert!(r < p, "rank {r} out of range for p = {p}");
    let s = num_steps(p);
    let m = largest_positive(s);
    let nb = if (r as i64) <= m {
        to_negabinary(r as i64)
    } else {
        to_negabinary(r as i64 - p as i64)
    };
    debug_assert_eq!(nb & !ones(s), 0, "encoding of {r} exceeds {s} digits");
    nb
}

/// `nb2rank(nb, p)`: the rank whose `s`-digit negabinary encoding is `nb`.
///
/// Inverse of [`rank2nb`]: the pattern is evaluated in base −2 and reduced
/// modulo `p`.
///
/// # Examples
/// ```
/// use bine_core::negabinary::{nb2rank, rank2nb};
/// for r in 0..16 {
///     assert_eq!(nb2rank(rank2nb(r, 16), 16), r);
/// }
/// ```
#[inline]
pub fn nb2rank(nb: u64, p: usize) -> usize {
    let v = from_negabinary(nb);
    v.rem_euclid(p as i64) as usize
}

/// Number of consecutive least-significant digits of `nb` that are equal to
/// each other, considering `s` digits (the quantity `u` of Sec. 2.3.2).
///
/// # Examples
/// ```
/// use bine_core::negabinary::trailing_equal_bits;
/// assert_eq!(trailing_equal_bits(0b1000, 4), 3);
/// assert_eq!(trailing_equal_bits(0b1011, 4), 2);
/// assert_eq!(trailing_equal_bits(0b1111, 4), 4);
/// assert_eq!(trailing_equal_bits(0b0000, 4), 4);
/// ```
#[inline]
pub fn trailing_equal_bits(nb: u64, s: u32) -> u32 {
    let first = nb & 1;
    let mut u = 0;
    while u < s && (nb >> u) & 1 == first {
        u += 1;
    }
    u
}

/// The value `Σ_{j=0}^{k-1} (−2)^j = (1 − (−2)^k) / 3`.
///
/// This is the (signed) distance between communicating ranks when their
/// negabinary representations differ in the `k` least-significant digits
/// (Sec. 2.4.1, Eq. 3–5).
///
/// # Examples
/// ```
/// use bine_core::negabinary::alternating_sum;
/// assert_eq!(alternating_sum(0), 0);
/// assert_eq!(alternating_sum(1), 1);      // 1
/// assert_eq!(alternating_sum(2), -1);     // 1 − 2
/// assert_eq!(alternating_sum(3), 3);      // 1 − 2 + 4
/// assert_eq!(alternating_sum(4), -5);     // 1 − 2 + 4 − 8
/// ```
#[inline]
pub fn alternating_sum(k: u32) -> i64 {
    // (1 - (-2)^k) / 3, computed without overflow for k ≤ 62.
    assert!(k <= 62, "alternating_sum only supported up to k = 62");
    let pow = (-2i64).pow(k);
    (1 - pow) / 3
}

/// Position of the highest set bit of `x`.
///
/// # Panics
/// Panics if `x == 0`.
#[inline]
pub fn highest_set_bit(x: u64) -> u32 {
    assert!(x != 0, "highest_set_bit(0) is undefined");
    63 - x.leading_zeros()
}

/// Bit-reversal of the lowest `s` bits of `x` (used by the `permute`
/// non-contiguous-data strategy of Sec. 4.3.1).
///
/// # Examples
/// ```
/// use bine_core::negabinary::bit_reverse;
/// assert_eq!(bit_reverse(0b001, 3), 0b100);
/// assert_eq!(bit_reverse(0b011, 3), 0b110);
/// assert_eq!(bit_reverse(0b101, 3), 0b101);
/// ```
#[inline]
pub fn bit_reverse(x: u64, s: u32) -> u64 {
    let mut out = 0u64;
    for j in 0..s {
        if (x >> j) & 1 == 1 {
            out |= 1 << (s - 1 - j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_conversion_matches_reference_small_range() {
        for n in -10_000i64..10_000 {
            assert_eq!(to_negabinary(n), to_negabinary_reference(n), "n = {n}");
        }
    }

    #[test]
    fn from_negabinary_matches_reference() {
        for nb in 0u64..65_536 {
            assert_eq!(
                from_negabinary(nb),
                from_negabinary_reference(nb),
                "nb = {nb:b}"
            );
        }
    }

    #[test]
    fn roundtrip_signed() {
        for n in -100_000i64..100_000 {
            assert_eq!(from_negabinary(to_negabinary(n)), n);
        }
    }

    #[test]
    fn paper_examples() {
        // Sec. 2.3.1: 2 = 110₋₂, 011₋₂ = −1, m = 010101₋₂ = 21 on six digits.
        assert_eq!(to_negabinary(2), 0b110);
        assert_eq!(from_negabinary(0b011), -1);
        assert_eq!(largest_positive(6), 21);
        // Fig. 3 E: m = 101₋₂ = 5 for an 8-node tree.
        assert_eq!(largest_positive(3), 5);
        // Fig. 3 F/G: rank2nb(2, 8) = 110, rank2nb(6, 8) = 010.
        assert_eq!(rank2nb(2, 8), 0b110);
        assert_eq!(rank2nb(6, 8), 0b010);
        // Fig. 4 A: rank2nb(8, 16) = 1000 and it joins at step 4 − 3 = 1.
        assert_eq!(rank2nb(8, 16), 0b1000);
        assert_eq!(trailing_equal_bits(rank2nb(8, 16), 4), 3);
    }

    #[test]
    fn rank_encoding_is_bijective() {
        for s in 1..=12 {
            let p = 1usize << s;
            let mut seen = vec![false; p];
            for r in 0..p {
                let nb = rank2nb(r, p);
                assert!(
                    nb < (1 << s) as u64,
                    "encoding of {r} uses more than {s} digits"
                );
                let back = nb2rank(nb, p);
                assert_eq!(back, r);
                assert!(!seen[back]);
                seen[back] = true;
            }
        }
    }

    #[test]
    fn largest_positive_is_max_over_s_digits() {
        for s in 1..=16u32 {
            let m = largest_positive(s);
            let max = (0u64..(1 << s)).map(from_negabinary).max().unwrap();
            assert_eq!(m, max);
        }
    }

    #[test]
    fn alternating_sum_matches_direct_evaluation() {
        for k in 0..=20u32 {
            let direct: i64 = (0..k).map(|j| (-2i64).pow(j)).sum();
            assert_eq!(alternating_sum(k), direct);
        }
    }

    #[test]
    fn ones_and_bits() {
        assert_eq!(ones(0), 0);
        assert_eq!(ones(3), 0b111);
        assert_eq!(highest_set_bit(0b1000), 3);
        assert_eq!(highest_set_bit(1), 0);
    }

    #[test]
    fn bit_reverse_is_involution() {
        for s in 1..=10u32 {
            for x in 0u64..(1 << s) {
                assert_eq!(bit_reverse(bit_reverse(x, s), s), x);
            }
        }
    }

    #[test]
    #[should_panic]
    fn num_steps_rejects_non_power_of_two() {
        num_steps(12);
    }
}
