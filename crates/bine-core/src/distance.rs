//! Modular distance and the theoretical distance bounds of Sec. 2.4.1.
//!
//! The paper argues that communicating ranks in a Bine tree are at roughly
//! 2/3 of the modular distance of the corresponding binomial tree
//! (Eq. 2), which bounds the global-link traffic reduction at ~33%.

use crate::negabinary::alternating_sum;

/// Modular (circular) distance between ranks `r` and `q` on a ring of `p`
/// ranks: `min((r − q) mod p, (q − r) mod p)` (Sec. 2.2).
///
/// # Examples
/// ```
/// use bine_core::distance::modular_distance;
/// assert_eq!(modular_distance(0, 15, 16), 1);
/// assert_eq!(modular_distance(0, 8, 16), 8);
/// assert_eq!(modular_distance(3, 5, 16), 2);
/// ```
#[inline]
pub fn modular_distance(r: usize, q: usize, p: usize) -> usize {
    assert!(r < p && q < p, "ranks must be smaller than p");
    let a = (r + p - q) % p;
    let b = (q + p - r) % p;
    a.min(b)
}

/// Linear (non-modular) distance `|r − q|` between rank identifiers.
#[inline]
pub fn linear_distance(r: usize, q: usize) -> usize {
    r.abs_diff(q)
}

/// Distance between communicating ranks at step `i` of a distance-halving
/// *binomial* tree over `2^s` ranks: `δ_binomial(i) = 2^(s−i−1)`.
#[inline]
pub fn delta_binomial(i: u32, s: u32) -> u64 {
    assert!(i < s, "step {i} out of range for s = {s}");
    1u64 << (s - i - 1)
}

/// Distance between communicating ranks at step `i` of a distance-halving
/// *Bine* tree over `2^s` ranks: `δ_bine(i) = |Σ_{j=0}^{s−i−1} (−2)^j|`.
#[inline]
pub fn delta_bine(i: u32, s: u32) -> u64 {
    assert!(i < s, "step {i} out of range for s = {s}");
    alternating_sum(s - i).unsigned_abs()
}

/// The ratio `δ_bine(i) / δ_binomial(i)` (Eq. 2), which converges to 2/3.
#[inline]
pub fn distance_ratio(i: u32, s: u32) -> f64 {
    delta_bine(i, s) as f64 / delta_binomial(i, s) as f64
}

/// Sum of per-step distances over all `s` steps of a distance-halving
/// binomial tree (used to compare cumulative distance budgets).
pub fn total_distance_binomial(s: u32) -> u64 {
    (0..s).map(|i| delta_binomial(i, s)).sum()
}

/// Sum of per-step distances over all `s` steps of a distance-halving Bine
/// tree.
pub fn total_distance_bine(s: u32) -> u64 {
    (0..s).map(|i| delta_bine(i, s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_distance_is_symmetric_and_bounded() {
        let p = 64;
        for r in 0..p {
            for q in 0..p {
                let d = modular_distance(r, q, p);
                assert_eq!(d, modular_distance(q, r, p));
                assert!(d <= p / 2);
                if r == q {
                    assert_eq!(d, 0);
                }
            }
        }
    }

    #[test]
    fn deltas_match_paper_examples() {
        // s = 4 (16 ranks): binomial distances 8, 4, 2, 1.
        assert_eq!(
            (0..4).map(|i| delta_binomial(i, 4)).collect::<Vec<_>>(),
            vec![8, 4, 2, 1]
        );
        // Bine distances |1−2+4−8| = 5, |1−2+4| = 3, |1−2| = 1, |1| = 1.
        assert_eq!(
            (0..4).map(|i| delta_bine(i, 4)).collect::<Vec<_>>(),
            vec![5, 3, 1, 1]
        );
    }

    #[test]
    fn ratio_converges_to_two_thirds() {
        // Eq. 2: δ_bine / δ_binomial ≈ 2/3, exact in the limit of large s − i.
        for s in 4..=30u32 {
            let ratio = distance_ratio(0, s);
            assert!(
                (ratio - 2.0 / 3.0).abs() < 0.7 / (1 << (s - 1)) as f64 + 1e-12,
                "s = {s}, ratio = {ratio}"
            );
        }
        // The early steps of small trees deviate by at most ±1 block.
        for s in 1..=20u32 {
            for i in 0..s {
                let diff = delta_bine(i, s) as i64 - (2 * delta_binomial(i, s) as i64) / 3;
                assert!(diff.abs() <= 1, "s={s} i={i} diff={diff}");
            }
        }
    }

    #[test]
    fn bine_total_distance_is_lower() {
        for s in 3..=20u32 {
            assert!(
                total_distance_bine(s) < total_distance_binomial(s),
                "s = {s}"
            );
        }
    }
}
