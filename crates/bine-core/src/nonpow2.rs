//! Helpers for rank counts that are not a power of two (Appendix C).
//!
//! The schedule layer folds the `p − p'` "extra" ranks (where
//! `p' = 2^⌊log2 p⌋`) into the first `p − p'` ranks before running the
//! power-of-two algorithm, and unfolds them afterwards. This is the
//! straightforward technique used by MPICH-style binomial algorithms and
//! described at the start of Appendix C; the even-`p` duplicate-subtree
//! optimisation is a possible refinement documented in DESIGN.md.

/// The largest power of two not exceeding `p`.
///
/// # Panics
/// Panics if `p == 0`.
#[inline]
pub fn largest_pow2_below(p: usize) -> usize {
    assert!(p > 0, "p must be positive");
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

/// Describes how a non-power-of-two rank count is folded onto a
/// power-of-two core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pow2Fold {
    /// Original number of ranks.
    pub p: usize,
    /// Power-of-two core size `p' = 2^⌊log2 p⌋`.
    pub core: usize,
    /// Number of extra ranks `p − p'` folded onto the first `p − p'` core ranks.
    pub extra: usize,
}

impl Pow2Fold {
    /// Computes the fold for `p` ranks.
    pub fn new(p: usize) -> Self {
        let core = largest_pow2_below(p);
        Self {
            p,
            core,
            extra: p - core,
        }
    }

    /// True when no folding is needed.
    pub fn is_pow2(&self) -> bool {
        self.extra == 0
    }

    /// The core rank an extra rank is folded onto (`r − p'`).
    ///
    /// # Panics
    /// Panics if `r` is not an extra rank.
    pub fn proxy_of(&self, r: usize) -> usize {
        assert!(self.is_extra(r), "rank {r} is not an extra rank");
        r - self.core
    }

    /// The extra rank folded onto core rank `r`, if any.
    pub fn extra_of(&self, r: usize) -> Option<usize> {
        if r < self.extra {
            Some(r + self.core)
        } else {
            None
        }
    }

    /// Whether `r` is one of the extra (folded) ranks.
    pub fn is_extra(&self, r: usize) -> bool {
        r >= self.core && r < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_detection() {
        assert_eq!(largest_pow2_below(1), 1);
        assert_eq!(largest_pow2_below(7), 4);
        assert_eq!(largest_pow2_below(8), 8);
        assert_eq!(largest_pow2_below(1000), 512);
    }

    #[test]
    fn fold_roundtrip() {
        for p in 1..200usize {
            let fold = Pow2Fold::new(p);
            assert_eq!(fold.core + fold.extra, p);
            assert_eq!(fold.is_pow2(), p.is_power_of_two());
            for r in fold.core..p {
                let proxy = fold.proxy_of(r);
                assert!(proxy < fold.extra);
                assert_eq!(fold.extra_of(proxy), Some(r));
            }
            for r in fold.extra..fold.core {
                assert_eq!(fold.extra_of(r), None);
            }
        }
    }

    #[test]
    #[should_panic]
    fn proxy_of_core_rank_panics() {
        Pow2Fold::new(10).proxy_of(0);
    }
}
