//! # bine-core
//!
//! Core algorithms of *"Bine Trees: Enhancing Collective Operations by
//! Optimizing Communication Locality"* (De Sensi et al., SC '25):
//!
//! * [`negabinary`] — base −2 rank arithmetic (`rank2nb` / `nb2rank`),
//! * [`tree`] — distance-halving and distance-doubling Bine trees and the
//!   binomial trees they are compared against,
//! * [`butterfly`] — Bine butterflies and standard recursive
//!   doubling/halving butterflies,
//! * [`distance`] — modular distance and the theoretical 2/3 distance ratio
//!   (Eq. 2),
//! * [`block`] — circular block ranges, contiguity analysis and the
//!   bit-reversal permutation of Sec. 4.3.1,
//! * [`torus`] — the torus-optimized, multi-port construction of Appendix D,
//! * [`nonpow2`] — power-of-two folding for arbitrary rank counts
//!   (Appendix C).
//!
//! These building blocks are purely combinatorial: they know nothing about
//! message sizes, topologies or data. The `bine-sched` crate turns them into
//! communication schedules for the eight collectives, `bine-net` evaluates
//! those schedules on network models, and `bine-exec` runs them over real
//! data to verify correctness.
//!
//! ## Quick example
//!
//! ```
//! use bine_core::tree::{BineTreeDh, BinomialTreeDd, CommTree};
//! use bine_core::distance::modular_distance;
//!
//! let p = 16;
//! let bine = BineTreeDh::new(p, 0);
//! let binomial = BinomialTreeDd::new(p, 0);
//!
//! // Total modular distance covered by the broadcast edges.
//! let total = |t: &dyn CommTree| -> usize {
//!     (0..p)
//!         .filter(|&r| r != t.root())
//!         .map(|r| modular_distance(r, t.parent(r).unwrap(), p))
//!         .sum()
//! };
//! assert!(total(&bine) < total(&binomial));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod butterfly;
pub mod distance;
pub mod negabinary;
pub mod nonpow2;
pub mod torus;
pub mod tree;

pub use butterfly::{Butterfly, ButterflyKind};
pub use distance::modular_distance;
pub use nonpow2::Pow2Fold;
pub use torus::{TorusButterfly, TorusShape};
pub use tree::{
    build_tree, BineTreeDd, BineTreeDh, BinomialTreeDd, BinomialTreeDh, CommTree, TreeKind,
};
