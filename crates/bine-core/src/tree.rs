//! Tree communication patterns: distance-halving / distance-doubling Bine
//! trees (Sec. 2 and Sec. 3.2) and the standard binomial trees they are
//! compared against (MPICH-style distance-halving, Open MPI-style
//! distance-doubling).
//!
//! A tree pattern over `p = 2^s` ranks describes a broadcast-like dataflow:
//! the root holds the data at step 0 and at every step each rank that already
//! holds the data forwards it to exactly one rank that does not, so that after
//! `s` steps every rank has been reached. The same pattern, read in reverse,
//! describes gather/reduce dataflows.
//!
//! All trees support an arbitrary root via logical rotation of the rank
//! space (Sec. 2.2).

use crate::negabinary::{highest_set_bit, nb2rank, num_steps, ones, rank2nb, trailing_equal_bits};

/// Which tree-construction rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// Distance-halving Bine tree (Sec. 2).
    BineDistanceHalving,
    /// Distance-doubling Bine tree (Sec. 3.2, Appendix A).
    BineDistanceDoubling,
    /// Distance-halving binomial tree (MPICH-style broadcast tree).
    BinomialDistanceHalving,
    /// Distance-doubling binomial tree (Open MPI-style in-order binomial tree).
    BinomialDistanceDoubling,
}

impl TreeKind {
    /// All supported tree kinds, in a stable order.
    pub const ALL: [TreeKind; 4] = [
        TreeKind::BineDistanceHalving,
        TreeKind::BineDistanceDoubling,
        TreeKind::BinomialDistanceHalving,
        TreeKind::BinomialDistanceDoubling,
    ];

    /// Short human-readable name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            TreeKind::BineDistanceHalving => "bine-dh",
            TreeKind::BineDistanceDoubling => "bine-dd",
            TreeKind::BinomialDistanceHalving => "binomial-dh",
            TreeKind::BinomialDistanceDoubling => "binomial-dd",
        }
    }
}

/// Builds a boxed tree of the requested kind.
pub fn build_tree(kind: TreeKind, p: usize, root: usize) -> Box<dyn CommTree> {
    match kind {
        TreeKind::BineDistanceHalving => Box::new(BineTreeDh::new(p, root)),
        TreeKind::BineDistanceDoubling => Box::new(BineTreeDd::new(p, root)),
        TreeKind::BinomialDistanceHalving => Box::new(BinomialTreeDh::new(p, root)),
        TreeKind::BinomialDistanceDoubling => Box::new(BinomialTreeDd::new(p, root)),
    }
}

/// A rooted communication tree over `p = 2^s` ranks with `s` synchronous
/// steps.
pub trait CommTree {
    /// Number of ranks `p` (always a power of two at this layer; non-power-of
    /// -two rank counts are folded in by the schedule layer).
    fn num_ranks(&self) -> usize;
    /// Number of steps `s = log2 p`.
    fn num_steps(&self) -> u32;
    /// The root rank of the tree.
    fn root(&self) -> usize;
    /// Step at which rank `r` receives the data from its parent
    /// (`None` for the root).
    fn recv_step(&self, r: usize) -> Option<u32>;
    /// The peer rank `r` communicates with at `step`, if it participates in
    /// that step. At `recv_step(r)` the peer is the parent; at every later
    /// step it is the child joining the tree at that step. The root has a
    /// child at every step.
    fn partner(&self, r: usize, step: u32) -> Option<usize>;

    /// First step at which rank `r` *sends* data (0 for the root).
    fn first_send_step(&self, r: usize) -> u32 {
        match self.recv_step(r) {
            None => 0,
            Some(i) => i + 1,
        }
    }

    /// Parent of `r`, or `None` if `r` is the root.
    fn parent(&self, r: usize) -> Option<usize> {
        self.recv_step(r).map(|i| {
            self.partner(r, i)
                .expect("partner must exist at the receive step")
        })
    }

    /// Children of `r` as `(step, child)` pairs, ordered by step.
    fn children(&self, r: usize) -> Vec<(u32, usize)> {
        (self.first_send_step(r)..self.num_steps())
            .filter_map(|step| self.partner(r, step).map(|c| (step, c)))
            .collect()
    }

    /// All ranks in the subtree rooted at `r`, including `r` itself.
    fn subtree(&self, r: usize) -> Vec<usize> {
        let mut out = vec![r];
        let mut frontier = vec![r];
        while let Some(x) = frontier.pop() {
            for (_, c) in self.children(x) {
                out.push(c);
                frontier.push(c);
            }
        }
        out.sort_unstable();
        out
    }
}

/// Maps a physical rank to its logical identifier in a tree rooted at `root`
/// (Sec. 2.2: subtract the root modulo `p`).
#[inline]
fn to_logical(r: usize, root: usize, p: usize) -> usize {
    (r + p - root) % p
}

/// Maps a logical rank back to the physical rank space.
#[inline]
fn to_physical(l: usize, root: usize, p: usize) -> usize {
    (l + root) % p
}

// ---------------------------------------------------------------------------
// Distance-halving Bine tree (Sec. 2)
// ---------------------------------------------------------------------------

/// Distance-halving Bine tree (Sec. 2.3).
///
/// Rank `r` (logical, i.e. relative to the root) receives the data at step
/// `i = s − u`, where `u` is the number of consecutive equal least-significant
/// digits of `rank2nb(r)`. At step `i` a rank communicates with the rank whose
/// negabinary representation differs in the `s − i` least-significant digits
/// (Eq. 1).
#[derive(Debug, Clone)]
pub struct BineTreeDh {
    p: usize,
    s: u32,
    root: usize,
}

impl BineTreeDh {
    /// Creates a distance-halving Bine tree over `p = 2^s` ranks rooted at
    /// `root`.
    pub fn new(p: usize, root: usize) -> Self {
        let s = num_steps(p);
        assert!(root < p, "root {root} out of range for p = {p}");
        Self { p, s, root }
    }
}

impl CommTree for BineTreeDh {
    fn num_ranks(&self) -> usize {
        self.p
    }
    fn num_steps(&self) -> u32 {
        self.s
    }
    fn root(&self) -> usize {
        self.root
    }

    fn recv_step(&self, r: usize) -> Option<u32> {
        let l = to_logical(r, self.root, self.p);
        if l == 0 {
            return None;
        }
        let u = trailing_equal_bits(rank2nb(l, self.p), self.s);
        Some(self.s - u)
    }

    fn partner(&self, r: usize, step: u32) -> Option<usize> {
        if step >= self.s {
            return None;
        }
        let l = to_logical(r, self.root, self.p);
        let first = self.recv_step(r).unwrap_or_default();
        if step < first {
            return None;
        }
        let q = nb2rank(rank2nb(l, self.p) ^ ones(self.s - step), self.p);
        Some(to_physical(q, self.root, self.p))
    }
}

// ---------------------------------------------------------------------------
// Distance-doubling Bine tree (Sec. 3.2, Appendix A)
// ---------------------------------------------------------------------------

/// Distance-doubling Bine tree (Sec. 3.2).
///
/// Each rank `r` is assigned `ν(r) = h(r) ⊕ (h(r) >> 1)` where
/// `h(r) = rank2nb(p − r)` for even `r` (with `h(0) = 0`) and
/// `h(r) = rank2nb(r)` for odd `r`. A rank receives the data at the step given
/// by the highest set bit of `ν(r)` and, at every later step `j`, sends it to
/// the rank whose `ν` differs in bit `j`.
#[derive(Debug, Clone)]
pub struct BineTreeDd {
    p: usize,
    s: u32,
    root: usize,
    /// `ν(l)` for every logical rank `l`.
    nu: Vec<u64>,
    /// Inverse of `nu`: `inv_nu[ν] = l`.
    inv_nu: Vec<usize>,
}

/// Computes the `ν` labelling of Sec. 3.2.1 for all logical ranks of a
/// `p`-rank collective. The labelling is a bijection from ranks onto
/// `[0, p)`.
pub fn nu_labels(p: usize) -> Vec<u64> {
    let s = num_steps(p);
    let mask = ones(s);
    (0..p)
        .map(|r| {
            let h = if r == 0 {
                0
            } else if r % 2 == 1 {
                rank2nb(r, p)
            } else {
                rank2nb(p - r, p)
            } & mask;
            (h ^ (h >> 1)) & mask
        })
        .collect()
}

impl BineTreeDd {
    /// Creates a distance-doubling Bine tree over `p = 2^s` ranks rooted at
    /// `root`.
    pub fn new(p: usize, root: usize) -> Self {
        let s = num_steps(p);
        assert!(root < p, "root {root} out of range for p = {p}");
        let nu = nu_labels(p);
        let mut inv_nu = vec![usize::MAX; p];
        for (r, &v) in nu.iter().enumerate() {
            assert!(
                inv_nu[v as usize] == usize::MAX,
                "ν labelling is not a bijection for p = {p} (collision at ν = {v})"
            );
            inv_nu[v as usize] = r;
        }
        Self {
            p,
            s,
            root,
            nu,
            inv_nu,
        }
    }

    /// The `ν` label of physical rank `r`.
    pub fn nu(&self, r: usize) -> u64 {
        self.nu[to_logical(r, self.root, self.p)]
    }
}

impl CommTree for BineTreeDd {
    fn num_ranks(&self) -> usize {
        self.p
    }
    fn num_steps(&self) -> u32 {
        self.s
    }
    fn root(&self) -> usize {
        self.root
    }

    fn recv_step(&self, r: usize) -> Option<u32> {
        let l = to_logical(r, self.root, self.p);
        let v = self.nu[l];
        if v == 0 {
            None
        } else {
            Some(highest_set_bit(v))
        }
    }

    fn partner(&self, r: usize, step: u32) -> Option<usize> {
        if step >= self.s {
            return None;
        }
        let l = to_logical(r, self.root, self.p);
        let first = self.recv_step(r).unwrap_or_default();
        if step < first {
            return None;
        }
        let q = self.inv_nu[(self.nu[l] ^ (1 << step)) as usize];
        Some(to_physical(q, self.root, self.p))
    }
}

// ---------------------------------------------------------------------------
// Standard binomial trees (baselines)
// ---------------------------------------------------------------------------

/// MPICH-style distance-halving binomial tree.
///
/// The root first sends to the rank at distance `p/2`, then `p/4`, …, 1; a
/// non-root logical rank `l` receives from `l − 2^k` where `k` is the position
/// of the lowest set bit of `l`.
#[derive(Debug, Clone)]
pub struct BinomialTreeDh {
    p: usize,
    s: u32,
    root: usize,
}

impl BinomialTreeDh {
    /// Creates an MPICH-style distance-halving binomial tree.
    pub fn new(p: usize, root: usize) -> Self {
        let s = num_steps(p);
        assert!(root < p, "root {root} out of range for p = {p}");
        Self { p, s, root }
    }
}

impl CommTree for BinomialTreeDh {
    fn num_ranks(&self) -> usize {
        self.p
    }
    fn num_steps(&self) -> u32 {
        self.s
    }
    fn root(&self) -> usize {
        self.root
    }

    fn recv_step(&self, r: usize) -> Option<u32> {
        let l = to_logical(r, self.root, self.p);
        if l == 0 {
            None
        } else {
            let k = l.trailing_zeros();
            Some(self.s - 1 - k)
        }
    }

    fn partner(&self, r: usize, step: u32) -> Option<usize> {
        if step >= self.s {
            return None;
        }
        let l = to_logical(r, self.root, self.p);
        match self.recv_step(r) {
            Some(i) if step < i => None,
            Some(i) if step == i => {
                let k = l.trailing_zeros();
                Some(to_physical(l - (1 << k), self.root, self.p))
            }
            _ => {
                // Child joining at `step`: at distance 2^(s − 1 − step) above.
                let q = l + (1usize << (self.s - 1 - step));
                Some(to_physical(q, self.root, self.p))
            }
        }
    }
}

/// Open MPI-style distance-doubling (in-order) binomial tree.
///
/// The root first sends to the rank at distance 1, then 2, 4, …; a non-root
/// logical rank `l` receives from `l − 2^k` where `k` is the position of the
/// highest set bit of `l`.
#[derive(Debug, Clone)]
pub struct BinomialTreeDd {
    p: usize,
    s: u32,
    root: usize,
}

impl BinomialTreeDd {
    /// Creates an Open MPI-style distance-doubling binomial tree.
    pub fn new(p: usize, root: usize) -> Self {
        let s = num_steps(p);
        assert!(root < p, "root {root} out of range for p = {p}");
        Self { p, s, root }
    }
}

impl CommTree for BinomialTreeDd {
    fn num_ranks(&self) -> usize {
        self.p
    }
    fn num_steps(&self) -> u32 {
        self.s
    }
    fn root(&self) -> usize {
        self.root
    }

    fn recv_step(&self, r: usize) -> Option<u32> {
        let l = to_logical(r, self.root, self.p);
        if l == 0 {
            None
        } else {
            Some(highest_set_bit(l as u64))
        }
    }

    fn partner(&self, r: usize, step: u32) -> Option<usize> {
        if step >= self.s {
            return None;
        }
        let l = to_logical(r, self.root, self.p);
        match self.recv_step(r) {
            Some(i) if step < i => None,
            Some(i) if step == i => Some(to_physical(l - (1 << i), self.root, self.p)),
            _ => Some(to_physical(l + (1 << step), self.root, self.p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_tree_invariants(tree: &dyn CommTree) {
        let p = tree.num_ranks();
        let s = tree.num_steps();
        let root = tree.root();

        // The root never receives, everyone else receives exactly once.
        assert!(tree.recv_step(root).is_none());
        for r in 0..p {
            if r != root {
                let i = tree
                    .recv_step(r)
                    .expect("non-root must have a receive step");
                assert!(i < s);
                let parent = tree.parent(r).unwrap();
                // The parent lists r as the child joining at step i.
                assert_eq!(tree.partner(parent, i), Some(r), "rank {r} step {i}");
                // The parent is already active before step i.
                if let Some(pi) = tree.recv_step(parent) {
                    assert!(pi < i, "parent {parent} of {r} joins at {pi} >= {i}");
                }
            }
        }

        // Every rank is reached exactly once when simulating the broadcast.
        let mut reached: HashSet<usize> = HashSet::from([root]);
        for step in 0..s {
            let mut new = Vec::new();
            for &r in reached.iter() {
                if step >= tree.first_send_step(r) {
                    if let Some(c) = tree.partner(r, step) {
                        new.push(c);
                    }
                }
            }
            for c in new {
                assert!(reached.insert(c), "rank {c} reached twice at step {step}");
            }
        }
        assert_eq!(reached.len(), p, "broadcast did not reach all ranks");

        // The subtree rooted at the root is the whole rank set.
        assert_eq!(tree.subtree(root).len(), p);

        // Subtree sizes are consistent: sum over the root's children + 1 = p.
        let sum: usize = tree
            .children(root)
            .iter()
            .map(|&(_, c)| tree.subtree(c).len())
            .sum();
        assert_eq!(sum + 1, p);
    }

    #[test]
    fn all_tree_kinds_satisfy_invariants() {
        for &kind in &TreeKind::ALL {
            for s in 1..=9u32 {
                let p = 1usize << s;
                for root in [0, 1, p / 2, p - 1] {
                    let tree = build_tree(kind, p, root);
                    check_tree_invariants(tree.as_ref());
                }
            }
        }
    }

    #[test]
    fn bine_dh_matches_figure_4() {
        // 16-node distance-halving Bine tree rooted at 0 (Fig. 4).
        let tree = BineTreeDh::new(16, 0);
        // Rank 8 receives at step 1 (A).
        assert_eq!(tree.recv_step(8), Some(1));
        // At step 2 rank 8 sends to rank 7 (B).
        assert_eq!(tree.partner(8, 2), Some(7));
        // Rank 4 is reached via 0 -> 3 -> 4.
        assert_eq!(tree.partner(0, 1), Some(3));
        assert_eq!(tree.partner(3, 2), Some(4));
        assert_eq!(tree.parent(4), Some(3));
        assert_eq!(tree.parent(3), Some(0));
        // The root's first partner is at modular distance |1-2+4-8| = 5 -> rank 11.
        assert_eq!(tree.partner(0, 0), Some(11));
    }

    #[test]
    fn bine_dh_subtree_shares_leading_bits() {
        // Sec. 2.3.3: all descendants of rank 8 (reached at step 1) share its
        // i + 1 = 2 most significant negabinary digits.
        let p = 16;
        let tree = BineTreeDh::new(p, 0);
        let prefix = rank2nb(8, p) >> 2;
        for r in tree.subtree(8) {
            assert_eq!(rank2nb(r, p) >> 2, prefix, "rank {r}");
        }
    }

    #[test]
    fn bine_dd_root_zero_children() {
        // Fig. 6 (right): the distance-doubling tree rooted at 0 sends first
        // to rank 1 (distance 1), then distance -1... partners are the ranks
        // whose ν equals 2^j.
        let tree = BineTreeDd::new(8, 0);
        assert_eq!(tree.nu(0), 0);
        for step in 0..3 {
            let c = tree.partner(0, step).unwrap();
            assert_eq!(tree.nu(c), 1 << step);
            assert_eq!(tree.recv_step(c), Some(step));
        }
        // Sec. 3.2.2: rank 2 receives at step 1 and then sends to rank 5
        // (ν(2) = 011, ν(5) = 111).
        assert_eq!(tree.recv_step(2), Some(1));
        assert_eq!(tree.partner(2, 2), Some(5));
    }

    #[test]
    fn nu_labelling_matches_figure_6() {
        // Fig. 6 (right) lists ν(r) for ranks 0..8 as
        // 000 001 011 100 110 111 101 010.
        let nu = nu_labels(8);
        assert_eq!(
            nu,
            vec![0b000, 0b001, 0b011, 0b100, 0b110, 0b111, 0b101, 0b010]
        );
    }

    #[test]
    fn binomial_trees_match_figure_1() {
        // Distance-doubling (Open MPI): 0 -> 1, then 0 -> 2, 1 -> 3, ...
        let dd = BinomialTreeDd::new(8, 0);
        assert_eq!(dd.partner(0, 0), Some(1));
        assert_eq!(dd.partner(0, 1), Some(2));
        assert_eq!(dd.partner(1, 1), Some(3));
        assert_eq!(dd.partner(0, 2), Some(4));
        // Distance-halving (MPICH): 0 -> 4, then 0 -> 2, 4 -> 6, ...
        let dh = BinomialTreeDh::new(8, 0);
        assert_eq!(dh.partner(0, 0), Some(4));
        assert_eq!(dh.partner(0, 1), Some(2));
        assert_eq!(dh.partner(4, 1), Some(6));
        assert_eq!(dh.partner(0, 2), Some(1));
        assert_eq!(dh.partner(4, 2), Some(5));
    }

    #[test]
    fn rotation_preserves_structure() {
        for &kind in &TreeKind::ALL {
            let p = 32;
            let base = build_tree(kind, p, 0);
            for root in 1..p {
                let rotated = build_tree(kind, p, root);
                for r in 0..p {
                    let l = (r + p - root) % p;
                    assert_eq!(
                        rotated.recv_step(r),
                        base.recv_step(l),
                        "kind {kind:?} root {root} rank {r}"
                    );
                    for step in 0..base.num_steps() {
                        let a = rotated.partner(r, step);
                        let b = base.partner(l, step).map(|q| (q + root) % p);
                        assert_eq!(a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn bine_dh_children_are_contiguous_blocks() {
        // Sec. 4.1/4.3: distance-halving Bine subtrees are circularly
        // contiguous rank ranges, unlike distance-doubling Bine subtrees.
        let p = 64;
        let tree = BineTreeDh::new(p, 0);
        for r in 0..p {
            let sub = tree.subtree(r);
            // Check circular contiguity: the ranks, viewed on the circle,
            // form one contiguous arc.
            let set: HashSet<usize> = sub.iter().copied().collect();
            let mut boundaries = 0;
            for &x in &sub {
                if !set.contains(&((x + 1) % p)) {
                    boundaries += 1;
                }
            }
            assert!(
                boundaries <= 1,
                "subtree of {r} is not a contiguous arc: {sub:?}"
            );
        }
    }
}
