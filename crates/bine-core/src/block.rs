//! Block bookkeeping helpers: circular block ranges, contiguity analysis and
//! the bit-reversal permutation used by the `permute` strategy of Sec. 4.3.1.
//!
//! Vector-splitting collectives (gather, scatter, reduce-scatter, allgather,
//! alltoall) divide the vector into one *block* per rank. Bine trees extend a
//! rank's holdings both upward and downward on the rank circle (Sec. 4.1), so
//! ranges are circular; distance-doubling Bine subtrees are not contiguous at
//! all, which is why the paper discusses four strategies for transmitting
//! non-contiguous data.

use crate::negabinary::{bit_reverse, num_steps};
use crate::tree::nu_labels;

/// A circular range of `len` blocks starting at `start` on a circle of `p`
/// blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircularRange {
    /// First block of the range.
    pub start: usize,
    /// Number of blocks in the range.
    pub len: usize,
    /// Total number of blocks on the circle.
    pub p: usize,
}

impl CircularRange {
    /// Creates a circular range; `len` may be at most `p`.
    pub fn new(start: usize, len: usize, p: usize) -> Self {
        assert!(start < p, "start {start} out of range for p = {p}");
        assert!(len <= p, "length {len} larger than the circle p = {p}");
        Self { start, len, p }
    }

    /// Whether the range contains block `b`.
    pub fn contains(&self, b: usize) -> bool {
        if self.len == self.p {
            return true;
        }
        let rel = (b + self.p - self.start) % self.p;
        rel < self.len
    }

    /// Iterates over the block indices in the range, in circular order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).map(move |k| (self.start + k) % self.p)
    }

    /// Whether the range wraps past the end of the linear buffer, i.e. a
    /// send of this range requires two contiguous transmissions
    /// (the "two transmissions" strategy of Sec. 4.3.1).
    pub fn wraps(&self) -> bool {
        self.len > 0 && self.start + self.len > self.p
    }

    /// Splits the range into at most two linear `(start, len)` segments.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        if self.len == 0 {
            return Vec::new();
        }
        if self.wraps() {
            let first = self.p - self.start;
            vec![(self.start, first), (0, self.len - first)]
        } else {
            vec![(self.start, self.len)]
        }
    }
}

/// Number of maximal circularly-contiguous segments formed by `blocks` on a
/// circle of `p` blocks.
///
/// A result of 1 means the blocks can be sent as a single contiguous
/// transmission (possibly wrapping); larger values quantify how fragmented
/// the transfer is (the motivation for the strategies in Sec. 4.3.1).
pub fn contiguous_segments(blocks: &[u32], p: usize) -> usize {
    if blocks.is_empty() {
        return 0;
    }
    if blocks.len() >= p {
        return 1;
    }
    let mut present = vec![false; p];
    for &b in blocks {
        present[b as usize] = true;
    }
    // Count blocks whose circular successor is absent: one per segment.
    blocks
        .iter()
        .filter(|&&b| !present[(b as usize + 1) % p])
        .count()
}

/// Number of *linear* contiguous segments (no wrap-around allowed), i.e. the
/// number of separate `memcpy`/send calls needed without any reordering.
pub fn linear_segments(blocks: &[u32], p: usize) -> usize {
    if blocks.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u32> = blocks.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut segs = 1;
    for w in sorted.windows(2) {
        if w[1] != w[0] + 1 {
            segs += 1;
        }
    }
    let _ = p;
    segs
}

/// The block permutation of the `permute` strategy (Sec. 4.3.1): block `i`
/// moves to position `reverse(ν(i))`, so that the blocks exchanged by a
/// distance-doubling Bine butterfly become contiguous in memory.
///
/// Returns `perm` with `perm[i] = destination position of block i`. The
/// permutation is an involution composed with bit reversal of a Gray-coded
/// negabinary label and is only defined for power-of-two `p`.
pub fn nu_bit_reversal_permutation(p: usize) -> Vec<usize> {
    let s = num_steps(p);
    let nu = nu_labels(p);
    (0..p).map(|i| bit_reverse(nu[i], s) as usize).collect()
}

/// Inverse of [`nu_bit_reversal_permutation`]: `inv[pos] = original block`.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &d) in perm.iter().enumerate() {
        assert!(
            inv[d] == usize::MAX,
            "not a permutation: position {d} hit twice"
        );
        inv[d] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::{Butterfly, ButterflyKind};

    #[test]
    fn circular_range_basics() {
        let r = CircularRange::new(6, 4, 8);
        assert!(r.contains(6) && r.contains(7) && r.contains(0) && r.contains(1));
        assert!(!r.contains(2) && !r.contains(5));
        assert!(r.wraps());
        assert_eq!(r.segments(), vec![(6, 2), (0, 2)]);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![6, 7, 0, 1]);

        let l = CircularRange::new(2, 3, 8);
        assert!(!l.wraps());
        assert_eq!(l.segments(), vec![(2, 3)]);
    }

    #[test]
    fn full_range_contains_everything() {
        let r = CircularRange::new(3, 8, 8);
        for b in 0..8 {
            assert!(r.contains(b));
        }
    }

    #[test]
    fn segment_counting() {
        assert_eq!(contiguous_segments(&[0, 1, 2, 3], 8), 1);
        assert_eq!(contiguous_segments(&[6, 7, 0, 1], 8), 1); // wraps but contiguous
        assert_eq!(contiguous_segments(&[0, 2, 4, 6], 8), 4);
        assert_eq!(contiguous_segments(&[], 8), 0);
        assert_eq!(linear_segments(&[6, 7, 0, 1], 8), 2);
        assert_eq!(linear_segments(&[0, 1, 2, 3], 8), 1);
    }

    #[test]
    fn permutation_matches_figure_8() {
        // Fig. 8: for p = 8 the destination positions reverse(ν(i)) are
        // 000 100 110 001 011 111 101 010.
        let perm = nu_bit_reversal_permutation(8);
        assert_eq!(
            perm,
            vec![0b000, 0b100, 0b110, 0b001, 0b011, 0b111, 0b101, 0b010]
        );
        // After permuting, the blocks rank 0 sends at step 0 of the
        // reduce-scatter (blocks 1, 2, 5, 6) occupy positions 4–7.
        let mut positions: Vec<usize> = [1, 2, 5, 6].iter().map(|&b| perm[b]).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![4, 5, 6, 7]);
    }

    #[test]
    fn permutation_is_valid_for_all_sizes() {
        for s in 1..=10u32 {
            let p = 1usize << s;
            let perm = nu_bit_reversal_permutation(p);
            let inv = inverse_permutation(&perm);
            for i in 0..p {
                assert_eq!(inv[perm[i]], i);
            }
        }
    }

    #[test]
    fn permutation_makes_bine_dd_exchanges_contiguous() {
        // The whole point of the permute strategy: after remapping block i to
        // position reverse(ν(i)), every exchange of the distance-doubling
        // Bine butterfly reduce-scatter touches a contiguous range.
        for s in 2..=8u32 {
            let p = 1usize << s;
            let bf = Butterfly::new(ButterflyKind::BineDistanceDoubling, p);
            let resp = bf.responsibilities();
            let perm = nu_bit_reversal_permutation(p);
            for (step, step_resp) in resp.iter().enumerate().take(s as usize) {
                for r in 0..p {
                    let q = bf.partner(r, step as u32);
                    let sent: Vec<u32> = step_resp[q]
                        .iter()
                        .map(|&b| perm[b as usize] as u32)
                        .collect();
                    assert_eq!(
                        linear_segments(&sent, p),
                        1,
                        "p={p} step={step} rank={r} blocks not contiguous after permute"
                    );
                }
            }
        }
    }
}
