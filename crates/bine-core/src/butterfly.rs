//! Butterfly communication patterns: Bine butterflies (Sec. 3.1) and the
//! standard recursive-doubling / recursive-halving butterflies they replace.
//!
//! In a butterfly pattern every rank exchanges data with exactly one peer at
//! every step; after `s = log2 p` steps, data from every rank has reached
//! every other rank. Butterflies underlie allgather, reduce-scatter and the
//! small-vector (recursive-doubling) allreduce.

use crate::negabinary::{alternating_sum, num_steps};

/// Which butterfly-construction rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ButterflyKind {
    /// Bine distance-halving butterfly (Eq. 4): distances shrink step by step.
    BineDistanceHalving,
    /// Bine distance-doubling butterfly (Eq. 5): distances grow step by step.
    BineDistanceDoubling,
    /// Standard recursive-doubling butterfly (`r ⊕ 2^i`).
    RecursiveDoubling,
    /// Standard recursive-halving butterfly (`r ⊕ 2^(s−1−i)`).
    RecursiveHalving,
}

impl ButterflyKind {
    /// All supported butterfly kinds, in a stable order.
    pub const ALL: [ButterflyKind; 4] = [
        ButterflyKind::BineDistanceHalving,
        ButterflyKind::BineDistanceDoubling,
        ButterflyKind::RecursiveDoubling,
        ButterflyKind::RecursiveHalving,
    ];

    /// Short human-readable name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            ButterflyKind::BineDistanceHalving => "bine-butterfly-dh",
            ButterflyKind::BineDistanceDoubling => "bine-butterfly-dd",
            ButterflyKind::RecursiveDoubling => "recursive-doubling",
            ButterflyKind::RecursiveHalving => "recursive-halving",
        }
    }

    /// True for the two Bine variants.
    pub fn is_bine(&self) -> bool {
        matches!(
            self,
            ButterflyKind::BineDistanceHalving | ButterflyKind::BineDistanceDoubling
        )
    }
}

/// A butterfly exchange pattern over `p = 2^s` ranks and `s` steps.
///
/// The pairing at every step is an involution (the partner of my partner is
/// me) and pairs always match an even rank with an odd rank for the Bine
/// variants.
#[derive(Debug, Clone)]
pub struct Butterfly {
    kind: ButterflyKind,
    p: usize,
    s: u32,
}

impl Butterfly {
    /// Creates a butterfly of the given kind over `p = 2^s` ranks.
    pub fn new(kind: ButterflyKind, p: usize) -> Self {
        let s = num_steps(p);
        Self { kind, p, s }
    }

    /// The construction rule of this butterfly.
    pub fn kind(&self) -> ButterflyKind {
        self.kind
    }

    /// Number of ranks `p`.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Number of steps `s = log2 p`.
    pub fn num_steps(&self) -> u32 {
        self.s
    }

    /// The peer rank `r` exchanges data with at `step`.
    ///
    /// # Panics
    /// Panics if `r ≥ p` or `step ≥ s`.
    pub fn partner(&self, r: usize, step: u32) -> usize {
        assert!(r < self.p, "rank {r} out of range for p = {}", self.p);
        assert!(step < self.s, "step {step} out of range for s = {}", self.s);
        let p = self.p as i64;
        match self.kind {
            ButterflyKind::RecursiveDoubling => r ^ (1usize << step),
            ButterflyKind::RecursiveHalving => r ^ (1usize << (self.s - 1 - step)),
            ButterflyKind::BineDistanceHalving => {
                // Eq. 4: the signed distance is Σ_{k=0}^{s−i−1} (−2)^k.
                let d = alternating_sum(self.s - step);
                let q = if r.is_multiple_of(2) {
                    r as i64 + d
                } else {
                    r as i64 - d
                };
                q.rem_euclid(p) as usize
            }
            ButterflyKind::BineDistanceDoubling => {
                // Eq. 5: the signed distance is Σ_{k=0}^{j} (−2)^k.
                let d = alternating_sum(step + 1);
                let q = if r.is_multiple_of(2) {
                    r as i64 + d
                } else {
                    r as i64 - d
                };
                q.rem_euclid(p) as usize
            }
        }
    }

    /// The modular distance covered by an exchange at `step`.
    pub fn step_distance(&self, step: u32) -> u64 {
        match self.kind {
            ButterflyKind::RecursiveDoubling => 1u64 << step,
            ButterflyKind::RecursiveHalving => 1u64 << (self.s - 1 - step),
            ButterflyKind::BineDistanceHalving => alternating_sum(self.s - step).unsigned_abs(),
            ButterflyKind::BineDistanceDoubling => alternating_sum(step + 1).unsigned_abs(),
        }
    }

    /// Iterator over the (unordered) pairs exchanging data at `step`.
    ///
    /// Each pair `(a, b)` is reported once, with `a` the even rank for the
    /// Bine variants and the smaller rank for the standard variants.
    pub fn pairs(&self, step: u32) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.p / 2);
        for r in 0..self.p {
            let q = self.partner(r, step);
            if (self.kind.is_bine() && r % 2 == 0) || (!self.kind.is_bine() && r < q) {
                out.push((r, q));
            }
        }
        out
    }

    /// The "responsibility sets" used by vector-halving collectives
    /// (reduce-scatter and its inverses).
    ///
    /// `responsibility(step)[r]` is the set of block indices that rank `r`
    /// must still hold *after* exchanging at `step`, computed backwards from
    /// the final state where each rank holds exactly its own block. At step
    /// `step`, a rank sends to its partner the blocks in the partner's
    /// responsibility set and keeps its own.
    pub fn responsibilities(&self) -> Vec<Vec<Vec<u32>>> {
        let p = self.p;
        let s = self.s as usize;
        if s == 0 {
            return Vec::new();
        }
        // after[step][r] = blocks r is responsible for after step `step`.
        let mut after: Vec<Vec<Vec<u32>>> = vec![Vec::new(); s];
        after[s - 1] = (0..p).map(|r| vec![r as u32]).collect();
        for step in (0..s - 1).rev() {
            let next = &after[step + 1];
            after[step] = (0..p)
                .map(|r| {
                    let q = self.partner(r, (step + 1) as u32);
                    let mut set: Vec<u32> = next[r].iter().chain(next[q].iter()).copied().collect();
                    set.sort_unstable();
                    set
                })
                .collect();
        }
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_butterfly_invariants(bf: &Butterfly) {
        let p = bf.num_ranks();
        let s = bf.num_steps();

        // Pairing is an involution with no self-pairs at every step.
        for step in 0..s {
            for r in 0..p {
                let q = bf.partner(r, step);
                assert_ne!(q, r, "self pair at step {step}");
                assert_eq!(bf.partner(q, step), r, "not an involution at step {step}");
            }
            assert_eq!(bf.pairs(step).len(), p / 2);
        }

        // Full dissemination: simulating an allgather, every rank ends up
        // with contributions from all ranks.
        let mut have: Vec<HashSet<usize>> = (0..p).map(|r| HashSet::from([r])).collect();
        for step in 0..s {
            let snapshot = have.clone();
            for (r, set) in have.iter_mut().enumerate() {
                let q = bf.partner(r, step);
                set.extend(snapshot[q].iter().copied());
            }
        }
        for (r, set) in have.iter().enumerate() {
            assert_eq!(set.len(), p, "rank {r} did not receive all contributions");
        }
    }

    #[test]
    fn all_butterfly_kinds_satisfy_invariants() {
        for &kind in &ButterflyKind::ALL {
            for s in 1..=10u32 {
                let bf = Butterfly::new(kind, 1usize << s);
                check_butterfly_invariants(&bf);
            }
        }
    }

    #[test]
    fn bine_butterflies_pair_even_with_odd() {
        for &kind in &[
            ButterflyKind::BineDistanceHalving,
            ButterflyKind::BineDistanceDoubling,
        ] {
            let bf = Butterfly::new(kind, 64);
            for step in 0..bf.num_steps() {
                for r in (0..64).step_by(2) {
                    assert_eq!(bf.partner(r, step) % 2, 1);
                }
            }
        }
    }

    #[test]
    fn bine_dh_eight_ranks_matches_hand_computation() {
        // p = 8: step distances are 3, 1, 1 (|1−2+4| = 3, |1−2| = 1, |1| = 1).
        let bf = Butterfly::new(ButterflyKind::BineDistanceHalving, 8);
        assert_eq!(bf.step_distance(0), 3);
        assert_eq!(bf.step_distance(1), 1);
        assert_eq!(bf.step_distance(2), 1);
        assert_eq!(bf.partner(0, 0), 3);
        assert_eq!(bf.partner(2, 0), 5);
        assert_eq!(bf.partner(6, 0), 1);
        assert_eq!(bf.partner(0, 1), 7); // d = −1 for even ranks
        assert_eq!(bf.partner(0, 2), 1);
    }

    #[test]
    fn bine_dd_is_reverse_of_bine_dh() {
        for s in 1..=9u32 {
            let p = 1usize << s;
            let dh = Butterfly::new(ButterflyKind::BineDistanceHalving, p);
            let dd = Butterfly::new(ButterflyKind::BineDistanceDoubling, p);
            for step in 0..s {
                for r in 0..p {
                    assert_eq!(dh.partner(r, step), dd.partner(r, s - 1 - step));
                }
            }
        }
    }

    #[test]
    fn bine_distances_are_about_two_thirds_of_standard() {
        let p = 1024;
        let s = 10;
        let bine = Butterfly::new(ButterflyKind::BineDistanceHalving, p);
        let std = Butterfly::new(ButterflyKind::RecursiveHalving, p);
        for step in 0..s {
            let ratio = bine.step_distance(step) as f64 / std.step_distance(step) as f64;
            assert!((0.5..=1.0).contains(&ratio), "step {step} ratio {ratio}");
        }
        let total_bine: u64 = (0..s).map(|i| bine.step_distance(i)).sum();
        let total_std: u64 = (0..s).map(|i| std.step_distance(i)).sum();
        assert!((total_bine as f64) < 0.72 * total_std as f64);
    }

    #[test]
    fn responsibilities_partition_blocks() {
        for &kind in &ButterflyKind::ALL {
            let p = 32;
            let bf = Butterfly::new(kind, p);
            let resp = bf.responsibilities();
            // After the last step each rank owns exactly its own block.
            for (r, owned) in resp[bf.num_steps() as usize - 1].iter().enumerate() {
                assert_eq!(owned, &vec![r as u32]);
            }
            // Before the first exchange, the blocks a pair is jointly
            // responsible for partition into the two halves they keep.
            for (step, step_resp) in resp.iter().enumerate() {
                for r in 0..p {
                    let q = bf.partner(r, step as u32);
                    let mine: HashSet<u32> = step_resp[r].iter().copied().collect();
                    let theirs: HashSet<u32> = step_resp[q].iter().copied().collect();
                    assert!(mine.is_disjoint(&theirs), "step {step} rank {r}");
                }
            }
        }
    }
}
