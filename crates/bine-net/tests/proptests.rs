//! Property tests for the cost model and the discrete-event simulator.
//!
//! The two time models are pinned against each other and against the
//! alpha–beta closed form in the regime where all three must coincide: the
//! **one-segment, congestion-free limit** (an [`IdealFullMesh`], where no
//! two messages ever share a link). Outside that limit the DES may only be
//! *faster* than the synchronous barrier model on an ideal network — it
//! removes barriers, never adds work.

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::fault::{FaultPlan, FaultSpec};
use bine_net::sim::{SimArena, SimRequest};
use bine_net::topology::{Dragonfly, FatTree, IdealFullMesh, Topology, Torus};
use bine_net::traffic;
use bine_sched::{algorithms, build, AlgorithmId, Collective};
use proptest::prelude::*;

/// A balanced torus shape with `p = 2^s` nodes (the third topology class the
/// optimized simulator is pinned on, beside the fat tree and the ideal mesh).
fn torus_dims(p: usize) -> Vec<usize> {
    let mut dims = vec![1usize; 3];
    let mut rest = p;
    let mut d = 0;
    while rest > 1 {
        dims[d % 3] *= 2;
        rest /= 2;
        d += 1;
    }
    dims
}

fn any_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(Collective::ALL.to_vec())
}

fn any_vector_bytes() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![
        32u64,
        1000,
        4096,
        65536,
        1 << 20,
        (8 << 20) + 17,
        64 << 20,
    ])
}

fn pick_algorithm(collective: Collective, seed: usize) -> AlgorithmId {
    let algs = algorithms(collective);
    algs[seed % algs.len()].clone()
}

/// Algorithms whose ranks legitimately run ahead of the global barrier even
/// on an ideal network, so the DES is *faster* than the synchronous model
/// rather than equal to it (verified exhaustively over every root at
/// p ∈ {4..32}: the DES is never slower, see
/// [`des_never_exceeds_sync_on_an_ideal_network`]):
///
/// * `pairwise` alltoall sends pre-held data every step — no send depends on
///   any receive, so the whole schedule pipelines through the send ports;
/// * the rooted gather/scatter trees and the composed two-phase schedules
///   (`scatter-allgather`, `rs-gather` and their Bine variants) leave some
///   ranks idle for intermediate steps or mix per-message segment counts
///   within a step, so the per-step maximum the synchronous model charges is
///   not always on the dependency-driven critical path.
///
/// For everything else every rank's step-*t* sends are bound by its own
/// step-*t − 1* traffic, which is exactly the synchronous model's per-step
/// accounting — so DES time equals synchronous time to rounding error.
fn overlaps_even_without_congestion(collective: Collective, name: &str) -> bool {
    match collective {
        Collective::Alltoall => name == "pairwise",
        Collective::Broadcast => matches!(name, "scatter-allgather" | "bine-scatter-allgather"),
        Collective::Reduce => matches!(name, "rs-gather" | "bine-rs-gather"),
        Collective::Gather | Collective::Scatter => matches!(name, "bine" | "binomial-dh"),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Acceptance property: in the one-segment, congestion-free limit the
    // DES reproduces the synchronous model within 1e-9 relative error.
    #[test]
    fn des_equals_sync_in_the_congestion_free_single_segment_limit(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        if overlaps_even_without_congestion(collective, alg.name()) {
            return Ok(());
        }
        let sched = build(collective, alg.name(), p, root_seed % p).unwrap_or_else(|| panic!("{}", alg.name()));
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sync = model.time_us(&sched, n, &topo, &alloc);
        let des = SimRequest::new(&model, &sched.compile(), n, &topo, &alloc)
            .time_only()
            .run()
            .makespan_us();
        prop_assert!(
            (des - sync).abs() <= 1e-9 * sync.max(1e-12),
            "{:?}/{} p={p} n={n}: DES {des} vs sync {sync}", collective, alg.name()
        );
    }

    // The compact byte-count summary path reproduces the full estimate
    // bit for bit: same u64 byte totals into the same f64 operations in
    // the same order, on congested topologies and segmented schedules
    // alike. The sweeps (heatmaps, tuning) rely on this equivalence.
    #[test]
    fn estimate_summary_is_bit_identical_to_estimate(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        root_seed in 0usize..1000,
        n in any_vector_bytes(),
    ) {
        use bine_net::cost::CostSummary;
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let sched = build(collective, alg.name(), p, root_seed % p)
            .unwrap_or_else(|| panic!("{}", alg.name()))
            .segmented(chunks);
        let model = CostModel::default();
        for topo in [
            Box::new(FatTree::new(p, 4, 1)) as Box<dyn Topology>,
            Box::new(Dragonfly::lumi()),
        ] {
            let alloc = Allocation::block(p);
            let full = model.estimate(&sched, n, topo.as_ref(), &alloc);
            let summary = CostSummary::of(&sched);
            let fast = model.estimate_summary(&summary, n, topo.as_ref(), &alloc);
            prop_assert_eq!(full.total_us.to_bits(), fast.total_us.to_bits());
            prop_assert_eq!(full.latency_us.to_bits(), fast.latency_us.to_bits());
            prop_assert_eq!(full.bandwidth_us.to_bits(), fast.bandwidth_us.to_bits());
            prop_assert_eq!(full.compute_us.to_bits(), fast.compute_us.to_bits());
        }
    }

    // On an ideal network the DES can only remove barrier waiting, never
    // add time — for any algorithm and any segmentation.
    #[test]
    fn des_never_exceeds_sync_on_an_ideal_network(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=6,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let sched = build(collective, alg.name(), p, 0).unwrap_or_else(|| panic!("{}", alg.name())).segmented(chunks);
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sync = model.time_us(&sched, n, &topo, &alloc);
        let des = SimRequest::new(&model, &sched.compile(), n, &topo, &alloc)
            .time_only()
            .run()
            .makespan_us();
        prop_assert!(
            des <= sync * (1.0 + 1e-9),
            "{:?}/{} p={p} n={n} chunks={chunks}: DES {des} > sync {sync}", collective, alg.name()
        );
    }

    // Tentpole pin: the optimized simulator (incremental fair share, arena
    // state, cached routes) is bit-identical to the from-scratch reference —
    // same makespan bits, same per-rank finish bits, same message and
    // peak-flow counts — for every collective, any catalog algorithm, any
    // segmentation, on all three pinned topology classes (ideal full mesh,
    // torus, oversubscribed fat tree). Not tolerance-based: the incremental
    // recomputation must perform the same float ops per link.
    #[test]
    fn optimized_des_is_bit_identical_to_the_reference(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        root_seed in 0usize..1000,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let compiled = build(collective, alg.name(), p, root_seed % p)
            .unwrap_or_else(|| panic!("{}", alg.name()))
            .segmented(chunks)
            .compile();
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let mut arena = SimArena::new();
        for topo in [
            Box::new(IdealFullMesh::new(p)) as Box<dyn Topology>,
            Box::new(Torus::new(torus_dims(p))),
            Box::new(FatTree::new(p, 4, 1)),
        ] {
            let reference = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .run()
                .into_report();
            let fast = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .run()
                .into_report();
            prop_assert_eq!(
                reference.makespan_us.to_bits(), fast.makespan_us.to_bits(),
                "{:?}/{} p={p} n={n} chunks={chunks} on {}: reference {} vs fast {}",
                collective, alg.name(), topo.name(), reference.makespan_us, fast.makespan_us
            );
            prop_assert_eq!(reference.network_messages, fast.network_messages);
            // The satellite invariance check: overlap accounting is not
            // allowed to drift either.
            prop_assert_eq!(reference.peak_active_flows, fast.peak_active_flows);
            for (r, (a, b)) in reference.rank_finish_us.iter().zip(&fast.rank_finish_us).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{} rank {r} finish: reference {} vs fast {}",
                    collective, alg.name(), a, b
                );
            }
        }
    }

    // Fault-injection pin 1 (satellite): a zero-fault plan — both the empty
    // plan and a plan whose entries are all explicit identities — leaves the
    // DES makespan, the per-rank finish times and `peak_active_flows`
    // bit-identical to the plan-free path, for every collective, any catalog
    // algorithm, any segmentation, on all three pinned topology classes.
    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        root_seed in 0usize..1000,
        n in any_vector_bytes(),
        identity_entries in prop::sample::select(vec![false, true]),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let compiled = build(collective, alg.name(), p, root_seed % p)
            .unwrap_or_else(|| panic!("{}", alg.name()))
            .segmented(chunks)
            .compile();
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let plan = if identity_entries {
            // Identity values spelled out explicitly: factor 1.0, spike
            // 0.0, slowdown 1.0 must all be bit-exact no-ops.
            FaultPlan::none()
                .degrade_link(0, 1.0)
                .spike_link(1, 0.0)
                .straggler(p - 1, 1.0)
        } else {
            FaultPlan::none()
        };
        prop_assert!(plan.is_zero());
        let mut arena = SimArena::new();
        for topo in [
            Box::new(IdealFullMesh::new(p)) as Box<dyn Topology>,
            Box::new(Torus::new(torus_dims(p))),
            Box::new(FatTree::new(p, 4, 1)),
        ] {
            let bare = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .run()
                .into_report();
            let faulted = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .faults(&plan)
                .run()
                .into_report();
            prop_assert_eq!(
                bare.makespan_us.to_bits(), faulted.makespan_us.to_bits(),
                "{:?}/{} p={p} n={n} chunks={chunks} on {}: bare {} vs zero-fault {}",
                collective, alg.name(), topo.name(), bare.makespan_us, faulted.makespan_us
            );
            prop_assert_eq!(bare.network_messages, faulted.network_messages);
            prop_assert_eq!(bare.peak_active_flows, faulted.peak_active_flows);
            for (r, (a, b)) in bare.rank_finish_us.iter().zip(&faulted.rank_finish_us).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{} rank {r} finish: bare {} vs zero-fault {}",
                    collective, alg.name(), a, b
                );
            }
            // The reference agrees under the same zero plan.
            let reference = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .faults(&plan)
                .run()
                .into_report();
            prop_assert_eq!(reference.makespan_us.to_bits(), faulted.makespan_us.to_bits());
        }
    }

    // Fault-injection pin 2 (tentpole): under a seeded fault plan —
    // asymmetric link capacities, latency spikes, stragglers — the optimized
    // path stays bit-identical to the reference. Asymmetric link speeds are
    // exactly what stresses the incremental fair-share rebuild: water-filling
    // levels now differ per link even on symmetric topologies.
    #[test]
    fn optimized_des_stays_pinned_to_the_reference_under_faults(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        fault_seed in 0u64..1000,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let compiled = build(collective, alg.name(), p, 0)
            .unwrap_or_else(|| panic!("{}", alg.name()))
            .segmented(chunks)
            .compile();
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        // A harsh spec so faults are actually drawn at small link counts.
        let spec = FaultSpec {
            seed: fault_seed,
            degraded_link_fraction: 0.5,
            min_bandwidth_factor: 0.2,
            spiked_link_fraction: 0.25,
            max_latency_spike_us: 15.0,
            straggler_fraction: 0.25,
            max_compute_slowdown: 5.0,
        };
        let mut arena = SimArena::new();
        for topo in [
            Box::new(IdealFullMesh::new(p)) as Box<dyn Topology>,
            Box::new(Torus::new(torus_dims(p))),
            Box::new(FatTree::new(p, 4, 1)),
        ] {
            let plan = spec.plan(topo.num_links(), p);
            let reference = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .faults(&plan)
                .run()
                .into_report();
            let fast = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .faults(&plan)
                .run()
                .into_report();
            prop_assert_eq!(
                reference.makespan_us.to_bits(), fast.makespan_us.to_bits(),
                "{:?}/{} p={p} n={n} chunks={chunks} seed={fault_seed} on {}: \
                 reference {} vs fast {}",
                collective, alg.name(), topo.name(), reference.makespan_us, fast.makespan_us
            );
            prop_assert_eq!(reference.network_messages, fast.network_messages);
            prop_assert_eq!(reference.peak_active_flows, fast.peak_active_flows);
            for (r, (a, b)) in reference.rank_finish_us.iter().zip(&fast.rank_finish_us).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{} rank {r} finish under faults: reference {} vs fast {}",
                    collective, alg.name(), a, b
                );
            }
        }
    }

    // Fault-injection pin 3: the incremental fair share equals the reference
    // at every rate event under faults too — the per-event analogue of the
    // report-level pin above, on the congested topology classes.
    #[test]
    fn incremental_rates_stay_pinned_under_faults(
        collective in any_collective(),
        s in 2u32..=4,
        alg_seed in 0usize..100,
        fault_seed in 0u64..1000,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let compiled = build(collective, alg.name(), p, 0).unwrap_or_else(|| panic!("{}", alg.name())).compile();
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let spec = FaultSpec {
            seed: fault_seed,
            degraded_link_fraction: 0.5,
            min_bandwidth_factor: 0.2,
            spiked_link_fraction: 0.25,
            max_latency_spike_us: 15.0,
            straggler_fraction: 0.25,
            max_compute_slowdown: 5.0,
        };
        for topo in [
            Box::new(FatTree::new(p, 4, 1)) as Box<dyn Topology>,
            Box::new(Torus::new(torus_dims(p))),
        ] {
            let plan = spec.plan(topo.num_links(), p);
            type Trace = Vec<(u64, Vec<(u32, u64)>)>;
            fn entry(t: f64, rates: &[(u32, f64)]) -> (u64, Vec<(u32, u64)>) {
                (
                    t.to_bits(),
                    rates.iter().map(|&(send, r)| (send, r.to_bits())).collect(),
                )
            }
            let mut ref_trace: Trace = Vec::new();
            let mut ref_probe = |t: f64, rates: &[(u32, f64)]| ref_trace.push(entry(t, rates));
            SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .faults(&plan)
                .probe(&mut ref_probe)
                .run();
            let mut fast_trace: Trace = Vec::new();
            let mut fast_probe = |t: f64, rates: &[(u32, f64)]| fast_trace.push(entry(t, rates));
            let mut arena = SimArena::new();
            SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .faults(&plan)
                .probe(&mut fast_probe)
                .run();
            prop_assert_eq!(ref_trace.len(), fast_trace.len());
            for (i, (a, b)) in ref_trace.iter().zip(&fast_trace).enumerate() {
                prop_assert_eq!(a.0, b.0, "faulted event {i}: time diverged");
                prop_assert_eq!(
                    &a.1, &b.1,
                    "{:?}/{} p={p} n={n} faulted event {i} at t={}: rates diverged",
                    collective, alg.name(), f64::from_bits(a.0)
                );
            }
        }
    }

    // The incremental fair share equals the reference fair share at *every*
    // rate event, not just in the final completion times: both simulators
    // are probed after each recomputation and must report the same event
    // times and the same (send, rate) bits for every in-flight flow.
    #[test]
    fn incremental_rates_equal_reference_rates_at_every_event(
        collective in any_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let compiled = build(collective, alg.name(), p, 0)
            .unwrap_or_else(|| panic!("{}", alg.name()))
            .segmented(chunks)
            .compile();
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        // Congested topologies: flows share links, so components are
        // non-trivial and the incremental path actually exercises partial
        // recomputation.
        for topo in [
            Box::new(FatTree::new(p, 4, 1)) as Box<dyn Topology>,
            Box::new(Torus::new(torus_dims(p))),
        ] {
            type Trace = Vec<(u64, Vec<(u32, u64)>)>;
            fn entry(t: f64, rates: &[(u32, f64)]) -> (u64, Vec<(u32, u64)>) {
                (
                    t.to_bits(),
                    rates.iter().map(|&(send, r)| (send, r.to_bits())).collect(),
                )
            }
            let mut ref_trace: Trace = Vec::new();
            let mut ref_probe = |t: f64, rates: &[(u32, f64)]| ref_trace.push(entry(t, rates));
            SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .probe(&mut ref_probe)
                .run();
            let mut fast_trace: Trace = Vec::new();
            let mut fast_probe = |t: f64, rates: &[(u32, f64)]| fast_trace.push(entry(t, rates));
            let mut arena = SimArena::new();
            SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .probe(&mut fast_probe)
                .run();
            prop_assert_eq!(
                ref_trace.len(), fast_trace.len(),
                "{:?}/{} p={p}: {} reference rate events vs {} incremental",
                collective, alg.name(), ref_trace.len(), fast_trace.len()
            );
            for (i, (a, b)) in ref_trace.iter().zip(&fast_trace).enumerate() {
                prop_assert_eq!(a.0, b.0, "event {i}: time diverged");
                prop_assert_eq!(
                    &a.1, &b.1,
                    "{:?}/{} p={p} n={n} event {i} at t={}: rates diverged",
                    collective, alg.name(), f64::from_bits(a.0)
                );
            }
        }
    }

    // The simulator is deterministic: identical inputs give bit-identical
    // makespans (ties in the event queue resolve FIFO, fair-share rates
    // iterate links in id order).
    #[test]
    fn des_is_deterministic(
        collective in any_collective(),
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        n in any_vector_bytes(),
    ) {
        let p = 16;
        let alg = pick_algorithm(collective, alg_seed);
        let sched = build(collective, alg.name(), p, 3).unwrap_or_else(|| panic!("{}", alg.name()));
        let topo = FatTree::new(p, 4, 1);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = sched.segmented(chunks).compile();
        let a = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .time_only()
            .run()
            .makespan_us();
        let b = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .time_only()
            .run()
            .makespan_us();
        prop_assert_eq!(a.to_bits(), b.to_bits(), "{}", alg.name());
    }

    // Synchronous-model time is monotone in the vector size on every
    // topology class (more bytes can never be modelled as faster).
    #[test]
    fn sync_time_is_monotone_in_vector_size(
        collective in any_collective(),
        alg_seed in 0usize..100,
        topo_seed in 0usize..3,
        n1 in any_vector_bytes(),
        n2 in any_vector_bytes(),
    ) {
        let p = 16;
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        let alg = pick_algorithm(collective, alg_seed);
        let sched = build(collective, alg.name(), p, 0).unwrap_or_else(|| panic!("{}", alg.name()));
        let topo: Box<dyn Topology> = match topo_seed {
            0 => Box::new(Dragonfly::lumi()),
            1 => Box::new(FatTree::marenostrum5(320)),
            _ => Box::new(IdealFullMesh::new(p)),
        };
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let t_lo = model.time_us(&sched, lo, topo.as_ref(), &alloc);
        let t_hi = model.time_us(&sched, hi, topo.as_ref(), &alloc);
        prop_assert!(
            t_lo <= t_hi * (1.0 + 1e-12),
            "{}: time({lo}) = {t_lo} > time({hi}) = {t_hi}", alg.name()
        );
    }

    // Traffic accounting is invariant under segmentation: the pipelining
    // transform partitions blocks over more messages but moves exactly the
    // same bytes over exactly the same links.
    #[test]
    fn traffic_is_invariant_under_segmentation(
        collective in any_collective(),
        alg_seed in 0usize..100,
        chunks in 2usize..=8,
        n in any_vector_bytes(),
        topo_seed in 0usize..2,
    ) {
        let p = 32;
        let alg = pick_algorithm(collective, alg_seed);
        let sched = build(collective, alg.name(), p, 0).unwrap_or_else(|| panic!("{}", alg.name()));
        let seg = sched.segmented(chunks);
        let topo: Box<dyn Topology> = match topo_seed {
            0 => Box::new(Dragonfly::leonardo()),
            _ => Box::new(FatTree::new(p, 4, 1)),
        };
        let alloc = Allocation::block(p);
        let base = traffic::measure(&sched, n, topo.as_ref(), &alloc);
        let piped = traffic::measure(&seg, n, topo.as_ref(), &alloc);
        prop_assert_eq!(base.total_bytes, piped.total_bytes, "{}", alg.name());
        prop_assert_eq!(base.global_bytes, piped.global_bytes, "{}", alg.name());
        prop_assert_eq!(base.local_link_bytes, piped.local_link_bytes, "{}", alg.name());
        prop_assert_eq!(base.global_link_bytes, piped.global_link_bytes, "{}", alg.name());
        prop_assert_eq!(base.max_link_bytes, piped.max_link_bytes, "{}", alg.name());
        prop_assert!(piped.messages >= base.messages, "{}", alg.name());
        prop_assert!(piped.global_messages >= base.global_messages, "{}", alg.name());
    }
}

/// API-consolidation pin: every one of the twelve deprecated entry points is
/// a one-line wrapper over [`SimRequest`], and this property keeps each
/// wrapper bit-identical to the builder spelling it documents — same makespan
/// bits, same per-rank finish bits, same message and peak-flow counts, same
/// probed rate traces. Downstream code can migrate call-by-call without any
/// numeric drift.
mod wrapper_parity {
    #![allow(deprecated)]

    use super::*;

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn deprecated_wrappers_are_bit_identical_to_the_builder(
        collective in any_collective(),
        s in 2u32..=4,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        fault_seed in 0u64..1000,
        n in any_vector_bytes(),
    ) {
        use bine_net::sim::{
            sim_time_in, sim_time_in_faulted, sim_time_us, simulate, simulate_faulted,
            simulate_in, simulate_in_faulted, simulate_probed, simulate_reference,
            simulate_reference_faulted, simulate_reference_probed, simulate_schedule,
        };
        use bine_net::sim::SimReport;

        fn assert_reports_match(a: &SimReport, b: &SimReport) -> Result<(), TestCaseError> {
            prop_assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
            prop_assert_eq!(a.network_messages, b.network_messages);
            prop_assert_eq!(a.peak_active_flows, b.peak_active_flows);
            prop_assert_eq!(a.rank_finish_us.len(), b.rank_finish_us.len());
            for (x, y) in a.rank_finish_us.iter().zip(&b.rank_finish_us) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            Ok(())
        }

        let p = 1usize << s;
        let alg = pick_algorithm(collective, alg_seed);
        let sched = build(collective, alg.name(), p, 0).unwrap_or_else(|| panic!("{}", alg.name()));
        let compiled = sched.segmented(chunks).compile();
        let model = CostModel::default();
        let topo = FatTree::new(p, 4, 1);
        let alloc = Allocation::block(p);
        let spec = FaultSpec {
            seed: fault_seed,
            degraded_link_fraction: 0.5,
            min_bandwidth_factor: 0.2,
            spiked_link_fraction: 0.25,
            max_latency_spike_us: 15.0,
            straggler_fraction: 0.25,
            max_compute_slowdown: 5.0,
        };
        let plan = spec.plan(topo.num_links(), p);

        // Reference path: bare, faulted, probed (with and without a plan).
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .reference()
            .run()
            .into_report();
        assert_reports_match(&simulate_reference(&model, &compiled, n, &topo, &alloc), &via_builder)?;
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .reference()
            .faults(&plan)
            .run()
            .into_report();
        assert_reports_match(
            &simulate_reference_faulted(&model, &compiled, n, &topo, &alloc, &plan),
            &via_builder,
        )?;
        for with_plan in [false, true] {
            let plan_opt = with_plan.then_some(&plan);
            type Trace = Vec<(u64, Vec<(u32, u64)>)>;
            let mut wrapper_trace: Trace = Vec::new();
            let mut wrapper_probe =
                |t: f64, rates: &[(u32, f64)]| wrapper_trace.push((
                    t.to_bits(),
                    rates.iter().map(|&(send, r)| (send, r.to_bits())).collect(),
                ));
            let wrapped = simulate_reference_probed(
                &model, &compiled, n, &topo, &alloc, plan_opt, &mut wrapper_probe,
            );
            let mut builder_trace: Trace = Vec::new();
            let mut builder_probe =
                |t: f64, rates: &[(u32, f64)]| builder_trace.push((
                    t.to_bits(),
                    rates.iter().map(|&(send, r)| (send, r.to_bits())).collect(),
                ));
            let mut req = SimRequest::new(&model, &compiled, n, &topo, &alloc)
                .reference()
                .probe(&mut builder_probe);
            if let Some(plan) = plan_opt {
                req = req.faults(plan);
            }
            let via_builder = req.run().into_report();
            assert_reports_match(&wrapped, &via_builder)?;
            prop_assert_eq!(&wrapper_trace, &builder_trace);
        }

        // Optimized path: fresh-arena, caller-arena, time-only and probed
        // variants, bare and faulted.
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .run()
            .into_report();
        assert_reports_match(&simulate(&model, &compiled, n, &topo, &alloc), &via_builder)?;
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .faults(&plan)
            .run()
            .into_report();
        assert_reports_match(&simulate_faulted(&model, &compiled, n, &topo, &alloc, &plan), &via_builder)?;

        let mut arena = SimArena::new();
        let wrapped = simulate_in(&mut arena, &model, &compiled, n, &topo, &alloc);
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .arena(&mut arena)
            .run()
            .into_report();
        assert_reports_match(&wrapped, &via_builder)?;
        let wrapped = simulate_in_faulted(&mut arena, &model, &compiled, n, &topo, &alloc, &plan);
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .arena(&mut arena)
            .faults(&plan)
            .run()
            .into_report();
        assert_reports_match(&wrapped, &via_builder)?;

        let wrapped = sim_time_in(&mut arena, &model, &compiled, n, &topo, &alloc);
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .arena(&mut arena)
            .time_only()
            .run()
            .makespan_us();
        prop_assert_eq!(wrapped.to_bits(), via_builder.to_bits());
        let wrapped = sim_time_in_faulted(&mut arena, &model, &compiled, n, &topo, &alloc, &plan);
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .arena(&mut arena)
            .faults(&plan)
            .time_only()
            .run()
            .makespan_us();
        prop_assert_eq!(wrapped.to_bits(), via_builder.to_bits());

        for with_plan in [false, true] {
            let plan_opt = with_plan.then_some(&plan);
            type Trace = Vec<(u64, Vec<(u32, u64)>)>;
            let mut wrapper_trace: Trace = Vec::new();
            let mut wrapper_probe =
                |t: f64, rates: &[(u32, f64)]| wrapper_trace.push((
                    t.to_bits(),
                    rates.iter().map(|&(send, r)| (send, r.to_bits())).collect(),
                ));
            let wrapped = simulate_probed(
                &mut arena, &model, &compiled, n, &topo, &alloc, plan_opt, &mut wrapper_probe,
            );
            let mut builder_trace: Trace = Vec::new();
            let mut builder_probe =
                |t: f64, rates: &[(u32, f64)]| builder_trace.push((
                    t.to_bits(),
                    rates.iter().map(|&(send, r)| (send, r.to_bits())).collect(),
                ));
            let mut req = SimRequest::new(&model, &compiled, n, &topo, &alloc)
                .arena(&mut arena)
                .probe(&mut builder_probe);
            if let Some(plan) = plan_opt {
                req = req.faults(plan);
            }
            let via_builder = req.run().into_report();
            assert_reports_match(&wrapped, &via_builder)?;
            prop_assert_eq!(&wrapper_trace, &builder_trace);
        }

        // Uncompiled-schedule conveniences: segment + compile + run.
        let wrapped = simulate_schedule(&model, &sched, chunks, n, &topo, &alloc);
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .run()
            .into_report();
        assert_reports_match(&wrapped, &via_builder)?;
        let wrapped = sim_time_us(&model, &sched, chunks, n, &topo, &alloc);
        let via_builder = SimRequest::new(&model, &compiled, n, &topo, &alloc)
            .run()
            .makespan_us();
        prop_assert_eq!(wrapped.to_bits(), via_builder.to_bits());
    }

    // Synthesized schedules are tuned *by* the DES (the tuner's refinement
    // stage ranks them against the catalog), so the optimized simulator
    // must stay bit-identical to the reference on their tier-crossing,
    // irregular-fan-out shapes too — on the very fabric they are derived
    // for: the serving-layer view of the heterogeneous island fat tree.
    #[test]
    fn optimized_des_is_bit_identical_on_synthesized_schedules(
        nodes in prop::sample::select(vec![16usize, 24, 32]),
        collective_seed in 0usize..3,
        chunks in 1usize..=4,
        n in any_vector_bytes(),
    ) {
        let collective = [Collective::Broadcast, Collective::Reduce, Collective::Allreduce]
            [collective_seed];
        let view = bine_net::view::system_view("heterofat", nodes).expect("heterofat view");
        let topo = bine_net::view::system_topology("heterofat", nodes).expect("heterofat");
        let alloc = bine_net::view::system_allocation(
            "heterofat", topo.as_ref(), nodes, bine_net::view::TUNING_PLACEMENT_SEED,
        );
        let model = CostModel::default();
        let mut arena = SimArena::new();
        for id in bine_sched::synth_algorithms(collective, &view) {
            let spec = bine_sched::SynthSpec::parse(id.name()).expect("canonical name");
            let compiled = spec
                .synthesize(collective, &view, 0)
                .unwrap_or_else(|| panic!("{}", id.name()))
                .segmented(chunks)
                .compile();
            let reference = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .run()
                .into_report();
            let fast = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .run()
                .into_report();
            prop_assert_eq!(
                reference.makespan_us.to_bits(), fast.makespan_us.to_bits(),
                "{:?}/{} p={nodes} n={n} chunks={chunks}: reference {} vs fast {}",
                collective, id.name(), reference.makespan_us, fast.makespan_us
            );
            prop_assert_eq!(reference.network_messages, fast.network_messages);
            prop_assert_eq!(reference.peak_active_flows, fast.peak_active_flows);
            for (r, (a, b)) in reference.rank_finish_us.iter().zip(&fast.rank_finish_us).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{} rank {r} finish: reference {} vs fast {}",
                    collective, id.name(), a, b
                );
            }
        }
    }
    }
}

/// The synchronous model — and therefore, by the parity property above, the
/// DES — reduces to the textbook alpha–beta closed form when congestion is
/// absent.
#[test]
fn sync_matches_the_alpha_beta_closed_form_without_congestion() {
    const GIB_PER_US: f64 = 1024.0 * 1024.0 * 1024.0 / 1e6;
    let model = CostModel::default();
    for p in [4usize, 8, 16, 32, 64] {
        let steps = p.trailing_zeros() as f64;
        let topo = IdealFullMesh::new(p);
        let link = topo.link_info();
        let alloc = Allocation::block(p);
        for n in [64u64, 4096, 1 << 20, 32 << 20] {
            // Recursive-doubling allreduce: log2(p) exchanges of the full
            // vector, each reduced at the receiver.
            let sched = build(Collective::Allreduce, "recursive-doubling", p, 0).unwrap();
            let expected = steps
                * (model.alpha_us
                    + link.latency_us
                    + n as f64 / (link.bandwidth_gib_s * GIB_PER_US)
                    + n as f64 / (model.reduce_bandwidth_gib_s * GIB_PER_US));
            let got = model.time_us(&sched, n, &topo, &alloc);
            assert!(
                (got - expected).abs() <= 1e-9 * expected,
                "allreduce/rd p={p} n={n}: {got} vs closed form {expected}"
            );
            let des = SimRequest::new(&model, &sched.compile(), n, &topo, &alloc)
                .time_only()
                .run()
                .makespan_us();
            assert!(
                (des - expected).abs() <= 1e-9 * expected,
                "DES allreduce/rd p={p} n={n}: {des} vs closed form {expected}"
            );

            // Binomial broadcast: log2(p) forwarding rounds of the full
            // vector, no reduction term.
            let sched = build(Collective::Broadcast, "binomial-dd", p, 0).unwrap();
            let expected = steps
                * (model.alpha_us
                    + link.latency_us
                    + n as f64 / (link.bandwidth_gib_s * GIB_PER_US));
            let got = model.time_us(&sched, n, &topo, &alloc);
            assert!(
                (got - expected).abs() <= 1e-9 * expected,
                "bcast/binomial-dd p={p} n={n}: {got} vs closed form {expected}"
            );
        }
    }
}
