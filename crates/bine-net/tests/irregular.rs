//! Network-layer pins for the irregular (v-variant) collectives.
//!
//! The v-variants reuse count-oblivious routing with counts-weighted
//! sizing, so three things must hold on this layer: equal counts reproduce
//! the regular byte accounting *exactly* (same `TrafficReport`, field for
//! field), skewed counts flow through the synchronous model and both DES
//! implementations without disagreement, and the degenerate one-heavy
//! distribution collapses traffic the way the Träff tree promises —
//! heaviest ranks adjacent to the root, so the bulk crosses one edge.

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::sim::{SimArena, SimRequest};
use bine_net::topology::{Dragonfly, FatTree, IdealFullMesh, Topology};
use bine_net::traffic;
use bine_sched::{
    build, build_irregular, irregular_algorithms, Collective, Counts, IrregularAlg, SizeDist,
    IRREGULAR_COLLECTIVES,
};
use proptest::prelude::*;

/// The regular catalog algorithm whose routing an irregular algorithm
/// borrows, for the equal-counts byte-equivalence pin. `None` for `traff`,
/// whose count-aware tree has no regular counterpart.
fn regular_counterpart(collective: Collective, alg: IrregularAlg) -> Option<&'static str> {
    match (collective, alg) {
        (_, IrregularAlg::Traff) => None,
        (Collective::ReduceScatter, IrregularAlg::Bine) => Some("bine-permute"),
        (_, IrregularAlg::Bine) => Some("bine"),
        (_, IrregularAlg::BinomialDd) => Some("binomial-dd"),
        (_, IrregularAlg::Ring) => Some("ring"),
    }
}

fn any_irregular_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(IRREGULAR_COLLECTIVES.to_vec())
}

fn any_dist() -> impl Strategy<Value = SizeDist> {
    prop::sample::select(SizeDist::ALL.to_vec())
}

fn any_vector_bytes() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![32u64, 1000, 65536, 1 << 20, (8 << 20) + 17])
}

/// Irregular algorithms whose DES time coincides with the synchronous
/// barrier model at *uniform* counts in the congestion-free single-segment
/// limit. The exclusions mirror the regular catalog's: the `bine`
/// gather/scatter trees and the greedy Träff round scheduler leave ranks
/// idle for intermediate steps, so the per-step maximum the synchronous
/// model charges is not always on the dependency-driven critical path and
/// the DES runs ahead. (At skewed counts nothing coincides: heterogeneous
/// message sizes within a step let light ranks run ahead of the barrier.)
fn equals_sync_at_uniform_counts(collective: Collective, alg: IrregularAlg) -> bool {
    match alg {
        IrregularAlg::Traff => false,
        IrregularAlg::Bine => !matches!(collective, Collective::Gather | Collective::Scatter),
        IrregularAlg::BinomialDd | IrregularAlg::Ring => true,
    }
}

#[test]
fn equal_counts_reproduce_the_regular_traffic_report_exactly() {
    // The equal-counts case is the regular collective: every field of the
    // traffic report — bytes, messages, per-link maxima — must be
    // *identical* to the count-free schedule, for every shared routing, on
    // a flat and a hierarchical topology. Any constant count must do; 7
    // stresses the proportional sizing more than 1 would.
    let p = 16;
    let root = 3;
    let n = (1u64 << 20) + 13; // a non-divisible size exercises the ceil
    let topos: Vec<Box<dyn Topology>> =
        vec![Box::new(FatTree::new(p, 4, 1)), Box::new(Dragonfly::lumi())];
    let alloc = Allocation::block(p);
    for collective in IRREGULAR_COLLECTIVES {
        for alg in irregular_algorithms(collective) {
            let Some(regular_name) = regular_counterpart(collective, alg) else {
                continue;
            };
            let regular = build(collective, regular_name, p, root).expect(regular_name);
            let counts = Counts::new(vec![7; p]);
            let v = build_irregular(collective, alg.name(), p, root, &counts)
                .unwrap_or_else(|| panic!("{} did not build", alg.name()));
            for topo in &topos {
                let a = traffic::measure(&regular, n, topo.as_ref(), &alloc);
                let b = traffic::measure(&v, n, topo.as_ref(), &alloc);
                assert_eq!(
                    a,
                    b,
                    "{collective:?}: {} vs regular {regular_name} on {}",
                    alg.name(),
                    topo.name()
                );
            }
        }
    }
}

#[test]
fn one_heavy_traff_tree_collapses_traffic_onto_one_edge() {
    let p = 16;
    let n = 1u64 << 20;
    let topo = IdealFullMesh::new(p);
    let alloc = Allocation::block(p);
    // Heavy rank at the root: the root already holds everything, so every
    // transfer carries a zero-count segment and no bytes move at all.
    let root = 4;
    let sched = build_irregular(
        Collective::Gather,
        "traff",
        p,
        root,
        &SizeDist::OneHeavy.counts(p, root),
    )
    .unwrap();
    let report = traffic::measure(&sched, n, &topo, &alloc);
    assert_eq!(report.total_bytes, 0, "root-heavy gatherv moved bytes");
    // Heavy rank elsewhere: the Träff tree places the heaviest rank
    // adjacent to the root, so the whole vector crosses exactly one edge —
    // total traffic is n, and no single link carries more than n.
    let heavy = 11;
    let sched = build_irregular(
        Collective::Gather,
        "traff",
        p,
        root,
        &SizeDist::OneHeavy.counts(p, heavy),
    )
    .unwrap();
    let report = traffic::measure(&sched, n, &topo, &alloc);
    assert_eq!(report.total_bytes, n, "off-root heavy rank should hop once");
    assert_eq!(report.max_link_bytes, n);
    // The mirror scatterv collapses identically.
    let sched = build_irregular(
        Collective::Scatter,
        "traff",
        p,
        root,
        &SizeDist::OneHeavy.counts(p, heavy),
    )
    .unwrap();
    let report = traffic::measure(&sched, n, &topo, &alloc);
    assert_eq!(report.total_bytes, n, "scatterv is gatherv reversed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The optimized simulator stays bit-identical to the from-scratch
    // reference on irregular schedules too: counts-weighted per-send bytes,
    // zero-byte sends from zero-count segments and all. Same makespan bits,
    // same per-rank finish bits, same message and peak-flow counts, on a
    // flat and a congested topology.
    #[test]
    fn irregular_optimized_des_is_bit_identical_to_the_reference(
        collective in any_irregular_collective(),
        dist in any_dist(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        root_seed in 0usize..1000,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let algs = irregular_algorithms(collective);
        let alg = algs[alg_seed % algs.len()];
        let root = root_seed % p;
        let counts = dist.counts(p, root);
        let compiled = build_irregular(collective, alg.name(), p, root, &counts)
            .unwrap_or_else(|| panic!("{} did not build", alg.name()))
            .segmented(chunks)
            .compile();
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let mut arena = SimArena::new();
        for topo in [
            Box::new(IdealFullMesh::new(p)) as Box<dyn Topology>,
            Box::new(FatTree::new(p, 4, 1)),
        ] {
            let reference = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .reference()
                .run()
                .into_report();
            let fast = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                .arena(&mut arena)
                .run()
                .into_report();
            prop_assert_eq!(
                reference.makespan_us.to_bits(), fast.makespan_us.to_bits(),
                "{:?}/{} dist={} p={p} n={n} chunks={chunks} on {}: reference {} vs fast {}",
                collective, alg.name(), dist.name(), topo.name(),
                reference.makespan_us, fast.makespan_us
            );
            prop_assert_eq!(reference.network_messages, fast.network_messages);
            prop_assert_eq!(reference.peak_active_flows, fast.peak_active_flows);
            for (r, (a, b)) in reference.rank_finish_us.iter().zip(&fast.rank_finish_us).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?}/{} dist={} rank {r} finish: reference {} vs fast {}",
                    collective, alg.name(), dist.name(), a, b
                );
            }
        }
    }

    // On an ideal network the DES only removes barrier waiting — for any
    // irregular algorithm, any size distribution, any segmentation.
    #[test]
    fn irregular_des_never_exceeds_sync_on_an_ideal_network(
        collective in any_irregular_collective(),
        dist in any_dist(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        chunks in 1usize..=4,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let algs = irregular_algorithms(collective);
        let alg = algs[alg_seed % algs.len()];
        let counts = dist.counts(p, 0);
        let sched = build_irregular(collective, alg.name(), p, 0, &counts)
            .unwrap_or_else(|| panic!("{} did not build", alg.name()))
            .segmented(chunks);
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sync = model.time_us(&sched, n, &topo, &alloc);
        let des = SimRequest::new(&model, &sched.compile(), n, &topo, &alloc)
            .time_only()
            .run()
            .makespan_us();
        prop_assert!(
            des <= sync * (1.0 + 1e-9),
            "{:?}/{} dist={} p={p} n={n} chunks={chunks}: DES {des} > sync {sync}",
            collective, alg.name(), dist.name()
        );
    }

    // At uniform counts the barrier-synchronous algorithms coincide with
    // the DES to 1e-9 relative error in the congestion-free single-segment
    // limit — the irregular twin of the regular acceptance property.
    #[test]
    fn uniform_counts_des_equals_sync_in_the_congestion_free_limit(
        collective in any_irregular_collective(),
        s in 2u32..=5,
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        n in any_vector_bytes(),
    ) {
        let p = 1usize << s;
        let algs = irregular_algorithms(collective);
        let alg = algs[alg_seed % algs.len()];
        if !equals_sync_at_uniform_counts(collective, alg) {
            return Ok(());
        }
        let root = root_seed % p;
        let counts = SizeDist::Uniform.counts(p, root);
        let sched = build_irregular(collective, alg.name(), p, root, &counts).unwrap_or_else(|| panic!("{} did not build", alg.name()));
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sync = model.time_us(&sched, n, &topo, &alloc);
        let des = SimRequest::new(&model, &sched.compile(), n, &topo, &alloc)
            .time_only()
            .run()
            .makespan_us();
        prop_assert!(
            (des - sync).abs() <= 1e-9 * sync.max(1e-12),
            "{:?}/{} p={p} n={n}: DES {des} vs sync {sync}",
            collective, alg.name()
        );
    }

    // Segmentation moves the same counts-weighted bytes over the same
    // links — including zero-count segments, whose chunks are all empty.
    #[test]
    fn irregular_traffic_is_invariant_under_segmentation(
        collective in any_irregular_collective(),
        dist in any_dist(),
        alg_seed in 0usize..100,
        chunks in 2usize..=8,
        n in any_vector_bytes(),
    ) {
        let p = 32;
        let algs = irregular_algorithms(collective);
        let alg = algs[alg_seed % algs.len()];
        let counts = dist.counts(p, 0);
        let sched = build_irregular(collective, alg.name(), p, 0, &counts).unwrap_or_else(|| panic!("{} did not build", alg.name()));
        let seg = sched.segmented(chunks);
        let topo = FatTree::new(p, 4, 1);
        let alloc = Allocation::block(p);
        let base = traffic::measure(&sched, n, &topo, &alloc);
        let piped = traffic::measure(&seg, n, &topo, &alloc);
        prop_assert_eq!(base.total_bytes, piped.total_bytes, "{}", alg.name());
        prop_assert_eq!(base.global_bytes, piped.global_bytes, "{}", alg.name());
        prop_assert_eq!(base.local_link_bytes, piped.local_link_bytes, "{}", alg.name());
        prop_assert_eq!(base.global_link_bytes, piped.global_link_bytes, "{}", alg.name());
        prop_assert_eq!(base.max_link_bytes, piped.max_link_bytes, "{}", alg.name());
        prop_assert!(piped.messages >= base.messages, "{}", alg.name());
    }
}
