//! Pins the [`bine_net::SimArena`] allocation-freedom guarantee: once a
//! (schedule, topology, allocation, vector size) context has been simulated
//! once, repeating the simulation through a time-only, arena-backed
//! [`bine_net::sim::SimRequest`] must touch the heap **zero** times — the
//! whole point of the arena is that tuning sweeps running thousands of
//! simulations stop being allocator-bound. Measured
//! with a counting wrapper around the system allocator, the same pattern as
//! `bine-tune/tests/alloc_free.rs` (tests are their own crates, so the
//! library's `#![forbid(unsafe_code)]` still holds for `bine-net` itself).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::sim::{SimArena, SimRequest};
use bine_net::topology::FatTree;
use bine_sched::collectives::{allreduce, AllreduceAlg};
use bine_sched::CompiledSchedule;

/// The warm-path spelling under test: a time-only, arena-backed request.
fn sim_time(
    arena: &mut SimArena,
    model: &CostModel,
    compiled: &CompiledSchedule,
    n: u64,
    topo: &FatTree,
    alloc: &Allocation,
) -> f64 {
    SimRequest::new(model, compiled, n, topo, alloc)
        .arena(arena)
        .time_only()
        .run()
        .makespan_us()
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn repeated_simulations_are_allocation_free_after_warmup() {
    let p = 32;
    let model = CostModel::default();
    let topo = FatTree::new(p, 4, 1);
    let alloc = Allocation::block(p);
    // A segmented schedule on a congested topology: flows share links, so
    // the incremental fair share exercises non-trivial components.
    let compiled = allreduce(p, AllreduceAlg::BineLarge).segmented(4).compile();

    let mut arena = SimArena::new();
    // Warmup: builds the cached static resolution and grows every scratch
    // buffer to its peak size for this context.
    let warm = sim_time(&mut arena, &model, &compiled, 1 << 20, &topo, &alloc);
    assert!(warm > 0.0);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut identical = 0usize;
    for _ in 0..10 {
        let t = sim_time(&mut arena, &model, &compiled, 1 << 20, &topo, &alloc);
        identical += usize::from(t.to_bits() == warm.to_bits());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "the warm time-only request allocated {} times over 10 simulations",
        after - before
    );
    assert_eq!(identical, 10, "results drifted after warmup");
}

#[test]
fn vector_size_changes_allocate_at_most_transiently() {
    // Sweeping the vector size re-resolves only the per-send byte column;
    // after one pass over the sizes, repeating the sweep in the same order
    // must be allocation-free too (the bytes buffer capacity is retained).
    let p = 16;
    let model = CostModel::default();
    let topo = FatTree::new(p, 4, 1);
    let alloc = Allocation::block(p);
    let compiled = allreduce(p, AllreduceAlg::BineLarge).compile();
    let sizes = [1u64 << 10, 1 << 16, 1 << 20, 8 << 20];

    let mut arena = SimArena::new();
    for &n in &sizes {
        sim_time(&mut arena, &model, &compiled, n, &topo, &alloc);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for &n in &sizes {
        sim_time(&mut arena, &model, &compiled, n, &topo, &alloc);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "size sweep allocated {} times after warmup",
        after - before
    );
}
