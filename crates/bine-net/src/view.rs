//! Deriving the synthesis-facing [`TopologyView`] from a physical
//! topology and a rank placement, plus the per-system factory that lets
//! the offline tuner and the serving layer derive *identical* views — a
//! tuned `synth:` pick must rebuild the same schedule at serve time.

use bine_sched::{TopoEdge, TopologyView};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::allocation::Allocation;
use crate::topology::{Dragonfly, FatTree, Topology, Torus};
use crate::trace::JobTraceGenerator;

/// The pinned placement seed shared by every committed decision table,
/// the benchmark figures and the serving layer's view derivation.
pub const TUNING_PLACEMENT_SEED: u64 = 42;

/// Derives the rank-level capacity/tier view of `(topo, alloc)`: one
/// undirected edge per rank pair carrying the bottleneck bandwidth and
/// total latency of the minimal route between their nodes, tier 1 when
/// the route crosses a group boundary; rank groups follow node groups.
///
/// Co-located ranks (same node) get a memory-speed edge: faster than any
/// network link, zero latency, tier 0.
pub fn synth_view(topo: &dyn Topology, alloc: &Allocation) -> Result<TopologyView, String> {
    let p = alloc.num_ranks();
    if p == 0 {
        return Err("empty allocation".into());
    }
    let group_of: Vec<usize> = (0..p).map(|r| topo.group_of(alloc.node_of(r))).collect();
    let memory_bw = topo.max_link_bandwidth_gib_s().max(1.0) * 8.0;
    let mut edges = Vec::with_capacity(p * (p - 1) / 2);
    for a in 0..p {
        for b in a + 1..p {
            let (na, nb) = (alloc.node_of(a), alloc.node_of(b));
            let (bandwidth_gib_s, latency_us, tier) = if na == nb {
                (memory_bw, 0.0, 0)
            } else {
                let route = topo.route(na, nb);
                let bw = route
                    .iter()
                    .map(|&l| topo.link(l).bandwidth_gib_s)
                    .fold(f64::INFINITY, f64::min);
                let lat: f64 = route.iter().map(|&l| topo.link(l).latency_us).sum();
                let tier = usize::from(topo.crosses_groups(na, nb));
                (bw, lat, tier)
            };
            edges.push(TopoEdge {
                a,
                b,
                bandwidth_gib_s,
                latency_us,
                tier,
            });
        }
    }
    TopologyView::new(group_of, edges)
}

/// The torus shape used for a Fugaku job of `nodes` nodes (the paper's
/// published shapes, with a balanced power-of-two factorisation fallback).
pub fn fugaku_dims(nodes: usize) -> Vec<usize> {
    match nodes {
        8 => vec![2, 2, 2],
        64 => vec![4, 4, 4],
        512 => vec![8, 8, 8],
        4096 => vec![64, 64],
        8192 => vec![32, 256],
        _ => {
            let mut dims = vec![1usize; 3];
            let mut rest = nodes;
            let mut d = 0;
            while rest > 1 {
                dims[d % 3] *= 2;
                rest /= 2;
                d += 1;
            }
            dims
        }
    }
}

/// Builds the topology model hosting a job of `nodes` nodes on the system
/// with the given slug (`lumi`, `leonardo`, `marenostrum5`, `fugaku`,
/// `heterofat`). `None` for unknown slugs.
///
/// For the group-based systems the topology is the full machine (the job
/// occupies a sampled subset of its nodes); for the torus the job gets its
/// own sub-torus, as on the real machine.
pub fn system_topology(slug: &str, nodes: usize) -> Option<Box<dyn Topology + Send + Sync>> {
    Some(match slug {
        "lumi" => Box::new(Dragonfly::lumi()),
        "leonardo" => Box::new(Dragonfly::leonardo()),
        "marenostrum5" => Box::new(FatTree::marenostrum5(1280.max(nodes.next_multiple_of(160)))),
        "fugaku" => Box::new(Torus::new(fugaku_dims(nodes))),
        "heterofat" => Box::new(FatTree::hetero_island(64.max(nodes.next_multiple_of(16)))),
        _ => return None,
    })
}

/// The pinned rank→node placement for a job of `nodes` nodes: Fugaku jobs
/// get the whole sub-torus (block allocation); every other system samples
/// a fragmented placement from the job-trace generator at 90% machine
/// occupancy, seeded so the same `(slug, nodes, seed)` always places
/// identically.
pub fn system_allocation(slug: &str, topo: &dyn Topology, nodes: usize, seed: u64) -> Allocation {
    if slug == "fugaku" {
        return Allocation::block(nodes);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ nodes as u64);
    let generator = JobTraceGenerator::with_occupancy(0.9);
    let sample = &generator.sample(topo, nodes, 1, &mut rng)[0];
    sample.allocation()
}

/// The topology view the synthesizers consume for a `nodes`-rank job on a
/// system, under the pinned tuning placement. This is the serving-side
/// twin of the tuner's per-grid-column view: both sides derive from
/// [`system_topology`] + [`system_allocation`] with
/// [`TUNING_PLACEMENT_SEED`], so a `synth:` pick recorded in a committed
/// table resolves to the identical schedule wherever it is rebuilt.
pub fn system_view(slug: &str, nodes: usize) -> Option<TopologyView> {
    if nodes < 2 {
        return None;
    }
    let topo = system_topology(slug, nodes)?;
    if topo.num_nodes() < nodes {
        return None;
    }
    let alloc = system_allocation(slug, topo.as_ref(), nodes, TUNING_PLACEMENT_SEED);
    synth_view(topo.as_ref(), &alloc).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_view_matches_the_fabric() {
        let topo = FatTree::figure1();
        let alloc = Allocation::block(8);
        let view = synth_view(&topo, &alloc).unwrap();
        assert_eq!(view.num_ranks(), 8);
        assert_eq!(view.num_groups(), 4);
        // Intra-switch pairs: 2 injection links; inter-switch: + 2 uplinks.
        let e01 = view
            .edges()
            .iter()
            .find(|e| (e.a, e.b) == (0, 1))
            .unwrap()
            .clone();
        assert_eq!(e01.tier, 0);
        let e02 = view
            .edges()
            .iter()
            .find(|e| (e.a, e.b) == (0, 2))
            .unwrap()
            .clone();
        assert_eq!(e02.tier, 1);
        assert!(e02.latency_us > e01.latency_us);
    }

    #[test]
    fn colocated_ranks_get_memory_edges() {
        let topo = FatTree::figure1();
        let alloc = Allocation::new(vec![0, 0, 1]);
        let view = synth_view(&topo, &alloc).unwrap();
        let e01 = view.edges().iter().find(|e| (e.a, e.b) == (0, 1)).unwrap();
        let e02 = view.edges().iter().find(|e| (e.a, e.b) == (0, 2)).unwrap();
        assert!(e01.bandwidth_gib_s > e02.bandwidth_gib_s);
        assert_eq!(e01.latency_us, 0.0);
    }

    #[test]
    fn system_views_are_deterministic_and_sized() {
        for slug in ["lumi", "leonardo", "marenostrum5", "fugaku", "heterofat"] {
            let a = system_view(slug, 16).unwrap_or_else(|| panic!("{slug}"));
            let b = system_view(slug, 16).unwrap_or_else(|| panic!("{slug}"));
            assert_eq!(a, b, "{slug}");
            assert_eq!(a.num_ranks(), 16, "{slug}");
        }
        assert!(system_view("nonsense", 16).is_none());
        assert!(system_view("lumi", 0).is_none());
    }

    #[test]
    fn heterofat_views_span_islands() {
        let view = system_view("heterofat", 32).unwrap();
        let groups = view.num_groups();
        assert!(groups > 1, "placement should fragment across islands");
        assert!(groups < view.num_ranks());
        // The bandwidth gap between tiers is what synthesis keys on.
        let local_bw = view
            .edges()
            .iter()
            .filter(|e| e.tier == 0)
            .map(|e| e.bandwidth_gib_s)
            .fold(f64::INFINITY, f64::min);
        let global_bw = view
            .edges()
            .iter()
            .filter(|e| e.tier == 1)
            .map(|e| e.bandwidth_gib_s)
            .fold(f64::INFINITY, f64::min);
        assert!(local_bw > 10.0 * global_bw);
    }
}
