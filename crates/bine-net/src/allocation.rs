//! Rank-to-node allocations.
//!
//! The paper stresses that the scheduler's process-to-node allocation is not
//! known in advance and is rarely an even split across groups (Sec. 1). This
//! module provides the allocation models used by the experiments: contiguous
//! block allocations (Slurm's default), allocations with several processes
//! per node, and fragmented allocations sampled from a partially occupied
//! machine (see [`crate::trace`]).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::topology::{NodeId, Topology};

/// A mapping from rank identifiers to compute nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    rank_to_node: Vec<NodeId>,
}

impl Allocation {
    /// Creates an allocation from an explicit rank→node table.
    pub fn new(rank_to_node: Vec<NodeId>) -> Self {
        assert!(
            !rank_to_node.is_empty(),
            "an allocation needs at least one rank"
        );
        Self { rank_to_node }
    }

    /// Contiguous block allocation with one process per node: rank `r` runs
    /// on node `r`. This models Slurm's default `block` distribution on an
    /// empty machine and is the placement assumed by Fig. 1.
    pub fn block(num_ranks: usize) -> Self {
        Self::new((0..num_ranks).collect())
    }

    /// Contiguous block allocation with `ppn` processes per node: ranks
    /// `[r·ppn, (r+1)·ppn)` run on node `r` (Sec. 6.1).
    pub fn block_with_ppn(num_ranks: usize, ppn: usize) -> Self {
        assert!(ppn >= 1);
        Self::new((0..num_ranks).map(|r| r / ppn).collect())
    }

    /// Allocation over an explicit, already-chosen node list (one rank per
    /// listed node, in order). This is how trace-sampled allocations are fed
    /// in: the node list is sorted by hostname, as recommended in Sec. 2.2.
    pub fn from_nodes(nodes: Vec<NodeId>) -> Self {
        Self::new(nodes)
    }

    /// Random allocation of `num_ranks` distinct nodes of `topo`.
    pub fn random<R: Rng>(num_ranks: usize, topo: &dyn Topology, rng: &mut R) -> Self {
        assert!(num_ranks <= topo.num_nodes());
        let mut nodes: Vec<NodeId> = (0..topo.num_nodes()).collect();
        nodes.shuffle(rng);
        nodes.truncate(num_ranks);
        // Sort by hostname (node id), matching the rank reordering the paper
        // applies when the allocation is not already linear.
        nodes.sort_unstable();
        Self::new(nodes)
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.rank_to_node.len()
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.rank_to_node[rank]
    }

    /// The underlying rank→node table.
    pub fn nodes(&self) -> &[NodeId] {
        &self.rank_to_node
    }

    /// Number of distinct groups of `topo` spanned by this allocation.
    pub fn groups_spanned(&self, topo: &dyn Topology) -> usize {
        let mut groups: Vec<usize> = self
            .rank_to_node
            .iter()
            .map(|&n| topo.group_of(n))
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// Number of ranks placed in each group of `topo`.
    pub fn ranks_per_group(&self, topo: &dyn Topology) -> Vec<usize> {
        let mut counts = vec![0usize; topo.num_groups()];
        for &n in &self.rank_to_node {
            counts[topo.group_of(n)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Dragonfly;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_allocation_is_identity() {
        let a = Allocation::block(16);
        for r in 0..16 {
            assert_eq!(a.node_of(r), r);
        }
    }

    #[test]
    fn ppn_allocation_packs_ranks() {
        let a = Allocation::block_with_ppn(16, 4);
        assert_eq!(a.node_of(0), 0);
        assert_eq!(a.node_of(3), 0);
        assert_eq!(a.node_of(4), 1);
        assert_eq!(a.node_of(15), 3);
    }

    #[test]
    fn groups_spanned_counts_distinct_groups() {
        let topo = Dragonfly::lumi();
        let a = Allocation::block(300); // 124 nodes per group -> 3 groups
        assert_eq!(a.groups_spanned(&topo), 3);
        let per_group = a.ranks_per_group(&topo);
        assert_eq!(per_group[0], 124);
        assert_eq!(per_group[1], 124);
        assert_eq!(per_group[2], 52);
    }

    #[test]
    fn random_allocation_has_distinct_sorted_nodes() {
        let topo = Dragonfly::lumi();
        let mut rng = StdRng::seed_from_u64(7);
        let a = Allocation::random(256, &topo, &mut rng);
        assert_eq!(a.num_ranks(), 256);
        let mut nodes = a.nodes().to_vec();
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        nodes.dedup();
        assert_eq!(nodes.len(), 256);
    }
}
