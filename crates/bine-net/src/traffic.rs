//! Traffic accounting: how many bytes a schedule pushes over global links
//! when executed on a given topology under a given allocation.
//!
//! This is the paper's headline metric (Tables 3–5 "Traffic Red.", Fig. 1,
//! Fig. 5). Following Fig. 1, *global bytes* count each message once when its
//! endpoints are in different groups; per-link byte counters are additionally
//! kept for the congestion term of the cost model.

use bine_sched::Schedule;

use crate::allocation::Allocation;
use crate::topology::{LinkClass, Topology};

/// Byte-level traffic summary of one schedule on one topology/allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Total bytes moved over the network (local buffer moves excluded).
    pub total_bytes: u64,
    /// Bytes of messages whose endpoints are in different groups
    /// (counted once per message, as in Fig. 1).
    pub global_bytes: u64,
    /// Number of network messages.
    pub messages: u64,
    /// Number of inter-group messages.
    pub global_messages: u64,
    /// Bytes · links products accumulated per link class (local / global),
    /// i.e. the load actually offered to each class of link.
    pub local_link_bytes: u64,
    /// See [`TrafficReport::local_link_bytes`], for global links.
    pub global_link_bytes: u64,
    /// The largest number of bytes offered to any single link.
    pub max_link_bytes: u64,
}

impl TrafficReport {
    /// Fraction of the total bytes that crossed group boundaries.
    pub fn global_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.global_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Measures the traffic of `schedule` with vectors of `n` bytes on `topo`
/// under `alloc`.
///
/// # Panics
/// Panics if the allocation has fewer ranks than the schedule.
pub fn measure(
    schedule: &Schedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> TrafficReport {
    assert!(
        alloc.num_ranks() >= schedule.num_ranks,
        "allocation has {} ranks, schedule needs {}",
        alloc.num_ranks(),
        schedule.num_ranks
    );
    let mut report = TrafficReport {
        total_bytes: 0,
        global_bytes: 0,
        messages: 0,
        global_messages: 0,
        local_link_bytes: 0,
        global_link_bytes: 0,
        max_link_bytes: 0,
    };
    let mut per_link = vec![0u64; topo.num_links()];
    for (_, m) in schedule.messages() {
        if m.is_local() {
            continue;
        }
        let bytes = schedule.message_bytes(m, n);
        let (src, dst) = (alloc.node_of(m.src), alloc.node_of(m.dst));
        report.total_bytes += bytes;
        report.messages += 1;
        if src != dst && topo.crosses_groups(src, dst) {
            report.global_bytes += bytes;
            report.global_messages += 1;
        }
        for link in topo.route(src, dst) {
            per_link[link] += bytes;
            match topo.link(link).class {
                LinkClass::Local => report.local_link_bytes += bytes,
                LinkClass::Global => report.global_link_bytes += bytes,
            }
        }
    }
    report.max_link_bytes = per_link.into_iter().max().unwrap_or(0);
    report
}

/// Convenience wrapper returning only the global bytes of a schedule.
pub fn global_bytes(schedule: &Schedule, n: u64, topo: &dyn Topology, alloc: &Allocation) -> u64 {
    measure(schedule, n, topo, alloc).global_bytes
}

/// Relative reduction in global traffic of `candidate` with respect to
/// `baseline` (positive = candidate sends fewer bytes over global links).
pub fn global_traffic_reduction(
    candidate: &Schedule,
    baseline: &Schedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> f64 {
    let c = global_bytes(candidate, n, topo, alloc) as f64;
    let b = global_bytes(baseline, n, topo, alloc) as f64;
    if b == 0.0 {
        0.0
    } else {
        1.0 - c / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTree;
    use bine_sched::collectives::{broadcast, BroadcastAlg};

    /// The worked example of Fig. 1: on an 8-node, 2:1 oversubscribed fat
    /// tree with two nodes per switch, a distance-doubling binomial broadcast
    /// sends 6n bytes over global links while the distance-halving variant
    /// sends 3n.
    #[test]
    fn figure1_global_traffic() {
        let topo = FatTree::figure1();
        let alloc = Allocation::block(8);
        let n = 1_000u64;

        let dd = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
        let dh = broadcast(8, 0, BroadcastAlg::BinomialDistanceHalving);
        assert_eq!(global_bytes(&dd, n, &topo, &alloc), 6 * n);
        assert_eq!(global_bytes(&dh, n, &topo, &alloc), 3 * n);

        // Both move the same total volume.
        assert_eq!(measure(&dd, n, &topo, &alloc).total_bytes, 7 * n);
        assert_eq!(measure(&dh, n, &topo, &alloc).total_bytes, 7 * n);
    }

    #[test]
    fn bine_tree_is_no_worse_than_distance_halving_on_figure1() {
        let topo = FatTree::figure1();
        let alloc = Allocation::block(8);
        let n = 1_000u64;
        let bine = broadcast(8, 0, BroadcastAlg::BineTree);
        assert!(global_bytes(&bine, n, &topo, &alloc) <= 3 * n);
    }

    #[test]
    fn reduction_metric_is_relative() {
        let topo = FatTree::figure1();
        let alloc = Allocation::block(8);
        let n = 1_000u64;
        let dd = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
        let dh = broadcast(8, 0, BroadcastAlg::BinomialDistanceHalving);
        let red = global_traffic_reduction(&dh, &dd, n, &topo, &alloc);
        assert!((red - 0.5).abs() < 1e-9);
    }

    #[test]
    fn intra_group_traffic_is_never_global() {
        let topo = FatTree::new(8, 8, 4);
        let alloc = Allocation::block(8);
        let sched = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
        let report = measure(&sched, 100, &topo, &alloc);
        assert_eq!(report.global_bytes, 0);
        assert_eq!(report.global_messages, 0);
        assert!(report.total_bytes > 0);
    }
}
