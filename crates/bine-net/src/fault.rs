//! Deterministic fault injection for the discrete-event simulator.
//!
//! Production fabrics are not the healthy networks the paper evaluates on:
//! links run degraded after lane failures, latencies spike under adaptive
//! rerouting, and individual nodes straggle (thermal throttling, background
//! daemons, failing DIMMs). A [`FaultPlan`] describes such a scenario as
//! explicit, deterministic data — no randomness at simulation time — so a
//! faulted run is exactly reproducible and the optimized simulator stays
//! pinned bit-identical to [`crate::sim::simulate_reference`] under faults.
//!
//! Three fault families are modelled, mirroring how the cost parameters
//! enter the DES:
//!
//! * **link bandwidth degradation** — a per-link factor in `(0, 1]`
//!   multiplying the link's capacity before max–min fair sharing. Asymmetric
//!   factors turn a symmetric topology into a heterogeneous one, which is
//!   precisely what exercises the incremental fair-share rebuild.
//! * **link latency spikes** — extra microseconds added to every message
//!   routed over the link.
//! * **straggler ranks** — a per-rank compute slowdown `>= 1` dividing the
//!   rank's local copy and reduction bandwidth.
//!
//! A [`FaultPlan`] with no entries behaves as identity values (factor `1.0`,
//! spike `0.0`, slowdown `1.0`); the simulator applies those values through
//! bit-exact IEEE 754 identities (`x * 1.0`, `x / 1.0`, `x + 0.0` for
//! non-negative latencies), so a zero-fault plan is **bit-identical** to the
//! plan-free path — property-tested in `tests/proptests.rs`.
//!
//! [`FaultSpec`] draws a plan from a seed with a tiny splitmix64-based
//! hash (no RNG dependency): the same `(seed, topology size, rank count)`
//! always yields the same plan, on every platform.

/// Degradation of one link: a capacity factor and/or a latency spike.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Link id in the topology's `0..num_links()` space.
    pub link: usize,
    /// Multiplier on the link's bandwidth, in `(0, 1]`. `1.0` = healthy.
    pub bandwidth_factor: f64,
    /// Extra latency charged per message routed over the link, in µs.
    pub extra_latency_us: f64,
}

/// A straggling rank: its local copy and reduce bandwidths are divided by
/// `compute_slowdown`.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Rank id in the schedule's `0..num_ranks` space.
    pub rank: usize,
    /// Divisor on the rank's compute bandwidth, `>= 1.0`. `1.0` = healthy.
    pub compute_slowdown: f64,
}

/// A deterministic fault scenario for one simulation: which links are
/// degraded or spiked and which ranks straggle. See the module docs for the
/// semantics of each fault family.
///
/// Entries are kept sorted by id and deduplicated (last write wins), so two
/// plans describing the same scenario compare equal — the simulator's static
/// cache uses that equality to decide whether cached link capacities are
/// still valid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// The empty (zero-fault) plan: every accessor returns its identity
    /// value and simulation results are bit-identical to the plan-free path.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds (or overwrites) a bandwidth degradation for `link`.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn degrade_link(mut self, link: usize, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "bandwidth factor must be in (0, 1], got {factor}"
        );
        self.link_entry(link).bandwidth_factor = factor;
        self
    }

    /// Adds (or overwrites) a latency spike for `link`.
    ///
    /// # Panics
    /// Panics unless `extra_us` is finite and non-negative.
    pub fn spike_link(mut self, link: usize, extra_us: f64) -> Self {
        assert!(
            extra_us.is_finite() && extra_us >= 0.0,
            "latency spike must be finite and >= 0, got {extra_us}"
        );
        self.link_entry(link).extra_latency_us = extra_us;
        self
    }

    /// Adds (or overwrites) a compute slowdown for `rank`.
    ///
    /// # Panics
    /// Panics unless `slowdown` is finite and `>= 1`.
    pub fn straggler(mut self, rank: usize, slowdown: f64) -> Self {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "compute slowdown must be finite and >= 1, got {slowdown}"
        );
        match self.stragglers.binary_search_by_key(&rank, |s| s.rank) {
            Ok(i) => self.stragglers[i].compute_slowdown = slowdown,
            Err(i) => self.stragglers.insert(
                i,
                Straggler {
                    rank,
                    compute_slowdown: slowdown,
                },
            ),
        }
        self
    }

    fn link_entry(&mut self, link: usize) -> &mut LinkFault {
        let i = match self.link_faults.binary_search_by_key(&link, |f| f.link) {
            Ok(i) => i,
            Err(i) => {
                self.link_faults.insert(
                    i,
                    LinkFault {
                        link,
                        bandwidth_factor: 1.0,
                        extra_latency_us: 0.0,
                    },
                );
                i
            }
        };
        &mut self.link_faults[i]
    }

    /// Bandwidth multiplier for `link` (`1.0` when healthy).
    pub fn bandwidth_factor(&self, link: usize) -> f64 {
        match self.link_faults.binary_search_by_key(&link, |f| f.link) {
            Ok(i) => self.link_faults[i].bandwidth_factor,
            Err(_) => 1.0,
        }
    }

    /// Extra per-message latency for `link` in µs (`0.0` when healthy).
    pub fn extra_latency_us(&self, link: usize) -> f64 {
        match self.link_faults.binary_search_by_key(&link, |f| f.link) {
            Ok(i) => self.link_faults[i].extra_latency_us,
            Err(_) => 0.0,
        }
    }

    /// Compute-bandwidth divisor for `rank` (`1.0` when healthy).
    pub fn compute_slowdown(&self, rank: usize) -> f64 {
        match self.stragglers.binary_search_by_key(&rank, |s| s.rank) {
            Ok(i) => self.stragglers[i].compute_slowdown,
            Err(_) => 1.0,
        }
    }

    /// Whether every entry is an identity (or there are no entries at all) —
    /// a zero plan simulates bit-identically to no plan.
    pub fn is_zero(&self) -> bool {
        self.link_faults
            .iter()
            .all(|f| f.bandwidth_factor == 1.0 && f.extra_latency_us == 0.0)
            && self.stragglers.iter().all(|s| s.compute_slowdown == 1.0)
    }

    /// The link fault entries, sorted by link id.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.link_faults
    }

    /// The straggler entries, sorted by rank id.
    pub fn stragglers(&self) -> &[Straggler] {
        &self.stragglers
    }
}

/// Seeded recipe for drawing a [`FaultPlan`]: per-family incidence
/// fractions and severity bounds. [`FaultSpec::plan`] hashes
/// `(seed, family, id)` with splitmix64 — fully deterministic and
/// platform-independent, with no RNG dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the per-entry hash; same seed, same plan.
    pub seed: u64,
    /// Fraction of links drawn as bandwidth-degraded, in `[0, 1]`.
    pub degraded_link_fraction: f64,
    /// Lower bound of the degraded bandwidth factor, in `(0, 1]`; a degraded
    /// link's factor is drawn uniformly from `[min_bandwidth_factor, 1)`.
    pub min_bandwidth_factor: f64,
    /// Fraction of links drawn as latency-spiked, in `[0, 1]`.
    pub spiked_link_fraction: f64,
    /// Upper bound of the latency spike in µs; drawn uniformly from
    /// `[0, max_latency_spike_us)`.
    pub max_latency_spike_us: f64,
    /// Fraction of ranks drawn as stragglers, in `[0, 1]`.
    pub straggler_fraction: f64,
    /// Upper bound of the straggler slowdown; drawn uniformly from
    /// `[1, max_compute_slowdown)`.
    pub max_compute_slowdown: f64,
}

impl FaultSpec {
    /// A moderately hostile default scenario: a tenth of the links at
    /// degraded bandwidth, a twentieth spiked, a sixteenth of ranks
    /// straggling up to 4x.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            degraded_link_fraction: 0.10,
            min_bandwidth_factor: 0.25,
            spiked_link_fraction: 0.05,
            max_latency_spike_us: 20.0,
            straggler_fraction: 0.0625,
            max_compute_slowdown: 4.0,
        }
    }

    /// Draws the plan for a system with `num_links` links and `num_ranks`
    /// ranks. Deterministic in `(self, num_links, num_ranks)`.
    pub fn plan(&self, num_links: usize, num_ranks: usize) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for link in 0..num_links {
            if unit(self.seed, 0, link) < self.degraded_link_fraction {
                let f = self.min_bandwidth_factor
                    + (1.0 - self.min_bandwidth_factor) * unit(self.seed, 1, link);
                plan = plan.degrade_link(link, f.min(1.0));
            }
            if unit(self.seed, 2, link) < self.spiked_link_fraction {
                plan = plan.spike_link(link, self.max_latency_spike_us * unit(self.seed, 3, link));
            }
        }
        for rank in 0..num_ranks {
            if unit(self.seed, 4, rank) < self.straggler_fraction {
                let s = 1.0 + (self.max_compute_slowdown - 1.0) * unit(self.seed, 5, rank);
                plan = plan.straggler(rank, s.max(1.0));
            }
        }
        plan
    }
}

/// splitmix64 of `x` — the standard finalizer, used as a stateless hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, family, id)`.
fn unit(seed: u64, family: u64, id: usize) -> f64 {
    let h = splitmix64(seed ^ splitmix64(family ^ splitmix64(id as u64)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_zero_and_returns_identities() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        assert_eq!(plan.bandwidth_factor(7), 1.0);
        assert_eq!(plan.extra_latency_us(7), 0.0);
        assert_eq!(plan.compute_slowdown(7), 1.0);
    }

    #[test]
    fn builders_sort_dedupe_and_overwrite() {
        let plan = FaultPlan::none()
            .degrade_link(5, 0.5)
            .degrade_link(2, 0.75)
            .spike_link(5, 10.0)
            .degrade_link(5, 0.25)
            .straggler(3, 2.0)
            .straggler(1, 3.0)
            .straggler(3, 4.0);
        assert_eq!(plan.bandwidth_factor(5), 0.25);
        assert_eq!(plan.extra_latency_us(5), 10.0);
        assert_eq!(plan.bandwidth_factor(2), 0.75);
        assert_eq!(plan.compute_slowdown(3), 4.0);
        assert_eq!(plan.compute_slowdown(1), 3.0);
        assert!(!plan.is_zero());
        let links: Vec<usize> = plan.link_faults().iter().map(|f| f.link).collect();
        assert_eq!(links, vec![2, 5]);
        let ranks: Vec<usize> = plan.stragglers().iter().map(|s| s.rank).collect();
        assert_eq!(ranks, vec![1, 3]);
    }

    #[test]
    fn equal_scenarios_compare_equal_regardless_of_insertion_order() {
        let a = FaultPlan::none().degrade_link(1, 0.5).degrade_link(9, 0.5);
        let b = FaultPlan::none().degrade_link(9, 0.5).degrade_link(1, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn spec_is_deterministic_and_respects_bounds() {
        let spec = FaultSpec::moderate(42);
        let a = spec.plan(256, 64);
        let b = spec.plan(256, 64);
        assert_eq!(a, b);
        assert_ne!(a, FaultSpec::moderate(43).plan(256, 64));
        for f in a.link_faults() {
            assert!(f.bandwidth_factor > 0.0 && f.bandwidth_factor <= 1.0);
            assert!(f.extra_latency_us >= 0.0 && f.extra_latency_us < 20.0);
        }
        for s in a.stragglers() {
            assert!(s.compute_slowdown >= 1.0 && s.compute_slowdown < 4.0);
        }
        // The moderate fractions must actually draw faults at this size.
        assert!(!a.link_faults().is_empty());
        assert!(!a.stragglers().is_empty());
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn zero_bandwidth_factor_is_rejected() {
        let _ = FaultPlan::none().degrade_link(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "compute slowdown")]
    fn sub_unit_slowdown_is_rejected() {
        let _ = FaultPlan::none().straggler(0, 0.5);
    }
}
