//! Deterministic fault injection for the discrete-event simulator.
//!
//! Production fabrics are not the healthy networks the paper evaluates on:
//! links run degraded after lane failures, latencies spike under adaptive
//! rerouting, and individual nodes straggle (thermal throttling, background
//! daemons, failing DIMMs). A [`FaultPlan`] describes such a scenario as
//! explicit, deterministic data — no randomness at simulation time — so a
//! faulted run is exactly reproducible and the optimized simulator stays
//! pinned bit-identical to [`crate::sim::simulate_reference`] under faults.
//!
//! Three fault families are modelled, mirroring how the cost parameters
//! enter the DES:
//!
//! * **link bandwidth degradation** — a per-link factor in `(0, 1]`
//!   multiplying the link's capacity before max–min fair sharing. Asymmetric
//!   factors turn a symmetric topology into a heterogeneous one, which is
//!   precisely what exercises the incremental fair-share rebuild.
//! * **link latency spikes** — extra microseconds added to every message
//!   routed over the link.
//! * **straggler ranks** — a per-rank compute slowdown `>= 1` dividing the
//!   rank's local copy and reduction bandwidth.
//!
//! A [`FaultPlan`] with no entries behaves as identity values (factor `1.0`,
//! spike `0.0`, slowdown `1.0`); the simulator applies those values through
//! bit-exact IEEE 754 identities (`x * 1.0`, `x / 1.0`, `x + 0.0` for
//! non-negative latencies), so a zero-fault plan is **bit-identical** to the
//! plan-free path — property-tested in `tests/proptests.rs`.
//!
//! [`FaultSpec`] draws a plan from a seed with a tiny splitmix64-based
//! hash (no RNG dependency): the same `(seed, topology size, rank count)`
//! always yields the same plan, on every platform.

/// An invalid fault parameter, reported by the `try_`-builders and by
/// [`FaultSpec::validate`] instead of panicking (or, worse, silently
/// producing NaN simulation times).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A bandwidth factor outside `(0, 1]`, or NaN.
    BadBandwidthFactor {
        /// The offending value.
        value: f64,
    },
    /// A latency spike that is negative, NaN or infinite.
    BadLatencySpike {
        /// The offending value.
        value: f64,
    },
    /// A compute slowdown below `1`, NaN or infinite.
    BadComputeSlowdown {
        /// The offending value.
        value: f64,
    },
    /// A crash or link-down time that is NaN or negative (use
    /// `f64::INFINITY`-free plans, i.e. simply no entry, for "never").
    BadFaultTime {
        /// The offending value.
        value: f64,
    },
    /// A [`FaultSpec`] incidence fraction outside `[0, 1]`, or NaN.
    BadFraction {
        /// Which fraction field is invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadBandwidthFactor { value } => {
                write!(f, "bandwidth factor must be in (0, 1], got {value}")
            }
            FaultError::BadLatencySpike { value } => {
                write!(f, "latency spike must be finite and >= 0, got {value}")
            }
            FaultError::BadComputeSlowdown { value } => {
                write!(f, "compute slowdown must be finite and >= 1, got {value}")
            }
            FaultError::BadFaultTime { value } => {
                write!(f, "fault time must be finite and >= 0, got {value}")
            }
            FaultError::BadFraction { field, value } => {
                write!(f, "{field} must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Degradation of one link: a capacity factor and/or a latency spike.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Link id in the topology's `0..num_links()` space.
    pub link: usize,
    /// Multiplier on the link's bandwidth, in `(0, 1]`. `1.0` = healthy.
    pub bandwidth_factor: f64,
    /// Extra latency charged per message routed over the link, in µs.
    pub extra_latency_us: f64,
}

/// A straggling rank: its local copy and reduce bandwidths are divided by
/// `compute_slowdown`.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Rank id in the schedule's `0..num_ranks` space.
    pub rank: usize,
    /// Divisor on the rank's compute bandwidth, `>= 1.0`. `1.0` = healthy.
    pub compute_slowdown: f64,
}

/// A crash fault: `rank` fail-stops at `at_time_us`. From that instant the
/// rank starts no further sends; messages already in flight are delivered
/// (fail-stop at send granularity, the standard crash model).
#[derive(Debug, Clone, PartialEq)]
pub struct RankCrash {
    /// Rank id in the schedule's `0..num_ranks` space.
    pub rank: usize,
    /// Crash instant in simulated µs (`0.0` = dead from the start).
    pub at_time_us: f64,
}

/// A severed link: no message may *start* crossing `link` at or after
/// `at_time_us`. Flows already on the link complete.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDown {
    /// Link id in the topology's `0..num_links()` space.
    pub link: usize,
    /// Cut instant in simulated µs (`0.0` = down from the start).
    pub at_time_us: f64,
}

/// A deterministic fault scenario for one simulation: which links are
/// degraded, spiked or severed, which ranks straggle, and which ranks crash.
/// See the module docs for the semantics of each fault family.
///
/// Entries are kept sorted by id and deduplicated (last write wins), so two
/// plans describing the same scenario compare equal — the simulator's static
/// cache uses that equality to decide whether cached link capacities are
/// still valid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    stragglers: Vec<Straggler>,
    crashes: Vec<RankCrash>,
    link_downs: Vec<LinkDown>,
}

impl FaultPlan {
    /// The empty (zero-fault) plan: every accessor returns its identity
    /// value and simulation results are bit-identical to the plan-free path.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds (or overwrites) a bandwidth degradation for `link`.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn degrade_link(self, link: usize, factor: f64) -> Self {
        self.try_degrade_link(link, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::degrade_link`]: rejects NaN and factors
    /// outside `(0, 1]` with a typed error.
    pub fn try_degrade_link(mut self, link: usize, factor: f64) -> Result<Self, FaultError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(FaultError::BadBandwidthFactor { value: factor });
        }
        self.link_entry(link).bandwidth_factor = factor;
        Ok(self)
    }

    /// Adds (or overwrites) a latency spike for `link`.
    ///
    /// # Panics
    /// Panics unless `extra_us` is finite and non-negative.
    pub fn spike_link(self, link: usize, extra_us: f64) -> Self {
        self.try_spike_link(link, extra_us)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::spike_link`]: rejects NaN, infinities
    /// and negative spikes with a typed error.
    pub fn try_spike_link(mut self, link: usize, extra_us: f64) -> Result<Self, FaultError> {
        if !(extra_us.is_finite() && extra_us >= 0.0) {
            return Err(FaultError::BadLatencySpike { value: extra_us });
        }
        self.link_entry(link).extra_latency_us = extra_us;
        Ok(self)
    }

    /// Adds (or overwrites) a compute slowdown for `rank`.
    ///
    /// # Panics
    /// Panics unless `slowdown` is finite and `>= 1`.
    pub fn straggler(self, rank: usize, slowdown: f64) -> Self {
        self.try_straggler(rank, slowdown)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::straggler`]: rejects NaN, infinities
    /// and slowdowns below `1` with a typed error.
    pub fn try_straggler(mut self, rank: usize, slowdown: f64) -> Result<Self, FaultError> {
        if !(slowdown.is_finite() && slowdown >= 1.0) {
            return Err(FaultError::BadComputeSlowdown { value: slowdown });
        }
        match self.stragglers.binary_search_by_key(&rank, |s| s.rank) {
            Ok(i) => self.stragglers[i].compute_slowdown = slowdown,
            Err(i) => self.stragglers.insert(
                i,
                Straggler {
                    rank,
                    compute_slowdown: slowdown,
                },
            ),
        }
        Ok(self)
    }

    /// Adds (or overwrites) a crash fault: `rank` fail-stops at `at_us`.
    ///
    /// # Panics
    /// Panics unless `at_us` is finite and non-negative.
    pub fn crash_rank(self, rank: usize, at_us: f64) -> Self {
        self.try_crash_rank(rank, at_us)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::crash_rank`]: rejects NaN, infinities
    /// and negative crash times with a typed error.
    pub fn try_crash_rank(mut self, rank: usize, at_us: f64) -> Result<Self, FaultError> {
        if !(at_us.is_finite() && at_us >= 0.0) {
            return Err(FaultError::BadFaultTime { value: at_us });
        }
        match self.crashes.binary_search_by_key(&rank, |c| c.rank) {
            Ok(i) => self.crashes[i].at_time_us = at_us,
            Err(i) => self.crashes.insert(
                i,
                RankCrash {
                    rank,
                    at_time_us: at_us,
                },
            ),
        }
        Ok(self)
    }

    /// Adds (or overwrites) a link cut: no message may start crossing
    /// `link` at or after `at_us`.
    ///
    /// # Panics
    /// Panics unless `at_us` is finite and non-negative.
    pub fn down_link(self, link: usize, at_us: f64) -> Self {
        self.try_down_link(link, at_us)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultPlan::down_link`]: rejects NaN, infinities
    /// and negative cut times with a typed error.
    pub fn try_down_link(mut self, link: usize, at_us: f64) -> Result<Self, FaultError> {
        if !(at_us.is_finite() && at_us >= 0.0) {
            return Err(FaultError::BadFaultTime { value: at_us });
        }
        match self.link_downs.binary_search_by_key(&link, |c| c.link) {
            Ok(i) => self.link_downs[i].at_time_us = at_us,
            Err(i) => self.link_downs.insert(
                i,
                LinkDown {
                    link,
                    at_time_us: at_us,
                },
            ),
        }
        Ok(self)
    }

    fn link_entry(&mut self, link: usize) -> &mut LinkFault {
        let i = match self.link_faults.binary_search_by_key(&link, |f| f.link) {
            Ok(i) => i,
            Err(i) => {
                self.link_faults.insert(
                    i,
                    LinkFault {
                        link,
                        bandwidth_factor: 1.0,
                        extra_latency_us: 0.0,
                    },
                );
                i
            }
        };
        &mut self.link_faults[i]
    }

    /// Bandwidth multiplier for `link` (`1.0` when healthy).
    pub fn bandwidth_factor(&self, link: usize) -> f64 {
        match self.link_faults.binary_search_by_key(&link, |f| f.link) {
            Ok(i) => self.link_faults[i].bandwidth_factor,
            Err(_) => 1.0,
        }
    }

    /// Extra per-message latency for `link` in µs (`0.0` when healthy).
    pub fn extra_latency_us(&self, link: usize) -> f64 {
        match self.link_faults.binary_search_by_key(&link, |f| f.link) {
            Ok(i) => self.link_faults[i].extra_latency_us,
            Err(_) => 0.0,
        }
    }

    /// Compute-bandwidth divisor for `rank` (`1.0` when healthy).
    pub fn compute_slowdown(&self, rank: usize) -> f64 {
        match self.stragglers.binary_search_by_key(&rank, |s| s.rank) {
            Ok(i) => self.stragglers[i].compute_slowdown,
            Err(_) => 1.0,
        }
    }

    /// Crash instant of `rank` in µs, `f64::INFINITY` when it never crashes.
    /// The simulator compares send start times against this value; the
    /// infinity identity keeps healthy ranks on the exact unfaulted path.
    pub fn crash_time_us(&self, rank: usize) -> f64 {
        match self.crashes.binary_search_by_key(&rank, |c| c.rank) {
            Ok(i) => self.crashes[i].at_time_us,
            Err(_) => f64::INFINITY,
        }
    }

    /// Cut instant of `link` in µs, `f64::INFINITY` when it stays up.
    pub fn link_down_time_us(&self, link: usize) -> f64 {
        match self.link_downs.binary_search_by_key(&link, |c| c.link) {
            Ok(i) => self.link_downs[i].at_time_us,
            Err(_) => f64::INFINITY,
        }
    }

    /// The ranks with a crash entry, ascending.
    pub fn crashed_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.crashes.iter().map(|c| c.rank)
    }

    /// Whether every entry is an identity (or there are no entries at all) —
    /// a zero plan simulates bit-identically to no plan. Crash and link-cut
    /// entries are never identities: any finite fault time kills at least
    /// the sends scheduled after it.
    pub fn is_zero(&self) -> bool {
        self.link_faults
            .iter()
            .all(|f| f.bandwidth_factor == 1.0 && f.extra_latency_us == 0.0)
            && self.stragglers.iter().all(|s| s.compute_slowdown == 1.0)
            && self.crashes.is_empty()
            && self.link_downs.is_empty()
    }

    /// The link fault entries, sorted by link id.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.link_faults
    }

    /// The straggler entries, sorted by rank id.
    pub fn stragglers(&self) -> &[Straggler] {
        &self.stragglers
    }

    /// The crash entries, sorted by rank id.
    pub fn crashes(&self) -> &[RankCrash] {
        &self.crashes
    }

    /// The link-cut entries, sorted by link id.
    pub fn link_downs(&self) -> &[LinkDown] {
        &self.link_downs
    }
}

/// Seeded recipe for drawing a [`FaultPlan`]: per-family incidence
/// fractions and severity bounds. [`FaultSpec::plan`] hashes
/// `(seed, family, id)` with splitmix64 — fully deterministic and
/// platform-independent, with no RNG dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the per-entry hash; same seed, same plan.
    pub seed: u64,
    /// Fraction of links drawn as bandwidth-degraded, in `[0, 1]`.
    pub degraded_link_fraction: f64,
    /// Lower bound of the degraded bandwidth factor, in `(0, 1]`; a degraded
    /// link's factor is drawn uniformly from `[min_bandwidth_factor, 1)`.
    pub min_bandwidth_factor: f64,
    /// Fraction of links drawn as latency-spiked, in `[0, 1]`.
    pub spiked_link_fraction: f64,
    /// Upper bound of the latency spike in µs; drawn uniformly from
    /// `[0, max_latency_spike_us)`.
    pub max_latency_spike_us: f64,
    /// Fraction of ranks drawn as stragglers, in `[0, 1]`.
    pub straggler_fraction: f64,
    /// Upper bound of the straggler slowdown; drawn uniformly from
    /// `[1, max_compute_slowdown)`.
    pub max_compute_slowdown: f64,
}

impl FaultSpec {
    /// A moderately hostile default scenario: a tenth of the links at
    /// degraded bandwidth, a twentieth spiked, a sixteenth of ranks
    /// straggling up to 4x.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            degraded_link_fraction: 0.10,
            min_bandwidth_factor: 0.25,
            spiked_link_fraction: 0.05,
            max_latency_spike_us: 20.0,
            straggler_fraction: 0.0625,
            max_compute_slowdown: 4.0,
        }
    }

    /// Checks every field for NaN and out-of-range values, reporting the
    /// first violation as a typed error. [`FaultSpec::plan`] calls this and
    /// panics on violation; callers taking untrusted input (CLI flags,
    /// config files) should call it directly.
    pub fn validate(&self) -> Result<(), FaultError> {
        let fraction = |field: &'static str, value: f64| {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(FaultError::BadFraction { field, value })
            }
        };
        fraction("degraded_link_fraction", self.degraded_link_fraction)?;
        fraction("spiked_link_fraction", self.spiked_link_fraction)?;
        fraction("straggler_fraction", self.straggler_fraction)?;
        if !(self.min_bandwidth_factor > 0.0 && self.min_bandwidth_factor <= 1.0) {
            return Err(FaultError::BadBandwidthFactor {
                value: self.min_bandwidth_factor,
            });
        }
        if !(self.max_latency_spike_us.is_finite() && self.max_latency_spike_us >= 0.0) {
            return Err(FaultError::BadLatencySpike {
                value: self.max_latency_spike_us,
            });
        }
        if !(self.max_compute_slowdown.is_finite() && self.max_compute_slowdown >= 1.0) {
            return Err(FaultError::BadComputeSlowdown {
                value: self.max_compute_slowdown,
            });
        }
        Ok(())
    }

    /// Draws the plan for a system with `num_links` links and `num_ranks`
    /// ranks. Deterministic in `(self, num_links, num_ranks)`.
    ///
    /// # Panics
    /// Panics when the spec fails [`FaultSpec::validate`].
    pub fn plan(&self, num_links: usize, num_ranks: usize) -> FaultPlan {
        self.try_plan(num_links, num_ranks)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`FaultSpec::plan`]: validates the spec first and
    /// reports the violation instead of panicking.
    pub fn try_plan(&self, num_links: usize, num_ranks: usize) -> Result<FaultPlan, FaultError> {
        self.validate()?;
        let mut plan = FaultPlan::none();
        for link in 0..num_links {
            if unit(self.seed, 0, link) < self.degraded_link_fraction {
                let f = self.min_bandwidth_factor
                    + (1.0 - self.min_bandwidth_factor) * unit(self.seed, 1, link);
                plan = plan.degrade_link(link, f.min(1.0));
            }
            if unit(self.seed, 2, link) < self.spiked_link_fraction {
                plan = plan.spike_link(link, self.max_latency_spike_us * unit(self.seed, 3, link));
            }
        }
        for rank in 0..num_ranks {
            if unit(self.seed, 4, rank) < self.straggler_fraction {
                let s = 1.0 + (self.max_compute_slowdown - 1.0) * unit(self.seed, 5, rank);
                plan = plan.straggler(rank, s.max(1.0));
            }
        }
        Ok(plan)
    }
}

/// splitmix64 of `x` — the standard finalizer, used as a stateless hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, family, id)`.
fn unit(seed: u64, family: u64, id: usize) -> f64 {
    let h = splitmix64(seed ^ splitmix64(family ^ splitmix64(id as u64)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_zero_and_returns_identities() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        assert_eq!(plan.bandwidth_factor(7), 1.0);
        assert_eq!(plan.extra_latency_us(7), 0.0);
        assert_eq!(plan.compute_slowdown(7), 1.0);
    }

    #[test]
    fn builders_sort_dedupe_and_overwrite() {
        let plan = FaultPlan::none()
            .degrade_link(5, 0.5)
            .degrade_link(2, 0.75)
            .spike_link(5, 10.0)
            .degrade_link(5, 0.25)
            .straggler(3, 2.0)
            .straggler(1, 3.0)
            .straggler(3, 4.0);
        assert_eq!(plan.bandwidth_factor(5), 0.25);
        assert_eq!(plan.extra_latency_us(5), 10.0);
        assert_eq!(plan.bandwidth_factor(2), 0.75);
        assert_eq!(plan.compute_slowdown(3), 4.0);
        assert_eq!(plan.compute_slowdown(1), 3.0);
        assert!(!plan.is_zero());
        let links: Vec<usize> = plan.link_faults().iter().map(|f| f.link).collect();
        assert_eq!(links, vec![2, 5]);
        let ranks: Vec<usize> = plan.stragglers().iter().map(|s| s.rank).collect();
        assert_eq!(ranks, vec![1, 3]);
    }

    #[test]
    fn equal_scenarios_compare_equal_regardless_of_insertion_order() {
        let a = FaultPlan::none().degrade_link(1, 0.5).degrade_link(9, 0.5);
        let b = FaultPlan::none().degrade_link(9, 0.5).degrade_link(1, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn spec_is_deterministic_and_respects_bounds() {
        let spec = FaultSpec::moderate(42);
        let a = spec.plan(256, 64);
        let b = spec.plan(256, 64);
        assert_eq!(a, b);
        assert_ne!(a, FaultSpec::moderate(43).plan(256, 64));
        for f in a.link_faults() {
            assert!(f.bandwidth_factor > 0.0 && f.bandwidth_factor <= 1.0);
            assert!(f.extra_latency_us >= 0.0 && f.extra_latency_us < 20.0);
        }
        for s in a.stragglers() {
            assert!(s.compute_slowdown >= 1.0 && s.compute_slowdown < 4.0);
        }
        // The moderate fractions must actually draw faults at this size.
        assert!(!a.link_faults().is_empty());
        assert!(!a.stragglers().is_empty());
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn zero_bandwidth_factor_is_rejected() {
        let _ = FaultPlan::none().degrade_link(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "compute slowdown")]
    fn sub_unit_slowdown_is_rejected() {
        let _ = FaultPlan::none().straggler(0, 0.5);
    }

    #[test]
    fn try_builders_reject_nan_and_out_of_range_with_typed_errors() {
        assert!(matches!(
            FaultPlan::none().try_degrade_link(0, f64::NAN),
            Err(FaultError::BadBandwidthFactor { value }) if value.is_nan()
        ));
        assert_eq!(
            FaultPlan::none().try_degrade_link(0, 1.5),
            Err(FaultError::BadBandwidthFactor { value: 1.5 })
        );
        assert_eq!(
            FaultPlan::none().try_spike_link(0, -1.0),
            Err(FaultError::BadLatencySpike { value: -1.0 })
        );
        assert!(matches!(
            FaultPlan::none().try_spike_link(0, f64::NAN),
            Err(FaultError::BadLatencySpike { value }) if value.is_nan()
        ));
        assert_eq!(
            FaultPlan::none().try_straggler(0, f64::INFINITY),
            Err(FaultError::BadComputeSlowdown {
                value: f64::INFINITY
            })
        );
        assert_eq!(
            FaultPlan::none().try_crash_rank(0, -0.5),
            Err(FaultError::BadFaultTime { value: -0.5 })
        );
        assert!(matches!(
            FaultPlan::none().try_down_link(0, f64::NAN),
            Err(FaultError::BadFaultTime { value }) if value.is_nan()
        ));
        assert!(FaultPlan::none().try_crash_rank(3, 12.5).is_ok());
    }

    #[test]
    fn nan_error_values_still_compare_equal() {
        // FaultError derives PartialEq over f64 payloads; NaN != NaN would
        // make the assertions above vacuous, so pin the representation.
        let a = FaultPlan::none().try_spike_link(0, f64::NAN).unwrap_err();
        match a {
            FaultError::BadLatencySpike { value } => assert!(value.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn crash_entries_sort_dedupe_and_default_to_never() {
        let plan = FaultPlan::none()
            .crash_rank(5, 10.0)
            .crash_rank(1, 0.0)
            .crash_rank(5, 7.5)
            .down_link(9, 3.0);
        assert_eq!(plan.crash_time_us(5), 7.5);
        assert_eq!(plan.crash_time_us(1), 0.0);
        assert_eq!(plan.crash_time_us(2), f64::INFINITY);
        assert_eq!(plan.link_down_time_us(9), 3.0);
        assert_eq!(plan.link_down_time_us(0), f64::INFINITY);
        assert_eq!(plan.crashed_ranks().collect::<Vec<_>>(), vec![1, 5]);
        assert!(!plan.is_zero());
        // A crash at any finite time is a real fault, never an identity.
        assert!(!FaultPlan::none().crash_rank(0, 1e12).is_zero());
    }

    #[test]
    fn spec_validation_rejects_nan_fields() {
        let mut spec = FaultSpec::moderate(1);
        assert_eq!(spec.validate(), Ok(()));
        spec.degraded_link_fraction = f64::NAN;
        assert!(matches!(
            spec.validate(),
            Err(FaultError::BadFraction {
                field: "degraded_link_fraction",
                ..
            })
        ));
        let mut spec = FaultSpec::moderate(1);
        spec.min_bandwidth_factor = 0.0;
        assert!(matches!(
            spec.try_plan(16, 8),
            Err(FaultError::BadBandwidthFactor { .. })
        ));
        let mut spec = FaultSpec::moderate(1);
        spec.max_compute_slowdown = 0.5;
        assert!(matches!(
            spec.validate(),
            Err(FaultError::BadComputeSlowdown { .. })
        ));
    }
}
