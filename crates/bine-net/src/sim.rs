//! Discrete-event, flow-level simulation of compiled schedules.
//!
//! The synchronous [`CostModel`] charges every step
//! as a global barrier: each step lasts as long as its slowest message, and
//! the schedule time is the sum of its steps. That cannot express *skew*
//! (one slow rank delaying only its dependents), *overlap* (a rank
//! forwarding data while later data is still arriving) or *pipelining*
//! (segmented schedules, see `bine_sched::segment`) — exactly the effects
//! that move algorithm crossover points at mid message sizes.
//!
//! This module simulates a [`CompiledSchedule`] event by event instead:
//!
//! * **per-rank dependency tracking** — every send is statically annotated
//!   with the set of earlier-step writes (receives, reductions, local moves)
//!   into the blocks it carries at its sender; it becomes eligible the
//!   moment those writes land, *not* at a global barrier. Writes to the same
//!   block are chained — a reduce target accumulates one contribution per
//!   step, and a later write only counts as landed once every earlier one
//!   has — so waiting for the latest write transitively waits for them all.
//!   Within one rank sends still issue in schedule order through a single
//!   send port (single-ported model, matching `Schedule::validate`).
//! * **per-link fair-share bandwidth** — concurrently active flows divide
//!   link capacity max–min fairly (progressive filling), recomputed at every
//!   flow arrival/completion, so congestion emerges from overlap instead of
//!   being charged per synchronous step.
//! * **the same cost parameters** as the synchronous model: `alpha_us` +
//!   per-extra-segment overhead + per-link latency per message, payload
//!   serialisation against link bandwidth, local copies against the copy
//!   bandwidth, and reductions against the reduce bandwidth (serialised per
//!   receiving rank).
//!
//! In the **one-segment, congestion-free limit** (every flow alone on its
//! links, e.g. on [`crate::topology::IdealFullMesh`]) the simulator
//! reproduces the synchronous model exactly — this is property-tested in
//! `tests/proptests.rs` — while segmented schedules on real topologies
//! overlap chunk *c + 1*'s transfer with chunk *c*'s forwarding and come out
//! faster than the barrier model predicts.

use std::collections::{BTreeMap, HashMap};

use bine_sched::{CompiledSchedule, Schedule, TransferKind};

use crate::allocation::Allocation;
use crate::cost::{CostModel, GIB_PER_US};
use crate::event::EventQueue;
use crate::topology::Topology;

/// Outcome of simulating one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated makespan in microseconds: the time the last write (receive,
    /// reduction or local move) completes.
    pub makespan_us: f64,
    /// Per-rank completion time of the rank's last simulated event.
    pub rank_finish_us: Vec<f64>,
    /// Number of network messages simulated (local moves excluded).
    pub network_messages: u64,
    /// Largest number of flows ever in flight at once — `> 1` per link is
    /// what the synchronous model's per-step congestion term approximates.
    pub peak_active_flows: usize,
}

/// Static per-send data resolved once before the event loop.
struct SendInfo {
    bytes: f64,
    /// alpha + segment overhead + summed link latencies.
    latency_us: f64,
    links: Vec<usize>,
    reduce: bool,
    src: usize,
    dst: usize,
    /// Intra-rank buffer move (charged to the copy bandwidth).
    local: bool,
}

/// A network transfer currently in flight.
struct Flow {
    send: u32,
    remaining_bytes: f64,
    /// Current max–min fair rate in bytes/us (0 until first assignment).
    rate: f64,
}

enum Ev {
    /// Payload fully arrived at the destination (latency included).
    Delivered(u32),
    /// The destination finished writing (and, for reduces, combining) the
    /// payload; dependent sends may now become eligible.
    WriteDone(u32),
}

/// Simulates `schedule` with `n`-byte vectors on `topo` under `alloc` with
/// the cost parameters of `model`. See the module docs for the semantics.
///
/// # Panics
/// Panics if the allocation has fewer ranks than the schedule, or if the
/// simulation deadlocks (which would indicate a schedule whose dependency
/// graph is cyclic — impossible for schedules built by `bine-sched`).
pub fn simulate(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> SimReport {
    let p = schedule.num_ranks;
    assert!(
        alloc.num_ranks() >= p,
        "allocation has {} ranks, schedule needs {p}",
        alloc.num_ranks()
    );
    let num_sends = schedule.num_sends();
    let copy_rate = model.copy_bandwidth_gib_s * GIB_PER_US;
    let reduce_rate = model.reduce_bandwidth_gib_s * GIB_PER_US;

    // ---- Static resolution: bytes, routes, latencies. ----------------------
    let mut infos: Vec<SendInfo> = Vec::with_capacity(num_sends);
    let mut network_messages = 0u64;
    for step in 0..schedule.num_steps() {
        for i in schedule.step_send_range(step) {
            let s = schedule.send(i);
            let bytes: u64 = schedule
                .block_index_slice(s)
                .iter()
                .map(|&b| schedule.blocks().resolve(b).bytes(n, p))
                .sum();
            let local = s.is_local();
            let mut latency_us = if local {
                0.0
            } else {
                network_messages += 1;
                model.alpha_us + model.segment_overhead_us * (s.segments.saturating_sub(1)) as f64
            };
            let links = if local {
                Vec::new()
            } else {
                let route =
                    topo.route(alloc.node_of(s.src as usize), alloc.node_of(s.dst as usize));
                for &l in &route {
                    latency_us += topo.link(l).latency_us;
                }
                route
            };
            infos.push(SendInfo {
                bytes: bytes as f64,
                latency_us,
                links,
                reduce: s.kind == TransferKind::Reduce,
                src: s.src as usize,
                dst: s.dst as usize,
                local,
            });
        }
    }

    // ---- Static dependency analysis (see the module docs). -----------------
    // For every send: which earlier-step writes into its blocks (at its
    // sender) must land first. Same-step receives are excluded — a step's
    // sends read the pre-step state, exactly as the executors do.
    //
    // Writes to the same block at the same rank are additionally *chained*
    // (each write completes only after the previous write to that block):
    // reduce targets accumulate one contribution per step, and a send must
    // wait for all of them, not just the most recent. Chaining makes the
    // latest write transitively cover every earlier one, so read
    // dependencies can still track a single writer per block.
    let mut read_deps_remaining = vec![0u32; num_sends];
    let mut read_dependents: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
    let mut write_preds_remaining = vec![0u32; num_sends];
    let mut write_dependents: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
    let mut latest_write: Vec<HashMap<u32, u32>> = vec![HashMap::new(); p];
    for step in 0..schedule.num_steps() {
        let range = schedule.step_send_range(step);
        for i in range.clone() {
            let s = schedule.send(i);
            let writers = &latest_write[s.src as usize];
            let mut seen: Vec<u32> = Vec::new();
            for &b in schedule.block_index_slice(s) {
                if let Some(&w) = writers.get(&b) {
                    if !seen.contains(&w) {
                        seen.push(w);
                    }
                }
            }
            read_deps_remaining[i] = seen.len() as u32;
            for w in seen {
                read_dependents[w as usize].push(i as u32);
            }
        }
        for i in range {
            let s = schedule.send(i);
            let dst = s.dst as usize;
            let mut preds: Vec<u32> = Vec::new();
            for &b in schedule.block_index_slice(s) {
                if let Some(&w) = latest_write[dst].get(&b) {
                    if !preds.contains(&w) {
                        preds.push(w);
                    }
                }
            }
            write_preds_remaining[i] = preds.len() as u32;
            for w in preds {
                write_dependents[w as usize].push(i as u32);
            }
            for &b in schedule.block_index_slice(s) {
                latest_write[dst].insert(b, i as u32);
            }
        }
    }

    // Per-rank FIFO send queues, in (step, schedule-order) order.
    let mut rank_sends: Vec<Vec<u32>> = vec![Vec::new(); p];
    for step in 0..schedule.num_steps() {
        for i in schedule.step_send_range(step) {
            rank_sends[schedule.send(i).src as usize].push(i as u32);
        }
    }

    // ---- Event loop. -------------------------------------------------------
    let mut t = 0.0f64;
    let mut next_idx = vec![0usize; p];
    let mut port_free = vec![0.0f64; p];
    let mut compute_free = vec![0.0f64; p];
    let mut rank_finish = vec![0.0f64; p];
    let mut completed = 0usize;
    // Payload combined at the destination, but write not yet final because a
    // chained predecessor write is still outstanding.
    let mut payload_ready = vec![false; num_sends];
    let mut active: Vec<Flow> = Vec::new();
    let mut heap: EventQueue<Ev> = EventQueue::new();
    let mut peak_active_flows = 0usize;
    // Worklist for cascading write completions (avoids recursion).
    let mut finish_stack: Vec<u32> = Vec::new();

    let link_cap = |l: usize| -> f64 { topo.link(l).bandwidth_gib_s * GIB_PER_US };

    // Starts every eligible send at time `t`; returns whether a flow was
    // added (rates must then be recomputed).
    let start_eligible = |t: f64,
                          next_idx: &mut [usize],
                          port_free: &mut [f64],
                          read_deps_remaining: &[u32],
                          active: &mut Vec<Flow>,
                          heap: &mut EventQueue<Ev>|
     -> bool {
        let mut flows_changed = false;
        for r in 0..p {
            while next_idx[r] < rank_sends[r].len() {
                let send = rank_sends[r][next_idx[r]];
                if read_deps_remaining[send as usize] != 0 || port_free[r] > t {
                    break;
                }
                let info = &infos[send as usize];
                next_idx[r] += 1;
                if info.local {
                    let done = t + info.bytes / copy_rate;
                    port_free[r] = done;
                    heap.push(done, Ev::WriteDone(send));
                } else if info.links.is_empty() {
                    // Distinct ranks on the same node: only the software
                    // overhead applies, matching the synchronous model.
                    port_free[r] = t + info.latency_us;
                    heap.push(t + info.latency_us, Ev::Delivered(send));
                } else {
                    // The port stays busy until the payload is serialised
                    // (flow completion sets it).
                    port_free[r] = f64::INFINITY;
                    active.push(Flow {
                        send,
                        remaining_bytes: info.bytes,
                        rate: 0.0,
                    });
                    flows_changed = true;
                }
            }
        }
        flows_changed
    };

    // Max–min fair-share (progressive filling): repeatedly find the link
    // with the smallest fair share among its unassigned flows, fix those
    // flows at that rate, subtract, repeat. Deterministic: links iterate in
    // id order.
    let assign_rates = |active: &mut Vec<Flow>| {
        if active.is_empty() {
            return;
        }
        let mut link_flows: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (fi, f) in active.iter().enumerate() {
            for &l in &infos[f.send as usize].links {
                link_flows.entry(l).or_default().push(fi);
            }
        }
        let mut assigned: BTreeMap<usize, f64> = BTreeMap::new();
        let mut fixed = vec![false; active.len()];
        let mut unfixed = active.len();
        while unfixed > 0 {
            let mut bottleneck: Option<(f64, usize)> = None;
            for (&l, flows) in &link_flows {
                let open = flows.iter().filter(|&&fi| !fixed[fi]).count();
                if open == 0 {
                    continue;
                }
                let headroom = (link_cap(l) - assigned.get(&l).copied().unwrap_or(0.0)).max(0.0);
                let fair = headroom / open as f64;
                if bottleneck.is_none_or(|(best, _)| fair < best) {
                    bottleneck = Some((fair, l));
                }
            }
            let (fair, l) = bottleneck.expect("every flow traverses at least one link");
            // Numerical floor: keeps the loop terminating even when FP
            // cancellation leaves a link marginally oversubscribed.
            let fair = fair.max(link_cap(l) * 1e-12);
            for fi in link_flows[&l].clone() {
                if fixed[fi] {
                    continue;
                }
                fixed[fi] = true;
                unfixed -= 1;
                active[fi].rate = fair;
                for &l2 in &infos[active[fi].send as usize].links {
                    *assigned.entry(l2).or_insert(0.0) += fair;
                }
            }
        }
    };

    if start_eligible(
        t,
        &mut next_idx,
        &mut port_free,
        &read_deps_remaining,
        &mut active,
        &mut heap,
    ) {
        assign_rates(&mut active);
    }
    peak_active_flows = peak_active_flows.max(active.len());

    while completed < num_sends {
        // Next event: earliest flow completion or queued timer.
        let t_flow = active
            .iter()
            .map(|f| t + f.remaining_bytes / f.rate)
            .fold(f64::INFINITY, f64::min);
        let t_next = t_flow.min(heap.peek_time().unwrap_or(f64::INFINITY));
        assert!(
            t_next.is_finite(),
            "simulation deadlock: {} of {num_sends} writes completed",
            completed
        );
        let tol = 1e-9 * (1.0 + t_next.abs());
        let dt = t_next - t;

        // Flows whose predicted completion falls on t_next finish; the rest
        // advance by dt at their current rate.
        let mut still_active = Vec::with_capacity(active.len());
        let mut flows_changed = false;
        for mut f in active.drain(..) {
            let completion = t + f.remaining_bytes / f.rate;
            if completion <= t_next + tol {
                let info = &infos[f.send as usize];
                port_free[info.src] = t_next;
                rank_finish[info.src] = rank_finish[info.src].max(t_next);
                heap.push(t_next + info.latency_us, Ev::Delivered(f.send));
                flows_changed = true;
            } else {
                f.remaining_bytes -= f.rate * dt;
                still_active.push(f);
            }
        }
        active = still_active;
        t = t_next;

        // Drain every timer event at (or numerically on) t. The clock
        // follows the drained event times: an event popped from just inside
        // the merge tolerance may be the wake-up for a port whose
        // `port_free` stamp is its (marginally later) scheduled time, and
        // `start_eligible` below must see that port as free or the rank
        // could sleep forever.
        while let Some(et) = heap.peek_time() {
            if et > t + tol {
                break;
            }
            let (et, ev) = heap.pop().expect("peeked");
            t = t.max(et);
            match ev {
                Ev::Delivered(send) => {
                    let info = &infos[send as usize];
                    rank_finish[info.dst] = rank_finish[info.dst].max(t);
                    if info.reduce {
                        let start = compute_free[info.dst].max(t);
                        let done = start + info.bytes / reduce_rate;
                        compute_free[info.dst] = done;
                        heap.push(done, Ev::WriteDone(send));
                    } else {
                        heap.push(t, Ev::WriteDone(send));
                    }
                }
                Ev::WriteDone(send) => {
                    // The payload is combined; the write becomes final once
                    // every chained predecessor write to its blocks is, and
                    // finalising it may cascade through deferred successors.
                    payload_ready[send as usize] = true;
                    if write_preds_remaining[send as usize] == 0 {
                        finish_stack.push(send);
                    }
                    while let Some(w) = finish_stack.pop() {
                        let info = &infos[w as usize];
                        rank_finish[info.dst] = rank_finish[info.dst].max(t);
                        completed += 1;
                        for &d in &read_dependents[w as usize] {
                            read_deps_remaining[d as usize] -= 1;
                        }
                        for &d in &write_dependents[w as usize] {
                            write_preds_remaining[d as usize] -= 1;
                            if write_preds_remaining[d as usize] == 0 && payload_ready[d as usize] {
                                finish_stack.push(d);
                            }
                        }
                    }
                }
            }
        }

        if start_eligible(
            t,
            &mut next_idx,
            &mut port_free,
            &read_deps_remaining,
            &mut active,
            &mut heap,
        ) {
            flows_changed = true;
        }
        if flows_changed {
            assign_rates(&mut active);
        }
        peak_active_flows = peak_active_flows.max(active.len());
    }

    let makespan_us = rank_finish.iter().copied().fold(0.0, f64::max);
    SimReport {
        makespan_us,
        rank_finish_us: rank_finish,
        network_messages,
        peak_active_flows,
    }
}

/// Convenience wrapper: segments `schedule` into `chunks` pipeline chunks
/// (1 = unsegmented), compiles it and simulates it, returning the full
/// report.
pub fn simulate_schedule(
    model: &CostModel,
    schedule: &Schedule,
    chunks: usize,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> SimReport {
    let seg = schedule.segmented(chunks);
    simulate(model, &seg.compile(), n, topo, alloc)
}

/// Shorthand returning only the simulated makespan in microseconds.
pub fn sim_time_us(
    model: &CostModel,
    schedule: &Schedule,
    chunks: usize,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> f64 {
    simulate_schedule(model, schedule, chunks, n, topo, alloc).makespan_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FatTree, IdealFullMesh};
    use bine_sched::collectives::{allreduce, broadcast, AllreduceAlg, BroadcastAlg};

    #[test]
    fn congestion_free_single_segment_matches_the_synchronous_model() {
        let p = 16;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        for (sched, n) in [
            (allreduce(p, AllreduceAlg::RecursiveDoubling), 1u64 << 20),
            (allreduce(p, AllreduceAlg::BineLarge), 1 << 20),
            (
                broadcast(p, 0, BroadcastAlg::BinomialDistanceDoubling),
                4096,
            ),
        ] {
            let sync = model.time_us(&sched, n, &topo, &alloc);
            let des = sim_time_us(&model, &sched, 1, n, &topo, &alloc);
            assert!(
                (des - sync).abs() <= 1e-9 * sync,
                "{}: DES {des} vs sync {sync}",
                sched.algorithm
            );
        }
    }

    #[test]
    fn pipelining_beats_the_barrier_model_under_multi_hop_forwarding() {
        // A segmented bine-large allreduce on an oversubscribed fat tree:
        // chunks let a rank forward chunk c while chunk c + 1 still arrives,
        // so the simulated pipelined time must beat the unsegmented one for
        // bandwidth-dominated vectors.
        let p = 32;
        let topo = FatTree::new(32, 4, 1);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        let n = 64 << 20;
        let flat = sim_time_us(&model, &sched, 1, n, &topo, &alloc);
        let piped = sim_time_us(&model, &sched, 8, n, &topo, &alloc);
        assert!(
            piped < flat,
            "8-chunk pipeline {piped} should beat unsegmented {flat}"
        );
    }

    #[test]
    fn des_is_never_pessimistic_versus_the_barrier_on_an_ideal_network() {
        // Removing barriers can only help when no congestion exists.
        let p = 32;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        for alg in AllreduceAlg::ALL {
            let sched = allreduce(p, alg);
            let sync = model.time_us(&sched, 1 << 16, &topo, &alloc);
            let des = sim_time_us(&model, &sched, 1, 1 << 16, &topo, &alloc);
            assert!(
                des <= sync * (1.0 + 1e-9),
                "{}: DES {des} > sync {sync}",
                sched.algorithm
            );
        }
    }

    #[test]
    fn report_counts_messages_and_flows() {
        let p = 8;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sched = allreduce(p, AllreduceAlg::RecursiveDoubling);
        let report = simulate_schedule(&model, &sched, 1, 1024, &topo, &alloc);
        // 3 steps of 8 simultaneous exchanges.
        assert_eq!(report.network_messages, 24);
        assert_eq!(report.peak_active_flows, 8);
        assert_eq!(report.rank_finish_us.len(), p);
        assert!(report.makespan_us > 0.0);
    }
}
