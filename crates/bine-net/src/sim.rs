//! Discrete-event, flow-level simulation of compiled schedules.
//!
//! The synchronous [`CostModel`] charges every step
//! as a global barrier: each step lasts as long as its slowest message, and
//! the schedule time is the sum of its steps. That cannot express *skew*
//! (one slow rank delaying only its dependents), *overlap* (a rank
//! forwarding data while later data is still arriving) or *pipelining*
//! (segmented schedules, see `bine_sched::segment`) — exactly the effects
//! that move algorithm crossover points at mid message sizes.
//!
//! This module simulates a [`CompiledSchedule`] event by event instead:
//!
//! * **per-rank dependency tracking** — every send is statically annotated
//!   with the set of earlier-step writes (receives, reductions, local moves)
//!   into the blocks it carries at its sender; it becomes eligible the
//!   moment those writes land, *not* at a global barrier. Writes to the same
//!   block are chained — a reduce target accumulates one contribution per
//!   step, and a later write only counts as landed once every earlier one
//!   has — so waiting for the latest write transitively waits for them all.
//!   Within one rank sends still issue in schedule order through a single
//!   send port (single-ported model, matching `Schedule::validate`).
//! * **per-link fair-share bandwidth** — concurrently active flows divide
//!   link capacity max–min fairly (progressive filling), recomputed at every
//!   flow arrival/completion, so congestion emerges from overlap instead of
//!   being charged per synchronous step.
//! * **the same cost parameters** as the synchronous model: `alpha_us` +
//!   per-extra-segment overhead + per-link latency per message, payload
//!   serialisation against link bandwidth, local copies against the copy
//!   bandwidth, and reductions against the reduce bandwidth (serialised per
//!   receiving rank).
//!
//! In the **one-segment, congestion-free limit** (every flow alone on its
//! links, e.g. on [`crate::topology::IdealFullMesh`]) the simulator
//! reproduces the synchronous model exactly — this is property-tested in
//! `tests/proptests.rs` — while segmented schedules on real topologies
//! overlap chunk *c + 1*'s transfer with chunk *c*'s forwarding and come out
//! faster than the barrier model predicts.
//!
//! ## One entry point: [`SimRequest`]
//!
//! Every way to run the simulator goes through the [`SimRequest`] builder:
//! `SimRequest::new(model, schedule, n, topo, alloc)` plus any of
//! `.faults(&plan)`, `.probe(&mut probe)`, `.arena(&mut arena)`,
//! `.time_only()` and `.reference()`. The older `simulate*`/`sim_time*`
//! names survive as `#[deprecated]` one-line wrappers over the builder and
//! are pinned bit-identical to it by a proptest.
//!
//! ## Two implementations, one semantics
//!
//! [`SimRequest::reference`] selects the executable specification: it
//! recomputes the whole max–min fair share from scratch (fresh `BTreeMap`s
//! per rate event) at every flow arrival and completion, and allocates all
//! of its scratch per call. It is kept deliberately simple — and slow.
//!
//! The default is the optimized fast path used by every sweep (tuning,
//! benchmarks, figures):
//!
//! * **incremental fair share** — a flow arrival or completion only dirties
//!   the links it traverses; the affected *component* (flows transitively
//!   sharing links with a dirtied link) is recomputed by the same
//!   progressive-filling loop restricted to that component, over flat
//!   `Vec`-indexed link→flow adjacency maintained across events. Flows in
//!   untouched components keep their previous rates. Progressive filling is
//!   separable across link-disjoint components — fixing a flow never changes
//!   the headroom or open-flow count of a link it does not traverse, and
//!   water-filling levels are non-decreasing, so the restricted loop performs
//!   the *identical* float operations in the identical order the global
//!   recomputation would. The fast path is pinned **bit-identical** to the
//!   reference (makespans, per-rank finish times and every intermediate
//!   rate) by property tests across all collectives × algorithms ×
//!   topologies.
//! * **arena-backed state** — all per-simulation scratch lives in a
//!   caller-owned [`SimArena`], so repeated simulations (a tuning sweep runs
//!   thousands) allocate nothing after warmup. Pinned by a
//!   counting-global-allocator test (`tests/arena_alloc.rs`).
//! * **cached static resolution** — per-flow route link lists, summed
//!   latencies and the static dependency analysis depend only on
//!   (schedule, topology, allocation, cost model), not on the vector size,
//!   and are cached in the arena keyed by [`CompiledSchedule::identity`].
//!   A sweep over vector sizes re-resolves only the per-send byte counts.
//!
//! ## Fault injection
//!
//! Both implementations accept an optional [`FaultPlan`] (see
//! [`crate::fault`]): per-link bandwidth factors scale the capacities fed to
//! the fair share, per-link latency spikes add to the summed message
//! latency, and per-rank compute slowdowns divide the copy and reduce
//! bandwidths. The plan is applied through bit-exact IEEE 754 identities, so
//! a zero-fault plan simulates **bit-identically** to no plan, and the
//! optimized path stays pinned to the reference under faults — asymmetric
//! link capacities are exactly what stresses the incremental fair-share
//! rebuild.
//!
//! ## Crash faults and stall diagnosis
//!
//! A plan may also carry **crash faults**: `RankCrash { rank, at_time_us }`
//! and `LinkDown { link, at_time_us }`. Each send gets a static *kill time*
//! — the earliest crash of its endpoints or severing of a route link
//! (`INFINITY` when healthy). A send whose eligibility moment falls at or
//! after its kill time is *dropped*: it never occupies the port and never
//! produces an event (fail-stop at send granularity; flows already in
//! flight complete). Dependents of a dropped write can never start, so the
//! event loop eventually goes quiescent with writes outstanding; instead of
//! asserting, the run returns [`SimOutcome::Stalled`] carrying a
//! [`StallReport`] whose diagnosis comes from
//! `bine_sched::validate::ScheduleValidator` — which surviving ranks still
//! met their postcondition and which pending receives form the stall cut.
//! The kill-time comparison adds no floating-point arithmetic, so a plan
//! with no crashes remains bit-identical to the healthy run, and the
//! optimized path stays pinned to the reference under any crash plan.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use bine_sched::{CompiledSchedule, CompletionReport, Schedule, ScheduleValidator, TransferKind};

use crate::allocation::Allocation;
use crate::cost::{CostModel, GIB_PER_US};
use crate::event::EventQueue;
use crate::fault::FaultPlan;
use crate::topology::{LinkInfo, Topology};

/// Outcome of simulating one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated makespan in microseconds: the time the last write (receive,
    /// reduction or local move) completes.
    pub makespan_us: f64,
    /// Per-rank completion time of the rank's last simulated event.
    pub rank_finish_us: Vec<f64>,
    /// Number of network messages simulated (local moves excluded).
    pub network_messages: u64,
    /// Largest number of flows ever in flight at once — `> 1` per link is
    /// what the synchronous model's per-step congestion term approximates.
    pub peak_active_flows: usize,
}

/// Observer of every fair-share recomputation: invoked with the simulation
/// clock and the `(send, rate)` pair of every in-flight flow each time rates
/// are (re)assigned. Used by the property tests to pin the incremental fast
/// path to the reference at *every* rate event, not just at completion.
pub type RateProbe<'a> = &'a mut dyn FnMut(f64, &[(u32, f64)]);

/// Static per-send data resolved once before the event loop (reference
/// implementation only; the fast path uses [`CachedStatic`]).
struct SendInfo {
    bytes: f64,
    /// alpha + segment overhead + summed link latencies.
    latency_us: f64,
    links: Vec<usize>,
    reduce: bool,
    src: usize,
    dst: usize,
    /// Intra-rank buffer move (charged to the copy bandwidth).
    local: bool,
}

/// A network transfer currently in flight.
#[derive(Clone, Copy)]
struct Flow {
    send: u32,
    remaining_bytes: f64,
    /// Current max–min fair rate in bytes/us (0 until first assignment).
    rate: f64,
}

enum Ev {
    /// Payload fully arrived at the destination (latency included).
    Delivered(u32),
    /// The destination finished writing (and, for reduces, combining) the
    /// payload; dependent sends may now become eligible.
    WriteDone(u32),
}

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

/// The reference simulator: recomputes the global max–min fair share from
/// scratch at every rate event and allocates all scratch per call. Slow —
/// kept as the executable specification the optimized fast path is pinned
/// bit-identical against.
///
/// # Panics
/// Panics if the allocation has fewer ranks than the schedule, or if the
/// simulation deadlocks (which would indicate a schedule whose dependency
/// graph is cyclic — impossible for schedules built by `bine-sched`).
#[deprecated(note = "use `SimRequest::new(..).reference().run()`")]
pub fn simulate_reference(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> SimReport {
    SimRequest::new(model, schedule, n, topo, alloc)
        .reference()
        .run()
        .into_report()
}

/// [`simulate_reference`] under a [`FaultPlan`]: degraded link capacities,
/// latency spikes and straggler slowdowns enter the exact expressions the
/// healthy path evaluates, so a zero plan is bit-identical to
/// [`simulate_reference`].
#[deprecated(note = "use `SimRequest::new(..).reference().faults(plan).run()`")]
pub fn simulate_reference_faulted(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> SimReport {
    SimRequest::new(model, schedule, n, topo, alloc)
        .reference()
        .faults(plan)
        .run()
        .into_report()
}

/// [`simulate_reference`] with a [`RateProbe`] invoked after every
/// fair-share recomputation (a verification hook for the property tests),
/// under an optional [`FaultPlan`].
#[deprecated(note = "use `SimRequest::new(..).reference().probe(probe).run()`")]
pub fn simulate_reference_probed(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: Option<&FaultPlan>,
    probe: RateProbe<'_>,
) -> SimReport {
    let mut req = SimRequest::new(model, schedule, n, topo, alloc)
        .reference()
        .probe(probe);
    if let Some(plan) = plan {
        req = req.faults(plan);
    }
    req.run().into_report()
}

fn simulate_reference_impl(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: Option<&FaultPlan>,
    mut probe: Option<RateProbe<'_>>,
) -> Result<SimReport, Box<StallReport>> {
    let p = schedule.num_ranks;
    assert!(
        alloc.num_ranks() >= p,
        "allocation has {} ranks, schedule needs {p}",
        alloc.num_ranks()
    );
    let zero_plan = FaultPlan::none();
    let plan = plan.unwrap_or(&zero_plan);
    let num_sends = schedule.num_sends();
    // Straggler slowdowns divide the compute rates; dividing by the identity
    // 1.0 reproduces the healthy rate bit for bit.
    let copy_rates: Vec<f64> = (0..p)
        .map(|r| model.copy_bandwidth_gib_s * GIB_PER_US / plan.compute_slowdown(r))
        .collect();
    let reduce_rates: Vec<f64> = (0..p)
        .map(|r| model.reduce_bandwidth_gib_s * GIB_PER_US / plan.compute_slowdown(r))
        .collect();

    // ---- Static resolution: bytes, routes, latencies, kill times. ----------
    let mut infos: Vec<SendInfo> = Vec::with_capacity(num_sends);
    let mut kill_time: Vec<f64> = Vec::with_capacity(num_sends);
    let mut network_messages = 0u64;
    for step in 0..schedule.num_steps() {
        for i in schedule.step_send_range(step) {
            let s = schedule.send(i);
            let bytes: u64 = schedule
                .block_index_slice(s)
                .iter()
                .map(|&b| schedule.block_bytes(schedule.blocks().resolve(b), n))
                .sum();
            let local = s.is_local();
            let mut latency_us = if local {
                0.0
            } else {
                network_messages += 1;
                model.alpha_us + model.segment_overhead_us * (s.segments.saturating_sub(1)) as f64
            };
            // The earliest moment a fault kills this send: either endpoint
            // crashing or any route link going down (INFINITY when healthy —
            // min over identities, no arithmetic, bit-exact).
            let mut kill = plan
                .crash_time_us(s.src as usize)
                .min(plan.crash_time_us(s.dst as usize));
            let links = if local {
                Vec::new()
            } else {
                let route =
                    topo.route(alloc.node_of(s.src as usize), alloc.node_of(s.dst as usize));
                for &l in &route {
                    // A zero spike adds 0.0 — bit-exact for the
                    // non-negative latencies topologies produce.
                    latency_us += topo.link(l).latency_us + plan.extra_latency_us(l);
                    kill = kill.min(plan.link_down_time_us(l));
                }
                route
            };
            kill_time.push(kill);
            infos.push(SendInfo {
                bytes: bytes as f64,
                latency_us,
                links,
                reduce: s.kind == TransferKind::Reduce,
                src: s.src as usize,
                dst: s.dst as usize,
                local,
            });
        }
    }

    // ---- Static dependency analysis (see the module docs). -----------------
    // For every send: which earlier-step writes into its blocks (at its
    // sender) must land first. Same-step receives are excluded — a step's
    // sends read the pre-step state, exactly as the executors do.
    //
    // Writes to the same block at the same rank are additionally *chained*
    // (each write completes only after the previous write to that block):
    // reduce targets accumulate one contribution per step, and a send must
    // wait for all of them, not just the most recent. Chaining makes the
    // latest write transitively cover every earlier one, so read
    // dependencies can still track a single writer per block.
    let mut read_deps_remaining = vec![0u32; num_sends];
    let mut read_dependents: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
    let mut write_preds_remaining = vec![0u32; num_sends];
    let mut write_dependents: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
    let mut latest_write: Vec<HashMap<u32, u32>> = vec![HashMap::new(); p];
    for step in 0..schedule.num_steps() {
        let range = schedule.step_send_range(step);
        for i in range.clone() {
            let s = schedule.send(i);
            let writers = &latest_write[s.src as usize];
            let mut seen: Vec<u32> = Vec::new();
            for &b in schedule.block_index_slice(s) {
                if let Some(&w) = writers.get(&b) {
                    if !seen.contains(&w) {
                        seen.push(w);
                    }
                }
            }
            read_deps_remaining[i] = seen.len() as u32;
            for w in seen {
                read_dependents[w as usize].push(i as u32);
            }
        }
        for i in range {
            let s = schedule.send(i);
            let dst = s.dst as usize;
            let mut preds: Vec<u32> = Vec::new();
            for &b in schedule.block_index_slice(s) {
                if let Some(&w) = latest_write[dst].get(&b) {
                    if !preds.contains(&w) {
                        preds.push(w);
                    }
                }
            }
            write_preds_remaining[i] = preds.len() as u32;
            for w in preds {
                write_dependents[w as usize].push(i as u32);
            }
            for &b in schedule.block_index_slice(s) {
                latest_write[dst].insert(b, i as u32);
            }
        }
    }

    // Per-rank FIFO send queues, in (step, schedule-order) order.
    let mut rank_sends: Vec<Vec<u32>> = vec![Vec::new(); p];
    for step in 0..schedule.num_steps() {
        for i in schedule.step_send_range(step) {
            rank_sends[schedule.send(i).src as usize].push(i as u32);
        }
    }

    // ---- Event loop. -------------------------------------------------------
    let mut t = 0.0f64;
    let mut next_idx = vec![0usize; p];
    let mut port_free = vec![0.0f64; p];
    let mut compute_free = vec![0.0f64; p];
    let mut rank_finish = vec![0.0f64; p];
    let mut completed = 0usize;
    // Payload combined at the destination, but write not yet final because a
    // chained predecessor write is still outstanding.
    let mut payload_ready = vec![false; num_sends];
    let mut active: Vec<Flow> = Vec::new();
    let mut heap: EventQueue<Ev> = EventQueue::new();
    let mut peak_active_flows = 0usize;
    // Worklist for cascading write completions (avoids recursion).
    let mut finish_stack: Vec<u32> = Vec::new();
    // Sends refused because their kill time had passed when they became
    // eligible. They count toward loop termination — their writes never
    // happen — and a non-empty list at quiescence is a stall.
    let mut dropped: Vec<u32> = Vec::new();

    // A healthy link's factor is the identity 1.0 — bit-exact.
    let link_cap =
        |l: usize| -> f64 { topo.link(l).bandwidth_gib_s * GIB_PER_US * plan.bandwidth_factor(l) };

    // Starts every eligible send at time `t`; returns whether a flow was
    // added (rates must then be recomputed). Sends whose kill time has
    // passed are dropped instead of started: no port occupancy, no event.
    let start_eligible = |t: f64,
                          next_idx: &mut [usize],
                          port_free: &mut [f64],
                          read_deps_remaining: &[u32],
                          active: &mut Vec<Flow>,
                          heap: &mut EventQueue<Ev>,
                          dropped: &mut Vec<u32>|
     -> bool {
        let mut flows_changed = false;
        for r in 0..p {
            while next_idx[r] < rank_sends[r].len() {
                let send = rank_sends[r][next_idx[r]];
                if read_deps_remaining[send as usize] != 0 || port_free[r] > t {
                    break;
                }
                let info = &infos[send as usize];
                next_idx[r] += 1;
                if t >= kill_time[send as usize] {
                    dropped.push(send);
                    continue;
                }
                if info.local {
                    let done = t + info.bytes / copy_rates[r];
                    port_free[r] = done;
                    heap.push(done, Ev::WriteDone(send));
                } else if info.links.is_empty() {
                    // Distinct ranks on the same node: only the software
                    // overhead applies, matching the synchronous model.
                    port_free[r] = t + info.latency_us;
                    heap.push(t + info.latency_us, Ev::Delivered(send));
                } else {
                    // The port stays busy until the payload is serialised
                    // (flow completion sets it).
                    port_free[r] = f64::INFINITY;
                    active.push(Flow {
                        send,
                        remaining_bytes: info.bytes,
                        rate: 0.0,
                    });
                    flows_changed = true;
                }
            }
        }
        flows_changed
    };

    // Max–min fair-share (progressive filling): repeatedly find the link
    // with the smallest fair share among its unassigned flows, fix those
    // flows at that rate, subtract, repeat. Deterministic: links iterate in
    // id order.
    let assign_rates = |active: &mut Vec<Flow>| {
        if active.is_empty() {
            return;
        }
        let mut link_flows: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (fi, f) in active.iter().enumerate() {
            for &l in &infos[f.send as usize].links {
                link_flows.entry(l).or_default().push(fi);
            }
        }
        let mut assigned: BTreeMap<usize, f64> = BTreeMap::new();
        let mut fixed = vec![false; active.len()];
        let mut unfixed = active.len();
        while unfixed > 0 {
            let mut bottleneck: Option<(f64, usize)> = None;
            for (&l, flows) in &link_flows {
                let open = flows.iter().filter(|&&fi| !fixed[fi]).count();
                if open == 0 {
                    continue;
                }
                let headroom = (link_cap(l) - assigned.get(&l).copied().unwrap_or(0.0)).max(0.0);
                let fair = headroom / open as f64;
                if bottleneck.is_none_or(|(best, _)| fair < best) {
                    bottleneck = Some((fair, l));
                }
            }
            let (fair, l) = bottleneck.expect("every flow traverses at least one link");
            // Numerical floor: keeps the loop terminating even when FP
            // cancellation leaves a link marginally oversubscribed.
            let fair = fair.max(link_cap(l) * 1e-12);
            for fi in link_flows[&l].clone() {
                if fixed[fi] {
                    continue;
                }
                fixed[fi] = true;
                unfixed -= 1;
                active[fi].rate = fair;
                for &l2 in &infos[active[fi].send as usize].links {
                    *assigned.entry(l2).or_insert(0.0) += fair;
                }
            }
        }
    };

    if start_eligible(
        t,
        &mut next_idx,
        &mut port_free,
        &read_deps_remaining,
        &mut active,
        &mut heap,
        &mut dropped,
    ) {
        assign_rates(&mut active);
        if let Some(probe) = probe.as_mut() {
            let snapshot: Vec<(u32, f64)> = active.iter().map(|f| (f.send, f.rate)).collect();
            probe(t, &snapshot);
        }
    }
    peak_active_flows = peak_active_flows.max(active.len());

    while completed + dropped.len() < num_sends {
        // Next event: earliest flow completion or queued timer.
        let t_flow = active
            .iter()
            .map(|f| t + f.remaining_bytes / f.rate)
            .fold(f64::INFINITY, f64::min);
        let t_next = t_flow.min(heap.peek_time().unwrap_or(f64::INFINITY));
        if !t_next.is_finite() {
            // Quiescence with writes outstanding: every remaining send
            // waits (transitively) on a dropped write. Diagnosed below.
            break;
        }
        let tol = 1e-9 * (1.0 + t_next.abs());
        let dt = t_next - t;

        // Flows whose predicted completion falls on t_next finish; the rest
        // advance by dt at their current rate.
        let mut still_active = Vec::with_capacity(active.len());
        let mut flows_changed = false;
        for mut f in active.drain(..) {
            let completion = t + f.remaining_bytes / f.rate;
            if completion <= t_next + tol {
                let info = &infos[f.send as usize];
                port_free[info.src] = t_next;
                rank_finish[info.src] = rank_finish[info.src].max(t_next);
                heap.push(t_next + info.latency_us, Ev::Delivered(f.send));
                flows_changed = true;
            } else {
                f.remaining_bytes -= f.rate * dt;
                still_active.push(f);
            }
        }
        active = still_active;
        t = t_next;

        // Drain every timer event at (or numerically on) t. The clock
        // follows the drained event times: an event popped from just inside
        // the merge tolerance may be the wake-up for a port whose
        // `port_free` stamp is its (marginally later) scheduled time, and
        // `start_eligible` below must see that port as free or the rank
        // could sleep forever.
        while let Some(et) = heap.peek_time() {
            if et > t + tol {
                break;
            }
            let (et, ev) = heap.pop().expect("peeked");
            t = t.max(et);
            match ev {
                Ev::Delivered(send) => {
                    let info = &infos[send as usize];
                    rank_finish[info.dst] = rank_finish[info.dst].max(t);
                    if info.reduce {
                        let start = compute_free[info.dst].max(t);
                        let done = start + info.bytes / reduce_rates[info.dst];
                        compute_free[info.dst] = done;
                        heap.push(done, Ev::WriteDone(send));
                    } else {
                        heap.push(t, Ev::WriteDone(send));
                    }
                }
                Ev::WriteDone(send) => {
                    // The payload is combined; the write becomes final once
                    // every chained predecessor write to its blocks is, and
                    // finalising it may cascade through deferred successors.
                    payload_ready[send as usize] = true;
                    if write_preds_remaining[send as usize] == 0 {
                        finish_stack.push(send);
                    }
                    while let Some(w) = finish_stack.pop() {
                        let info = &infos[w as usize];
                        rank_finish[info.dst] = rank_finish[info.dst].max(t);
                        completed += 1;
                        for &d in &read_dependents[w as usize] {
                            read_deps_remaining[d as usize] -= 1;
                        }
                        for &d in &write_dependents[w as usize] {
                            write_preds_remaining[d as usize] -= 1;
                            if write_preds_remaining[d as usize] == 0 && payload_ready[d as usize] {
                                finish_stack.push(d);
                            }
                        }
                    }
                }
            }
        }

        if start_eligible(
            t,
            &mut next_idx,
            &mut port_free,
            &read_deps_remaining,
            &mut active,
            &mut heap,
            &mut dropped,
        ) {
            flows_changed = true;
        }
        if flows_changed {
            assign_rates(&mut active);
            if let Some(probe) = probe.as_mut() {
                let snapshot: Vec<(u32, f64)> = active.iter().map(|f| (f.send, f.rate)).collect();
                probe(t, &snapshot);
            }
        }
        peak_active_flows = peak_active_flows.max(active.len());
    }

    if !dropped.is_empty() {
        return Err(stall_report(
            schedule, plan, t, completed, num_sends, dropped,
        ));
    }
    assert!(
        completed == num_sends,
        "simulation deadlock: {completed} of {num_sends} writes completed"
    );
    let makespan_us = rank_finish.iter().copied().fold(0.0, f64::max);
    Ok(SimReport {
        makespan_us,
        rank_finish_us: rank_finish,
        network_messages,
        peak_active_flows,
    })
}

// ---------------------------------------------------------------------------
// Optimized implementation: arena + cached statics + incremental fair share
// ---------------------------------------------------------------------------

/// Everything about one simulation that does not depend on the vector size:
/// per-send routes, latencies and flags, the static dependency analysis, the
/// per-rank FIFO send order and the per-link capacity table. Cached in the
/// [`SimArena`] keyed by [`CompiledSchedule::identity`] and revalidated
/// against the topology shape, allocation and cost model on every use.
struct CachedStatic {
    // Context validation (see [`CachedStatic::matches`]).
    model: CostModel,
    topo_nodes: usize,
    topo_groups: usize,
    link_table: Vec<LinkInfo>,
    alloc: Allocation,
    fault: FaultPlan,

    num_sends: usize,
    network_messages: u64,

    // Per-send statics, indexed by global send id.
    latency_us: Vec<f64>,
    links_off: Vec<u32>,
    links_flat: Vec<u32>,
    reduce: Vec<bool>,
    local: Vec<bool>,
    src: Vec<u32>,
    dst: Vec<u32>,

    // Static dependency analysis (CSR form of the reference's `Vec<Vec<_>>`).
    read_deps_init: Vec<u32>,
    read_dep_off: Vec<u32>,
    read_dep_flat: Vec<u32>,
    write_preds_init: Vec<u32>,
    write_dep_off: Vec<u32>,
    write_dep_flat: Vec<u32>,

    // Per-rank FIFO send queues, CSR.
    rank_off: Vec<u32>,
    rank_flat: Vec<u32>,

    /// Per-link capacity in bytes/us — the same product the reference's
    /// `link_cap` closure computes (fault factor included), precomputed once
    /// (bit-identical).
    link_cap: Vec<f64>,

    /// Per-rank copy and reduce rates in bytes/us: the model's bandwidths
    /// divided by the fault plan's compute slowdowns (identity 1.0 when
    /// healthy — bit-exact).
    copy_rates: Vec<f64>,
    reduce_rates: Vec<f64>,

    /// Per-send kill time: the earliest crash of an endpoint or severing of
    /// a route link (`INFINITY` when healthy). The same min-fold the
    /// reference computes inline — no arithmetic, bit-exact.
    kill_time: Vec<f64>,

    /// The vector size the `bytes` column currently resolves, if any.
    bytes_n: Option<u64>,
    bytes: Vec<f64>,
}

impl CachedStatic {
    #[inline]
    fn links(&self, send: u32) -> &[u32] {
        &self.links_flat
            [self.links_off[send as usize] as usize..self.links_off[send as usize + 1] as usize]
    }

    #[inline]
    fn read_dependents(&self, send: u32) -> &[u32] {
        &self.read_dep_flat[self.read_dep_off[send as usize] as usize
            ..self.read_dep_off[send as usize + 1] as usize]
    }

    #[inline]
    fn write_dependents(&self, send: u32) -> &[u32] {
        &self.write_dep_flat[self.write_dep_off[send as usize] as usize
            ..self.write_dep_off[send as usize + 1] as usize]
    }

    #[inline]
    fn rank_sends(&self, rank: usize) -> &[u32] {
        &self.rank_flat[self.rank_off[rank] as usize..self.rank_off[rank + 1] as usize]
    }

    /// Whether this entry was built for the same context. Allocation-free:
    /// the topology is revalidated by shape (node/group/link counts and the
    /// full per-link table) instead of its heap-allocated `name()`.
    fn matches(
        &self,
        model: &CostModel,
        topo: &dyn Topology,
        alloc: &Allocation,
        plan: &FaultPlan,
    ) -> bool {
        self.model == *model
            && self.fault == *plan
            && self.topo_nodes == topo.num_nodes()
            && self.topo_groups == topo.num_groups()
            && self.link_table.len() == topo.num_links()
            && self.alloc == *alloc
            && self
                .link_table
                .iter()
                .enumerate()
                .all(|(l, info)| *info == topo.link(l))
    }

    /// Resolves the per-send byte counts for vector size `n` (a no-op when
    /// the cached column already matches).
    fn ensure_bytes(&mut self, schedule: &CompiledSchedule, n: u64) {
        if self.bytes_n == Some(n) {
            return;
        }
        self.bytes.clear();
        for step in 0..schedule.num_steps() {
            for i in schedule.step_send_range(step) {
                let s = schedule.send(i);
                let bytes: u64 = schedule
                    .block_index_slice(s)
                    .iter()
                    .map(|&b| schedule.block_bytes(schedule.blocks().resolve(b), n))
                    .sum();
                self.bytes.push(bytes as f64);
            }
        }
        self.bytes_n = Some(n);
    }
}

/// Builds the [`CachedStatic`] for one (schedule, topology, allocation,
/// model) context — the only allocating step of the optimized path, paid
/// once per compiled schedule and amortised over every subsequent vector
/// size and repetition.
fn build_static(
    model: &CostModel,
    schedule: &CompiledSchedule,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> CachedStatic {
    let p = schedule.num_ranks;
    let num_sends = schedule.num_sends();

    let mut latency_us = Vec::with_capacity(num_sends);
    let mut links_off: Vec<u32> = Vec::with_capacity(num_sends + 1);
    let mut links_flat: Vec<u32> = Vec::new();
    let mut reduce = Vec::with_capacity(num_sends);
    let mut local = Vec::with_capacity(num_sends);
    let mut src = Vec::with_capacity(num_sends);
    let mut dst = Vec::with_capacity(num_sends);
    let mut kill_time = Vec::with_capacity(num_sends);
    let mut network_messages = 0u64;
    links_off.push(0);
    for step in 0..schedule.num_steps() {
        for i in schedule.step_send_range(step) {
            let s = schedule.send(i);
            let is_local = s.is_local();
            let mut lat = if is_local {
                0.0
            } else {
                network_messages += 1;
                model.alpha_us + model.segment_overhead_us * (s.segments.saturating_sub(1)) as f64
            };
            let mut kill = plan
                .crash_time_us(s.src as usize)
                .min(plan.crash_time_us(s.dst as usize));
            if !is_local {
                let route =
                    topo.route(alloc.node_of(s.src as usize), alloc.node_of(s.dst as usize));
                for &l in &route {
                    lat += topo.link(l).latency_us + plan.extra_latency_us(l);
                    kill = kill.min(plan.link_down_time_us(l));
                }
                links_flat.extend(route.iter().map(|&l| l as u32));
            }
            links_off.push(links_flat.len() as u32);
            kill_time.push(kill);
            latency_us.push(lat);
            reduce.push(s.kind == TransferKind::Reduce);
            local.push(is_local);
            src.push(s.src);
            dst.push(s.dst);
        }
    }

    // Static dependency analysis: the reference's algorithm verbatim,
    // flattened into CSR afterwards (see the reference for the semantics).
    let mut read_deps_init = vec![0u32; num_sends];
    let mut read_dependents: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
    let mut write_preds_init = vec![0u32; num_sends];
    let mut write_dependents: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
    let mut latest_write: Vec<HashMap<u32, u32>> = vec![HashMap::new(); p];
    for step in 0..schedule.num_steps() {
        let range = schedule.step_send_range(step);
        for i in range.clone() {
            let s = schedule.send(i);
            let writers = &latest_write[s.src as usize];
            let mut seen: Vec<u32> = Vec::new();
            for &b in schedule.block_index_slice(s) {
                if let Some(&w) = writers.get(&b) {
                    if !seen.contains(&w) {
                        seen.push(w);
                    }
                }
            }
            read_deps_init[i] = seen.len() as u32;
            for w in seen {
                read_dependents[w as usize].push(i as u32);
            }
        }
        for i in range {
            let s = schedule.send(i);
            let d = s.dst as usize;
            let mut preds: Vec<u32> = Vec::new();
            for &b in schedule.block_index_slice(s) {
                if let Some(&w) = latest_write[d].get(&b) {
                    if !preds.contains(&w) {
                        preds.push(w);
                    }
                }
            }
            write_preds_init[i] = preds.len() as u32;
            for w in preds {
                write_dependents[w as usize].push(i as u32);
            }
            for &b in schedule.block_index_slice(s) {
                latest_write[d].insert(b, i as u32);
            }
        }
    }
    fn flatten(lists: Vec<Vec<u32>>) -> (Vec<u32>, Vec<u32>) {
        let mut off = Vec::with_capacity(lists.len() + 1);
        let mut flat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        off.push(0u32);
        for list in lists {
            flat.extend_from_slice(&list);
            off.push(flat.len() as u32);
        }
        (off, flat)
    }
    let (read_dep_off, read_dep_flat) = flatten(read_dependents);
    let (write_dep_off, write_dep_flat) = flatten(write_dependents);

    // Per-rank FIFO send queues, in (step, schedule-order) order.
    let mut rank_sends: Vec<Vec<u32>> = vec![Vec::new(); p];
    for step in 0..schedule.num_steps() {
        for i in schedule.step_send_range(step) {
            rank_sends[schedule.send(i).src as usize].push(i as u32);
        }
    }
    let (rank_off, rank_flat) = flatten(rank_sends);

    let link_table: Vec<LinkInfo> = (0..topo.num_links()).map(|l| topo.link(l)).collect();
    let link_cap: Vec<f64> = link_table
        .iter()
        .enumerate()
        .map(|(l, info)| info.bandwidth_gib_s * GIB_PER_US * plan.bandwidth_factor(l))
        .collect();
    let copy_rates: Vec<f64> = (0..p)
        .map(|r| model.copy_bandwidth_gib_s * GIB_PER_US / plan.compute_slowdown(r))
        .collect();
    let reduce_rates: Vec<f64> = (0..p)
        .map(|r| model.reduce_bandwidth_gib_s * GIB_PER_US / plan.compute_slowdown(r))
        .collect();

    CachedStatic {
        model: model.clone(),
        topo_nodes: topo.num_nodes(),
        topo_groups: topo.num_groups(),
        link_table,
        alloc: alloc.clone(),
        fault: plan.clone(),
        num_sends,
        network_messages,
        latency_us,
        links_off,
        links_flat,
        reduce,
        local,
        src,
        dst,
        read_deps_init,
        read_dep_off,
        read_dep_flat,
        write_preds_init,
        write_dep_off,
        write_dep_flat,
        rank_off,
        rank_flat,
        link_cap,
        copy_rates,
        reduce_rates,
        kill_time,
        bytes_n: None,
        bytes: Vec::new(),
    }
}

/// One bottleneck candidate in the refill heap: a link with its cached fair
/// share. Ordered ascending by `(fair, link)` — the same winner the
/// reference's ascending-link-id strict-`<` scan selects — through a
/// reversed `Ord` so `BinaryHeap` pops the minimum. `epoch` lazily
/// invalidates entries superseded by a newer fair value for the same link.
struct RefillEntry {
    fair: f64,
    link: u32,
    epoch: u32,
}

impl PartialEq for RefillEntry {
    fn eq(&self, other: &Self) -> bool {
        self.fair.total_cmp(&other.fair) == Ordering::Equal && self.link == other.link
    }
}
impl Eq for RefillEntry {}
impl Ord for RefillEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.fair
            .total_cmp(&other.fair)
            .then(self.link.cmp(&other.link))
            .reverse()
    }
}
impl PartialOrd for RefillEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The mutable per-run state, reused across simulations.
#[derive(Default)]
struct Scratch {
    // Dynamic copies of the static init vectors.
    read_deps: Vec<u32>,
    write_preds: Vec<u32>,
    payload_ready: Vec<bool>,
    // Per-rank state.
    next_idx: Vec<u32>,
    port_free: Vec<f64>,
    compute_free: Vec<f64>,
    rank_finish: Vec<f64>,
    // Event machinery.
    active: Vec<Flow>,
    heap: EventQueue<Ev>,
    finish_stack: Vec<u32>,
    pending: Vec<(f64, Ev)>,
    finished_sends: Vec<u32>,
    /// Sends refused because their kill time had passed at eligibility
    /// (always empty under a crash-free plan — no allocation).
    dropped: Vec<u32>,
    // Incremental fair-share state.
    /// Per link: the sends of the flows currently traversing it, in
    /// ascending active-index order (append on start, ordered removal on
    /// finish; the stable compaction preserves relative order).
    link_flows: Vec<Vec<u32>>,
    /// Active index of each in-flight send (stale once the flow finishes).
    flow_of_send: Vec<u32>,
    link_dirty: Vec<bool>,
    flow_dirty: Vec<bool>,
    flow_fixed: Vec<bool>,
    assigned: Vec<f64>,
    comp_links: Vec<u32>,
    comp_flows: Vec<u32>,
    // Refill bookkeeping: per-link open-flow counts and fair-share epochs,
    // the lazy bottleneck heap, and the links touched by one round's fixes.
    link_open: Vec<u32>,
    link_epoch: Vec<u32>,
    refill_heap: BinaryHeap<RefillEntry>,
    refill_mark: Vec<bool>,
    refill_touched: Vec<u32>,
    /// Per-active-flow completion times computed by the next-event scan and
    /// reused (same bits) by the compaction pass.
    completion: Vec<f64>,
    /// Ranks whose eligibility may have changed this event (port released
    /// or a read dependency completed), processed in ascending rank order.
    cand_ranks: Vec<u32>,
    cand_marked: Vec<bool>,
    probe_buf: Vec<(u32, f64)>,
    /// `peak_active_flows` of the last run.
    peak: usize,
    /// `network_messages` of the last run.
    network_messages: u64,
}

/// Reusable state for the optimized simulator: all per-simulation scratch
/// plus a cache of per-schedule static resolution (routes, latencies,
/// dependency analysis) keyed by [`CompiledSchedule::identity`].
///
/// Owning one arena across a sweep makes repeated simulations allocate
/// nothing after warmup (pinned by `tests/arena_alloc.rs`); results are
/// bit-identical to fresh-arena and reference runs regardless of what was
/// simulated before.
#[derive(Default)]
pub struct SimArena {
    cache: HashMap<u64, CachedStatic>,
    scratch: Scratch,
}

impl SimArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every cached per-schedule static resolution (call between
    /// sweeps over disjoint schedule sets to bound memory). Scratch capacity
    /// is kept.
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Number of schedules with cached static resolution.
    pub fn cached_schedules(&self) -> usize {
        self.cache.len()
    }
}

// ---------------------------------------------------------------------------
// The consolidated entry point
// ---------------------------------------------------------------------------

/// The one entry point to the simulator: a builder over every axis the old
/// `simulate*`/`sim_time*` family hard-coded into its names.
///
/// A request always names the five mandatory inputs — cost model, compiled
/// schedule, vector size, topology, allocation — and opts into the rest:
///
/// * [`SimRequest::faults`] — inject a [`FaultPlan`] (degraded links,
///   latency spikes, stragglers);
/// * [`SimRequest::probe`] — observe every fair-share recomputation through
///   a [`RateProbe`];
/// * [`SimRequest::arena`] — reuse a caller-owned [`SimArena`] so repeated
///   runs allocate nothing after warmup;
/// * [`SimRequest::time_only`] — skip building the [`SimReport`] (the fully
///   allocation-free hot path for sweeps);
/// * [`SimRequest::reference`] — run the executable-specification reference
///   implementation instead of the optimized fast path.
///
/// Every combination dispatches to the same internals the old names called,
/// so a migrated call site is **bit-identical** to the deprecated wrapper it
/// replaces (pinned for all 12 wrappers by a proptest in
/// `tests/proptests.rs`).
///
/// ```
/// use bine_net::allocation::Allocation;
/// use bine_net::sim::{SimArena, SimRequest};
/// use bine_net::cost::CostModel;
/// use bine_net::topology::IdealFullMesh;
/// use bine_sched::collectives::{allreduce, AllreduceAlg};
///
/// let topo = IdealFullMesh::new(8);
/// let alloc = Allocation::block(8);
/// let model = CostModel::default();
/// let compiled = allreduce(8, AllreduceAlg::RecursiveDoubling).compile();
///
/// // Full report, fresh scratch.
/// let report = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
///     .run()
///     .into_report();
///
/// // Makespan only, arena-backed: the hot shape for sweeps.
/// let mut arena = SimArena::new();
/// let t = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
///     .arena(&mut arena)
///     .time_only()
///     .run()
///     .makespan_us();
/// assert_eq!(t.to_bits(), report.makespan_us.to_bits());
/// ```
pub struct SimRequest<'a> {
    model: &'a CostModel,
    schedule: &'a CompiledSchedule,
    n: u64,
    topo: &'a dyn Topology,
    alloc: &'a Allocation,
    faults: Option<&'a FaultPlan>,
    probe: Option<RateProbe<'a>>,
    arena: Option<&'a mut SimArena>,
    time_only: bool,
    reference: bool,
}

/// Diagnosis of a simulation that reached quiescence with writes still
/// outstanding: a crash plan ([`crate::fault::RankCrash`] /
/// [`crate::fault::LinkDown`]) killed sends the rest of the schedule
/// depended on. Instead of hanging (or asserting, as a genuinely cyclic
/// schedule would), the simulator stops at the last event and hands the
/// refused sends to the schedule validator for a survivability verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Simulated time of the last event before quiescence.
    pub time_us: f64,
    /// Writes that completed before the stall.
    pub completed_writes: usize,
    /// Total writes in the schedule.
    pub total_writes: usize,
    /// Global send indices refused because an endpoint had crashed or a
    /// route link was severed when they became eligible, ascending.
    pub dropped_sends: Vec<u32>,
    /// The crashed ranks of the fault plan, ascending.
    pub dead_ranks: Vec<usize>,
    /// The validator's survivability verdict over the dropped sends: which
    /// ranks still satisfied their postcondition, which stalled, and the
    /// minimal stall cut of undeliverable receives.
    pub diagnosis: CompletionReport,
}

/// Outcome of a [`SimRequest`]: the completed simulation, or a typed stall
/// diagnosis when a crash plan prevented completion.
#[derive(Debug)]
pub enum SimOutcome {
    /// Every write of the schedule completed.
    Completed {
        /// Simulated makespan in microseconds.
        makespan_us: f64,
        /// The full report; `None` exactly for `.time_only()` requests.
        report: Option<SimReport>,
    },
    /// The simulation went quiescent with writes outstanding — only
    /// possible under a crash plan.
    Stalled(Box<StallReport>),
}

impl SimOutcome {
    /// The simulated makespan in microseconds.
    ///
    /// # Panics
    /// Panics when the simulation stalled under a crash plan; the message
    /// carries the stall diagnosis. Callers that inject crash faults should
    /// branch on [`SimOutcome::try_makespan`] or [`SimOutcome::stall`]
    /// instead.
    pub fn makespan_us(&self) -> f64 {
        match self {
            SimOutcome::Completed { makespan_us, .. } => *makespan_us,
            SimOutcome::Stalled(stall) => panic!(
                "simulation stalled at {:.3} us: {} of {} writes completed, \
                 {} sends dropped, {} ranks dead, {} receives undeliverable",
                stall.time_us,
                stall.completed_writes,
                stall.total_writes,
                stall.dropped_sends.len(),
                stall.dead_ranks.len(),
                stall.diagnosis.undeliverable.len(),
            ),
        }
    }

    /// The makespan, or `None` when the simulation stalled.
    pub fn try_makespan(&self) -> Option<f64> {
        match self {
            SimOutcome::Completed { makespan_us, .. } => Some(*makespan_us),
            SimOutcome::Stalled(_) => None,
        }
    }

    /// Whether the simulation stalled under a crash plan.
    pub fn is_stalled(&self) -> bool {
        matches!(self, SimOutcome::Stalled(_))
    }

    /// The stall diagnosis, when the simulation stalled.
    pub fn stall(&self) -> Option<&StallReport> {
        match self {
            SimOutcome::Completed { .. } => None,
            SimOutcome::Stalled(stall) => Some(stall),
        }
    }

    /// Unwraps the full report.
    ///
    /// # Panics
    /// Panics when the request was built with [`SimRequest::time_only`] — a
    /// time-only run never constructs a report — or when the simulation
    /// stalled (see [`SimOutcome::makespan_us`]).
    pub fn into_report(self) -> SimReport {
        match self {
            SimOutcome::Completed { report, .. } => {
                report.expect("a time_only() SimRequest produces no SimReport")
            }
            SimOutcome::Stalled(stall) => panic!(
                "simulation stalled at {:.3} us with {} of {} writes completed: no report",
                stall.time_us, stall.completed_writes, stall.total_writes,
            ),
        }
    }
}

/// Builds the [`StallReport`] for a quiescent-but-incomplete run: sorts the
/// refused sends and asks the schedule validator which surviving ranks the
/// stall actually reaches (the wedge cascade over the remaining sends).
fn stall_report(
    schedule: &CompiledSchedule,
    plan: &FaultPlan,
    time_us: f64,
    completed_writes: usize,
    total_writes: usize,
    mut dropped_sends: Vec<u32>,
) -> Box<StallReport> {
    dropped_sends.sort_unstable();
    let p = schedule.num_ranks;
    let dead_ranks: Vec<usize> = plan.crashed_ranks().filter(|&r| r < p).collect();
    let diagnosis =
        ScheduleValidator::new(schedule).completion_with_dropped(&dropped_sends, &dead_ranks);
    Box::new(StallReport {
        time_us,
        completed_writes,
        total_writes,
        dropped_sends,
        dead_ranks,
        diagnosis,
    })
}

impl<'a> SimRequest<'a> {
    /// A request over the five mandatory inputs: optimized path, no faults,
    /// no probe, fresh scratch, full report.
    pub fn new(
        model: &'a CostModel,
        schedule: &'a CompiledSchedule,
        n: u64,
        topo: &'a dyn Topology,
        alloc: &'a Allocation,
    ) -> SimRequest<'a> {
        SimRequest {
            model,
            schedule,
            n,
            topo,
            alloc,
            faults: None,
            probe: None,
            arena: None,
            time_only: false,
            reference: false,
        }
    }

    /// Injects a [`FaultPlan`]. A zero plan is bit-identical to no plan.
    pub fn faults(mut self, plan: &'a FaultPlan) -> SimRequest<'a> {
        self.faults = Some(plan);
        self
    }

    /// Installs a [`RateProbe`] invoked after every fair-share
    /// recomputation.
    pub fn probe(mut self, probe: RateProbe<'a>) -> SimRequest<'a> {
        self.probe = Some(probe);
        self
    }

    /// Runs over caller-owned scratch: repeated requests against one arena
    /// reuse its buffers and cached static resolution. Ignored by
    /// [`SimRequest::reference`] runs, which allocate per call by design.
    pub fn arena(mut self, arena: &'a mut SimArena) -> SimRequest<'a> {
        self.arena = Some(arena);
        self
    }

    /// Skips the [`SimReport`]: the outcome carries only the makespan.
    /// Combined with [`SimRequest::arena`] this is the fully
    /// allocation-free hot path (pinned by `tests/arena_alloc.rs`).
    pub fn time_only(mut self) -> SimRequest<'a> {
        self.time_only = true;
        self
    }

    /// Runs the reference implementation (the executable specification the
    /// optimized path is pinned bit-identical against) instead of the fast
    /// path.
    pub fn reference(mut self) -> SimRequest<'a> {
        self.reference = true;
        self
    }

    /// Runs the request. See the module docs for the simulation semantics.
    ///
    /// A crash plan that prevents completion yields
    /// [`SimOutcome::Stalled`] instead of hanging.
    ///
    /// # Panics
    /// Panics if the allocation has fewer ranks than the schedule, or if
    /// the simulation deadlocks without any send having been dropped (a
    /// cyclic dependency graph — impossible for schedules built by
    /// `bine-sched`).
    pub fn run(self) -> SimOutcome {
        let SimRequest {
            model,
            schedule,
            n,
            topo,
            alloc,
            faults,
            probe,
            arena,
            time_only,
            reference,
        } = self;
        if reference {
            return match simulate_reference_impl(model, schedule, n, topo, alloc, faults, probe) {
                Ok(report) => SimOutcome::Completed {
                    makespan_us: report.makespan_us,
                    report: (!time_only).then_some(report),
                },
                Err(stall) => SimOutcome::Stalled(stall),
            };
        }
        let mut fresh;
        let arena = match arena {
            Some(arena) => arena,
            None => {
                fresh = SimArena::new();
                &mut fresh
            }
        };
        match run_optimized(arena, model, schedule, n, topo, alloc, faults, probe) {
            Ok(makespan_us) => SimOutcome::Completed {
                makespan_us,
                report: (!time_only).then(|| report_from(&arena.scratch, makespan_us)),
            },
            Err(stall) => SimOutcome::Stalled(stall),
        }
    }
}

/// Simulates `schedule` with `n`-byte vectors on `topo` under `alloc` with
/// the cost parameters of `model`. See the module docs for the semantics.
///
/// This is the optimized fast path, pinned bit-identical to
/// [`simulate_reference`]; it spins up a fresh [`SimArena`] per call —
/// sweeps should hold their own arena via [`SimRequest::arena`] instead.
///
/// # Panics
/// Panics if the allocation has fewer ranks than the schedule, or if the
/// simulation deadlocks (which would indicate a schedule whose dependency
/// graph is cyclic — impossible for schedules built by `bine-sched`).
#[deprecated(note = "use `SimRequest::new(..).run()`")]
pub fn simulate(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> SimReport {
    SimRequest::new(model, schedule, n, topo, alloc)
        .run()
        .into_report()
}

/// [`simulate`] under a [`FaultPlan`] (see [`crate::fault`]): the optimized
/// path with degraded link capacities, latency spikes and straggler
/// slowdowns, pinned bit-identical to [`simulate_reference_faulted`]. A zero
/// plan is bit-identical to [`simulate`].
#[deprecated(note = "use `SimRequest::new(..).faults(plan).run()`")]
pub fn simulate_faulted(
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> SimReport {
    SimRequest::new(model, schedule, n, topo, alloc)
        .faults(plan)
        .run()
        .into_report()
}

/// [`simulate`] with caller-owned scratch: repeated calls reuse `arena`'s
/// buffers and cached static resolution, allocating only the returned
/// report's per-rank vector.
#[deprecated(note = "use `SimRequest::new(..).arena(arena).run()`")]
pub fn simulate_in(
    arena: &mut SimArena,
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> SimReport {
    SimRequest::new(model, schedule, n, topo, alloc)
        .arena(arena)
        .run()
        .into_report()
}

/// [`simulate_in`] under a [`FaultPlan`]: caller-owned scratch plus fault
/// injection. Switching plans (like switching topologies) rebuilds the
/// cached static resolution for the schedule; reusing the same plan is
/// allocation-free after warmup.
#[allow(clippy::too_many_arguments)]
#[deprecated(note = "use `SimRequest::new(..).arena(arena).faults(plan).run()`")]
pub fn simulate_in_faulted(
    arena: &mut SimArena,
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> SimReport {
    SimRequest::new(model, schedule, n, topo, alloc)
        .arena(arena)
        .faults(plan)
        .run()
        .into_report()
}

/// The simulated makespan in microseconds, with caller-owned scratch.
/// Allocation-free after warmup — the hot entry point for tuning and
/// benchmark sweeps.
#[deprecated(note = "use `SimRequest::new(..).arena(arena).time_only().run().makespan_us`")]
pub fn sim_time_in(
    arena: &mut SimArena,
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> f64 {
    SimRequest::new(model, schedule, n, topo, alloc)
        .arena(arena)
        .time_only()
        .run()
        .makespan_us()
}

/// [`sim_time_in`] under a [`FaultPlan`]: the allocation-free hot entry
/// point with fault injection, for sweeps over faulted scenarios.
#[allow(clippy::too_many_arguments)]
#[deprecated(
    note = "use `SimRequest::new(..).arena(arena).faults(plan).time_only().run().makespan_us`"
)]
pub fn sim_time_in_faulted(
    arena: &mut SimArena,
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: &FaultPlan,
) -> f64 {
    SimRequest::new(model, schedule, n, topo, alloc)
        .arena(arena)
        .faults(plan)
        .time_only()
        .run()
        .makespan_us()
}

/// [`simulate_in`] with a [`RateProbe`] invoked after every fair-share
/// recomputation — the verification hook the property tests use to pin the
/// incremental rates to the reference at every event — under an optional
/// [`FaultPlan`].
#[allow(clippy::too_many_arguments)]
#[deprecated(note = "use `SimRequest::new(..).arena(arena).probe(probe).run()`")]
pub fn simulate_probed(
    arena: &mut SimArena,
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: Option<&FaultPlan>,
    probe: RateProbe<'_>,
) -> SimReport {
    let mut req = SimRequest::new(model, schedule, n, topo, alloc)
        .arena(arena)
        .probe(probe);
    if let Some(plan) = plan {
        req = req.faults(plan);
    }
    req.run().into_report()
}

fn report_from(sc: &Scratch, makespan_us: f64) -> SimReport {
    SimReport {
        makespan_us,
        rank_finish_us: sc.rank_finish.clone(),
        network_messages: sc.network_messages,
        peak_active_flows: sc.peak,
    }
}

/// Starts every eligible send of the `candidates` ranks at time `t`: local
/// moves and same-node sends become timer events in `pending` (drained into
/// the heap by the caller, preserving FIFO order), network sends become
/// flows. Returns whether a flow was added (rates must then be recomputed).
///
/// `candidates` must be in ascending rank order — the reference scans ranks
/// `0..p`, and the order flows are pushed in is the fair-share tie-break
/// order. Eligibility only ever *arises* from a port release or a read
/// dependency completing, and both coincide with an event, so the caller
/// can visit just the ranks an event touched instead of rescanning all `p`.
#[allow(clippy::too_many_arguments)]
fn start_eligible(
    st: &CachedStatic,
    t: f64,
    candidates: &[u32],
    next_idx: &mut [u32],
    port_free: &mut [f64],
    read_deps: &[u32],
    active: &mut Vec<Flow>,
    pending: &mut Vec<(f64, Ev)>,
    dropped: &mut Vec<u32>,
) -> bool {
    let mut flows_changed = false;
    for &r in candidates {
        let r = r as usize;
        let queue = st.rank_sends(r);
        while (next_idx[r] as usize) < queue.len() {
            let send = queue[next_idx[r] as usize];
            if read_deps[send as usize] != 0 || port_free[r] > t {
                break;
            }
            next_idx[r] += 1;
            if t >= st.kill_time[send as usize] {
                // Fail-stop: the send never starts — no port occupancy, no
                // event — mirroring the reference drop.
                dropped.push(send);
                continue;
            }
            if st.local[send as usize] {
                let done = t + st.bytes[send as usize] / st.copy_rates[r];
                port_free[r] = done;
                pending.push((done, Ev::WriteDone(send)));
            } else if st.links(send).is_empty() {
                // Distinct ranks on the same node: only the software
                // overhead applies, matching the synchronous model.
                let done = t + st.latency_us[send as usize];
                port_free[r] = done;
                pending.push((done, Ev::Delivered(send)));
            } else {
                // The port stays busy until the payload is serialised
                // (flow completion sets it).
                port_free[r] = f64::INFINITY;
                active.push(Flow {
                    send,
                    remaining_bytes: st.bytes[send as usize],
                    rate: 0.0,
                });
                flows_changed = true;
            }
        }
    }
    flows_changed
}

/// Refill scratch borrowed by [`recompute_rates`] (one bundle so the call
/// sites stay readable).
struct RefillScratch<'a> {
    link_open: &'a mut [u32],
    link_epoch: &'a mut [u32],
    refill_heap: &'a mut BinaryHeap<RefillEntry>,
    refill_mark: &'a mut [bool],
    refill_touched: &'a mut Vec<u32>,
}

/// Incremental max–min fair share. `finished_sends` are the flows removed
/// this event, `new_start` is the active index of the first flow added this
/// event. Only the links they touch — and, transitively, the flows sharing
/// those links (the affected components) — are recomputed, by the exact
/// progressive-filling float operations of the reference restricted to those
/// components; every other flow keeps its previous (identical) rate.
///
/// Within the affected component the progressive filling itself is
/// near-linear instead of rounds × links: every link's fair share is
/// computed by the reference's exact expression, but only when its inputs
/// (`assigned`, open-flow count) change, and the per-round bottleneck is
/// popped from a lazily-invalidated min-heap ordered by `(fair, link id)` —
/// the identical winner the reference's ascending-id strict-`<` scan picks,
/// since stale entries are skipped and ties break on the lower link id.
#[allow(clippy::too_many_arguments)]
fn recompute_rates(
    st: &CachedStatic,
    active: &mut [Flow],
    finished_sends: &[u32],
    new_start: usize,
    link_flows: &mut [Vec<u32>],
    flow_of_send: &mut [u32],
    link_dirty: &mut [bool],
    flow_dirty: &mut [bool],
    flow_fixed: &mut [bool],
    assigned: &mut [f64],
    comp_links: &mut Vec<u32>,
    comp_flows: &mut Vec<u32>,
    refill: RefillScratch<'_>,
) {
    comp_links.clear();
    comp_flows.clear();

    // Remove finished flows from the adjacency; their links are dirty.
    for &s in finished_sends {
        for &l in st.links(s) {
            let list = &mut link_flows[l as usize];
            let pos = list
                .iter()
                .position(|&x| x == s)
                .expect("finished flow must be on its links");
            list.remove(pos);
            if !link_dirty[l as usize] {
                link_dirty[l as usize] = true;
                comp_links.push(l);
            }
        }
    }
    // Insert new flows (ascending active index keeps per-link lists in the
    // reference's construction order); they and their links are dirty.
    for (fi, flow) in active.iter().enumerate().skip(new_start) {
        let s = flow.send;
        flow_of_send[s as usize] = fi as u32;
        flow_dirty[fi] = true;
        comp_flows.push(fi as u32);
        for &l in st.links(s) {
            link_flows[l as usize].push(s);
            if !link_dirty[l as usize] {
                link_dirty[l as usize] = true;
                comp_links.push(l);
            }
        }
    }

    // Breadth-first closure: a dirty link dirties every flow on it; a dirty
    // flow dirties every link it traverses.
    let mut cursor = 0;
    while cursor < comp_links.len() {
        let l = comp_links[cursor];
        cursor += 1;
        for &s in &link_flows[l as usize] {
            let fi = flow_of_send[s as usize] as usize;
            if flow_dirty[fi] {
                continue;
            }
            flow_dirty[fi] = true;
            comp_flows.push(fi as u32);
            for &l2 in st.links(s) {
                if !link_dirty[l2 as usize] {
                    link_dirty[l2 as usize] = true;
                    comp_links.push(l2);
                }
            }
        }
    }

    if !comp_flows.is_empty() {
        // Progressive filling restricted to the affected components. Every
        // flow on a dirty link is dirty (the closure above), so a dirty
        // link's open-flow count starts at its full list length.
        let RefillScratch {
            link_open,
            link_epoch,
            refill_heap,
            refill_mark,
            refill_touched,
        } = refill;
        refill_heap.clear();
        for &l in comp_links.iter() {
            let li = l as usize;
            assigned[li] = 0.0;
            link_epoch[li] = 0;
            let open = link_flows[li].len();
            link_open[li] = open as u32;
            if open > 0 {
                // The reference's fair-share expression, verbatim.
                let fair = (st.link_cap[li] - assigned[li]).max(0.0) / open as f64;
                refill_heap.push(RefillEntry {
                    fair,
                    link: l,
                    epoch: 0,
                });
            }
        }
        for &fi in comp_flows.iter() {
            flow_fixed[fi as usize] = false;
        }
        let mut unfixed = comp_flows.len();
        while unfixed > 0 {
            // Pop the bottleneck: the smallest (fair, link id) whose cached
            // fair share is current and which still has open flows.
            let (fair, l) = loop {
                let e = refill_heap
                    .pop()
                    .expect("every flow traverses at least one link");
                let li = e.link as usize;
                if link_epoch[li] == e.epoch && link_open[li] > 0 {
                    break (e.fair, e.link);
                }
            };
            // Numerical floor: keeps the loop terminating even when FP
            // cancellation leaves a link marginally oversubscribed.
            let fair = fair.max(st.link_cap[l as usize] * 1e-12);
            refill_touched.clear();
            for &s in &link_flows[l as usize] {
                let fi = flow_of_send[s as usize] as usize;
                if flow_fixed[fi] {
                    continue;
                }
                flow_fixed[fi] = true;
                unfixed -= 1;
                active[fi].rate = fair;
                for &l2 in st.links(s) {
                    let li = l2 as usize;
                    assigned[li] += fair;
                    link_open[li] -= 1;
                    if !refill_mark[li] {
                        refill_mark[li] = true;
                        refill_touched.push(l2);
                    }
                }
            }
            // Refresh the fair share of every link the round's fixes
            // touched — once, after all of them, exactly as the reference's
            // next-round scan would observe the state.
            for &l2 in refill_touched.iter() {
                let li = l2 as usize;
                refill_mark[li] = false;
                link_epoch[li] += 1;
                if link_open[li] > 0 {
                    let fair = (st.link_cap[li] - assigned[li]).max(0.0) / link_open[li] as f64;
                    refill_heap.push(RefillEntry {
                        fair,
                        link: l2,
                        epoch: link_epoch[li],
                    });
                }
            }
        }
    }

    // Reset the dirty marks for the next event.
    for &l in comp_links.iter() {
        link_dirty[l as usize] = false;
    }
    for &fi in comp_flows.iter() {
        flow_dirty[fi as usize] = false;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_optimized(
    arena: &mut SimArena,
    model: &CostModel,
    schedule: &CompiledSchedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
    plan: Option<&FaultPlan>,
    mut probe: Option<RateProbe<'_>>,
) -> Result<f64, Box<StallReport>> {
    let p = schedule.num_ranks;
    assert!(
        alloc.num_ranks() >= p,
        "allocation has {} ranks, schedule needs {p}",
        alloc.num_ranks()
    );
    let zero_plan = FaultPlan::none();
    let plan = plan.unwrap_or(&zero_plan);

    // ---- Cache lookup / rebuild of the static resolution. ------------------
    let key = schedule.identity();
    let rebuild = match arena.cache.get(&key) {
        Some(entry) => !entry.matches(model, topo, alloc, plan),
        None => true,
    };
    if rebuild {
        arena
            .cache
            .insert(key, build_static(model, schedule, topo, alloc, plan));
    }
    let entry = arena.cache.get_mut(&key).expect("just ensured");
    entry.ensure_bytes(schedule, n);
    let st: &CachedStatic = entry;

    let num_sends = st.num_sends;
    let num_links = st.link_cap.len();

    // ---- Per-run state reset (capacity retained across runs). --------------
    let Scratch {
        read_deps,
        write_preds,
        payload_ready,
        next_idx,
        port_free,
        compute_free,
        rank_finish,
        active,
        heap,
        finish_stack,
        pending,
        finished_sends,
        dropped,
        link_flows,
        flow_of_send,
        link_dirty,
        flow_dirty,
        flow_fixed,
        assigned,
        comp_links,
        comp_flows,
        link_open,
        link_epoch,
        refill_heap,
        refill_mark,
        refill_touched,
        completion,
        cand_ranks,
        cand_marked,
        probe_buf,
        peak,
        network_messages,
    } = &mut arena.scratch;
    read_deps.clear();
    read_deps.extend_from_slice(&st.read_deps_init);
    write_preds.clear();
    write_preds.extend_from_slice(&st.write_preds_init);
    payload_ready.clear();
    payload_ready.resize(num_sends, false);
    next_idx.clear();
    next_idx.resize(p, 0);
    port_free.clear();
    port_free.resize(p, 0.0);
    compute_free.clear();
    compute_free.resize(p, 0.0);
    rank_finish.clear();
    rank_finish.resize(p, 0.0);
    active.clear();
    heap.clear();
    finish_stack.clear();
    pending.clear();
    finished_sends.clear();
    dropped.clear();
    if link_flows.len() < num_links {
        link_flows.resize_with(num_links, Vec::new);
    }
    for list in link_flows.iter_mut() {
        list.clear();
    }
    flow_of_send.clear();
    flow_of_send.resize(num_sends, 0);
    link_dirty.clear();
    link_dirty.resize(num_links, false);
    flow_dirty.clear();
    flow_dirty.resize(p, false);
    flow_fixed.clear();
    flow_fixed.resize(p, false);
    assigned.clear();
    assigned.resize(num_links, 0.0);
    comp_links.clear();
    comp_flows.clear();
    link_open.clear();
    link_open.resize(num_links, 0);
    link_epoch.clear();
    link_epoch.resize(num_links, 0);
    refill_heap.clear();
    refill_mark.clear();
    refill_mark.resize(num_links, false);
    refill_touched.clear();
    completion.clear();
    cand_ranks.clear();
    cand_marked.clear();
    cand_marked.resize(p, false);
    *peak = 0;
    *network_messages = st.network_messages;

    let mut t = 0.0f64;
    let mut completed = 0usize;

    // ---- Initial ready-send seeding (bulk heap insert). --------------------
    cand_ranks.extend(0..p as u32);
    let mut flows_changed = start_eligible(
        st, t, cand_ranks, next_idx, port_free, read_deps, active, pending, dropped,
    );
    cand_ranks.clear();
    heap.push_many(pending.drain(..));
    if flows_changed {
        recompute_rates(
            st,
            active,
            finished_sends,
            0,
            link_flows,
            flow_of_send,
            link_dirty,
            flow_dirty,
            flow_fixed,
            assigned,
            comp_links,
            comp_flows,
            RefillScratch {
                link_open,
                link_epoch,
                refill_heap,
                refill_mark,
                refill_touched,
            },
        );
        if let Some(probe) = probe.as_mut() {
            probe_buf.clear();
            probe_buf.extend(active.iter().map(|f| (f.send, f.rate)));
            probe(t, probe_buf);
        }
    }
    *peak = (*peak).max(active.len());

    // ---- Event loop (identical float semantics to the reference). ----------
    while completed + dropped.len() < num_sends {
        // Next event: earliest flow completion or queued timer. The
        // per-flow completion times are stashed so the compaction pass below
        // reuses the same bits instead of paying the division again.
        completion.clear();
        let mut t_flow = f64::INFINITY;
        for f in active.iter() {
            let c = t + f.remaining_bytes / f.rate;
            completion.push(c);
            t_flow = t_flow.min(c);
        }
        let t_next = t_flow.min(heap.peek_time().unwrap_or(f64::INFINITY));
        if !t_next.is_finite() {
            // Quiescence with writes outstanding: every remaining send
            // waits (transitively) on a dropped write. Diagnosed below.
            break;
        }
        let tol = 1e-9 * (1.0 + t_next.abs());
        let dt = t_next - t;

        // Flows whose predicted completion falls on t_next finish; the rest
        // advance by dt at their current rate. The in-place compaction is
        // stable, so the surviving flows' relative order — and with it the
        // fair-share tie-break order — matches the reference's rebuild.
        finished_sends.clear();
        flows_changed = false;
        let mut w = 0usize;
        for r in 0..active.len() {
            let mut f = active[r];
            if completion[r] <= t_next + tol {
                let src = st.src[f.send as usize] as usize;
                port_free[src] = t_next;
                rank_finish[src] = rank_finish[src].max(t_next);
                heap.push(
                    t_next + st.latency_us[f.send as usize],
                    Ev::Delivered(f.send),
                );
                finished_sends.push(f.send);
                flows_changed = true;
                if !cand_marked[src] {
                    cand_marked[src] = true;
                    cand_ranks.push(src as u32);
                }
            } else {
                f.remaining_bytes -= f.rate * dt;
                active[w] = f;
                flow_of_send[f.send as usize] = w as u32;
                w += 1;
            }
        }
        active.truncate(w);
        t = t_next;

        // Drain every timer event at (or numerically on) t; see the
        // reference implementation for why the clock follows the drained
        // event times.
        while let Some(et) = heap.peek_time() {
            if et > t + tol {
                break;
            }
            let (et, ev) = heap.pop().expect("peeked");
            t = t.max(et);
            match ev {
                Ev::Delivered(send) => {
                    // The sender's port was released no later than this
                    // event's timestamp (same-node sends stamp it at
                    // delivery time), so the rank is an eligibility
                    // candidate.
                    let src = st.src[send as usize] as usize;
                    if !cand_marked[src] {
                        cand_marked[src] = true;
                        cand_ranks.push(src as u32);
                    }
                    let d = st.dst[send as usize] as usize;
                    rank_finish[d] = rank_finish[d].max(t);
                    if st.reduce[send as usize] {
                        let start = compute_free[d].max(t);
                        let done = start + st.bytes[send as usize] / st.reduce_rates[d];
                        compute_free[d] = done;
                        heap.push(done, Ev::WriteDone(send));
                    } else {
                        heap.push(t, Ev::WriteDone(send));
                    }
                }
                Ev::WriteDone(send) => {
                    // Local moves release their sender's port at this
                    // event's timestamp.
                    let src = st.src[send as usize] as usize;
                    if !cand_marked[src] {
                        cand_marked[src] = true;
                        cand_ranks.push(src as u32);
                    }
                    // The payload is combined; the write becomes final once
                    // every chained predecessor write to its blocks is, and
                    // finalising it may cascade through deferred successors.
                    payload_ready[send as usize] = true;
                    if write_preds[send as usize] == 0 {
                        finish_stack.push(send);
                    }
                    while let Some(wr) = finish_stack.pop() {
                        let d = st.dst[wr as usize] as usize;
                        rank_finish[d] = rank_finish[d].max(t);
                        completed += 1;
                        for &dep in st.read_dependents(wr) {
                            read_deps[dep as usize] -= 1;
                            if read_deps[dep as usize] == 0 {
                                // The dependent may now be its rank's
                                // startable queue head.
                                let dep_src = st.src[dep as usize] as usize;
                                if !cand_marked[dep_src] {
                                    cand_marked[dep_src] = true;
                                    cand_ranks.push(dep_src as u32);
                                }
                            }
                        }
                        for &dep in st.write_dependents(wr) {
                            write_preds[dep as usize] -= 1;
                            if write_preds[dep as usize] == 0 && payload_ready[dep as usize] {
                                finish_stack.push(dep);
                            }
                        }
                    }
                }
            }
        }

        let new_start = active.len();
        // Candidate ranks must start in ascending rank order — the order
        // the reference's full 0..p scan pushes flows in.
        cand_ranks.sort_unstable();
        if start_eligible(
            st, t, cand_ranks, next_idx, port_free, read_deps, active, pending, dropped,
        ) {
            flows_changed = true;
        }
        for &r in cand_ranks.iter() {
            cand_marked[r as usize] = false;
        }
        cand_ranks.clear();
        for (et, ev) in pending.drain(..) {
            heap.push(et, ev);
        }
        if flows_changed {
            recompute_rates(
                st,
                active,
                finished_sends,
                new_start,
                link_flows,
                flow_of_send,
                link_dirty,
                flow_dirty,
                flow_fixed,
                assigned,
                comp_links,
                comp_flows,
                RefillScratch {
                    link_open,
                    link_epoch,
                    refill_heap,
                    refill_mark,
                    refill_touched,
                },
            );
            if let Some(probe) = probe.as_mut() {
                probe_buf.clear();
                probe_buf.extend(active.iter().map(|f| (f.send, f.rate)));
                probe(t, probe_buf);
            }
        }
        *peak = (*peak).max(active.len());
    }

    if !dropped.is_empty() {
        return Err(stall_report(
            schedule,
            plan,
            t,
            completed,
            num_sends,
            std::mem::take(dropped),
        ));
    }
    assert!(
        completed == num_sends,
        "simulation deadlock: {completed} of {num_sends} writes completed"
    );
    Ok(rank_finish.iter().copied().fold(0.0, f64::max))
}

/// Convenience wrapper: segments `schedule` into `chunks` pipeline chunks
/// (1 = unsegmented), compiles it and simulates it, returning the full
/// report.
#[deprecated(note = "compile the schedule and use `SimRequest::new(..).run()`")]
pub fn simulate_schedule(
    model: &CostModel,
    schedule: &Schedule,
    chunks: usize,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> SimReport {
    let compiled = schedule.segmented(chunks).compile();
    SimRequest::new(model, &compiled, n, topo, alloc)
        .run()
        .into_report()
}

/// Shorthand returning only the simulated makespan in microseconds.
#[deprecated(note = "compile the schedule and use `SimRequest::new(..).run().makespan_us`")]
pub fn sim_time_us(
    model: &CostModel,
    schedule: &Schedule,
    chunks: usize,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> f64 {
    let compiled = schedule.segmented(chunks).compile();
    SimRequest::new(model, &compiled, n, topo, alloc)
        .run()
        .makespan_us()
}

#[cfg(test)]
// The deprecated wrappers stay *exercised* here on purpose: these tests
// pin the simulation semantics through the legacy names while
// `tests/proptests.rs` pins every wrapper bit-identical to the
// `SimRequest` builder, so both surfaces keep coverage until the wrappers
// are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::topology::{FatTree, IdealFullMesh, Torus};
    use bine_sched::collectives::{allreduce, broadcast, AllreduceAlg, BroadcastAlg};

    #[test]
    fn congestion_free_single_segment_matches_the_synchronous_model() {
        let p = 16;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        for (sched, n) in [
            (allreduce(p, AllreduceAlg::RecursiveDoubling), 1u64 << 20),
            (allreduce(p, AllreduceAlg::BineLarge), 1 << 20),
            (
                broadcast(p, 0, BroadcastAlg::BinomialDistanceDoubling),
                4096,
            ),
        ] {
            let sync = model.time_us(&sched, n, &topo, &alloc);
            let des = sim_time_us(&model, &sched, 1, n, &topo, &alloc);
            assert!(
                (des - sync).abs() <= 1e-9 * sync,
                "{}: DES {des} vs sync {sync}",
                sched.algorithm
            );
        }
    }

    #[test]
    fn pipelining_beats_the_barrier_model_under_multi_hop_forwarding() {
        // A segmented bine-large allreduce on an oversubscribed fat tree:
        // chunks let a rank forward chunk c while chunk c + 1 still arrives,
        // so the simulated pipelined time must beat the unsegmented one for
        // bandwidth-dominated vectors.
        let p = 32;
        let topo = FatTree::new(32, 4, 1);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        let n = 64 << 20;
        let flat = sim_time_us(&model, &sched, 1, n, &topo, &alloc);
        let piped = sim_time_us(&model, &sched, 8, n, &topo, &alloc);
        assert!(
            piped < flat,
            "8-chunk pipeline {piped} should beat unsegmented {flat}"
        );
    }

    #[test]
    fn des_is_never_pessimistic_versus_the_barrier_on_an_ideal_network() {
        // Removing barriers can only help when no congestion exists.
        let p = 32;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        for alg in AllreduceAlg::ALL {
            let sched = allreduce(p, alg);
            let sync = model.time_us(&sched, 1 << 16, &topo, &alloc);
            let des = sim_time_us(&model, &sched, 1, 1 << 16, &topo, &alloc);
            assert!(
                des <= sync * (1.0 + 1e-9),
                "{}: DES {des} > sync {sync}",
                sched.algorithm
            );
        }
    }

    #[test]
    fn report_counts_messages_and_flows() {
        let p = 8;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let sched = allreduce(p, AllreduceAlg::RecursiveDoubling);
        let report = simulate_schedule(&model, &sched, 1, 1024, &topo, &alloc);
        // 3 steps of 8 simultaneous exchanges.
        assert_eq!(report.network_messages, 24);
        assert_eq!(report.peak_active_flows, 8);
        assert_eq!(report.rank_finish_us.len(), p);
        assert!(report.makespan_us > 0.0);
    }

    #[test]
    fn optimized_report_is_bit_identical_to_the_reference() {
        let p = 16;
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let sched = allreduce(p, AllreduceAlg::BineLarge).segmented(4);
        let compiled = sched.compile();
        for topo in [
            Box::new(FatTree::new(p, 4, 1)) as Box<dyn Topology>,
            Box::new(Torus::new(vec![4, 4])),
            Box::new(IdealFullMesh::new(p)),
        ] {
            let reference = simulate_reference(&model, &compiled, 1 << 20, topo.as_ref(), &alloc);
            let fast = simulate(&model, &compiled, 1 << 20, topo.as_ref(), &alloc);
            assert_eq!(reference.makespan_us.to_bits(), fast.makespan_us.to_bits());
            assert_eq!(reference.network_messages, fast.network_messages);
            assert_eq!(reference.peak_active_flows, fast.peak_active_flows);
            for (a, b) in reference.rank_finish_us.iter().zip(&fast.rank_finish_us) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn faults_slow_the_congestion_free_simulation_deterministically() {
        // On an ideal full mesh no flows ever share a link, so fault effects
        // are monotone: halving every link's bandwidth doubles each flow's
        // serialisation, and a straggling rank only delays its own chain.
        let p = 16;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = allreduce(p, AllreduceAlg::RecursiveDoubling).compile();
        let n = 1u64 << 20;
        let healthy = simulate(&model, &compiled, n, &topo, &alloc);

        let mut degraded_plan = crate::fault::FaultPlan::none();
        for l in 0..topo.num_links() {
            degraded_plan = degraded_plan.degrade_link(l, 0.5);
        }
        let degraded = simulate_faulted(&model, &compiled, n, &topo, &alloc, &degraded_plan);
        assert!(
            degraded.makespan_us > healthy.makespan_us,
            "halved links: {} should exceed healthy {}",
            degraded.makespan_us,
            healthy.makespan_us
        );
        let again = simulate_faulted(&model, &compiled, n, &topo, &alloc, &degraded_plan);
        assert_eq!(degraded.makespan_us.to_bits(), again.makespan_us.to_bits());

        let straggler_plan = crate::fault::FaultPlan::none().straggler(3, 4.0);
        let straggled = simulate_faulted(&model, &compiled, n, &topo, &alloc, &straggler_plan);
        assert!(
            straggled.makespan_us > healthy.makespan_us,
            "straggler: {} should exceed healthy {}",
            straggled.makespan_us,
            healthy.makespan_us
        );
    }

    #[test]
    fn switching_fault_plans_revalidates_the_cached_statics() {
        // One arena alternating between plans (including back to zero-fault)
        // must match fresh-arena runs bit for bit — the plan participates in
        // cache validation exactly like the topology does.
        let p = 16;
        let topo = FatTree::new(p, 4, 1);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = allreduce(p, AllreduceAlg::BineLarge).compile();
        let n = 1u64 << 20;
        let plan_a = crate::fault::FaultPlan::none()
            .degrade_link(0, 0.5)
            .spike_link(1, 5.0);
        let plan_b = crate::fault::FaultPlan::none().straggler(0, 2.0);
        let zero = crate::fault::FaultPlan::none();
        let mut arena = SimArena::new();
        for plan in [&plan_a, &plan_b, &zero, &plan_a, &zero] {
            let fresh = simulate_faulted(&model, &compiled, n, &topo, &alloc, plan);
            let reused = simulate_in_faulted(&mut arena, &model, &compiled, n, &topo, &alloc, plan);
            assert_eq!(fresh.makespan_us.to_bits(), reused.makespan_us.to_bits());
            assert_eq!(fresh, reused);
        }
        // And the plain entry point equals the zero plan on the same arena.
        let bare = simulate_in(&mut arena, &model, &compiled, n, &topo, &alloc);
        let zeroed = simulate_faulted(&model, &compiled, n, &topo, &alloc, &zero);
        assert_eq!(bare.makespan_us.to_bits(), zeroed.makespan_us.to_bits());
    }

    #[test]
    fn arena_reuse_across_schedules_and_topologies_stays_bit_identical() {
        // One arena simulating interleaved (schedule, topology) contexts —
        // including the same compiled schedule on two different topologies,
        // which must invalidate and rebuild the cached routes — matches
        // fresh-arena runs bit for bit.
        let p = 16;
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let a = allreduce(p, AllreduceAlg::BineLarge).compile();
        let b = broadcast(p, 3, BroadcastAlg::BineTree).compile();
        let fat = FatTree::new(p, 4, 1);
        let mesh = IdealFullMesh::new(p);
        let mut arena = SimArena::new();
        let runs: Vec<(&CompiledSchedule, &dyn Topology, u64)> = vec![
            (&a, &fat, 1 << 20),
            (&b, &fat, 4096),
            (&a, &mesh, 1 << 20),
            (&a, &fat, 1 << 16),
            (&a, &fat, 1 << 20),
        ];
        for (sched, topo, n) in runs {
            let fresh = simulate(&model, sched, n, topo, &alloc);
            let reused = simulate_in(&mut arena, &model, sched, n, topo, &alloc);
            assert_eq!(fresh.makespan_us.to_bits(), reused.makespan_us.to_bits());
            assert_eq!(fresh, reused);
        }
        assert!(arena.cached_schedules() >= 2);
        arena.clear();
        assert_eq!(arena.cached_schedules(), 0);
    }

    #[test]
    fn a_crashed_rank_stalls_the_tree_with_a_typed_diagnosis() {
        // Killing rank 1 at t = 0 beheads its whole subtree of the binomial
        // broadcast: the sim must go quiescent and return Stalled with the
        // validator's exact stall cut instead of hanging.
        let p = 16;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = broadcast(p, 0, BroadcastAlg::BinomialDistanceDoubling).compile();
        let plan = crate::fault::FaultPlan::none().crash_rank(1, 0.0);
        let outcome = SimRequest::new(&model, &compiled, 1 << 16, &topo, &alloc)
            .faults(&plan)
            .run();
        assert!(outcome.is_stalled());
        assert_eq!(outcome.try_makespan(), None);
        let stall = outcome.stall().expect("stalled");
        assert_eq!(stall.dead_ranks, vec![1]);
        assert!(stall.completed_writes < stall.total_writes);
        assert!(!stall.dropped_sends.is_empty());
        // The diagnosis partitions the survivors exactly: ranks outside the
        // dead subtree finish, the subtree stalls, and together with the
        // dead rank they cover 0..p.
        assert!(!stall.diagnosis.stalled.is_empty());
        assert_eq!(
            stall.diagnosis.completed.len() + stall.diagnosis.stalled.len() + 1,
            p
        );
        assert!(stall
            .diagnosis
            .undeliverable
            .iter()
            .any(|r| r.reason == bine_sched::StallReason::Crashed));
    }

    #[test]
    fn stalled_runs_are_bit_identical_between_optimized_and_reference() {
        // The whole stall report — quiescence time, drop set, diagnosis —
        // must match between the two implementations, on a congested
        // topology and for both a rank crash and a severed link.
        let p = 16;
        let topo = FatTree::new(p, 4, 1);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = allreduce(p, AllreduceAlg::BineLarge).segmented(4).compile();
        let plans = [
            crate::fault::FaultPlan::none().crash_rank(3, 40.0),
            crate::fault::FaultPlan::none().down_link(0, 25.0),
            crate::fault::FaultPlan::none()
                .crash_rank(0, 10.0)
                .degrade_link(1, 0.5),
        ];
        for plan in &plans {
            let fast = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
                .faults(plan)
                .run();
            let reference = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
                .faults(plan)
                .reference()
                .run();
            let fast = fast.stall().expect("crash plan must stall");
            let reference = reference.stall().expect("crash plan must stall");
            assert_eq!(fast.time_us.to_bits(), reference.time_us.to_bits());
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn a_crash_after_completion_reproduces_the_healthy_run_exactly() {
        // A crash scheduled later than every send's eligibility moment never
        // drops anything; the run must complete with the healthy bits (the
        // kill-time comparison adds no floating-point arithmetic).
        let p = 16;
        let topo = FatTree::new(p, 4, 1);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = allreduce(p, AllreduceAlg::BineLarge).compile();
        let healthy = simulate(&model, &compiled, 1 << 20, &topo, &alloc);
        let plan = crate::fault::FaultPlan::none().crash_rank(5, 1e12);
        let late = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
            .faults(&plan)
            .run();
        assert!(!late.is_stalled());
        let late = late.into_report();
        assert_eq!(healthy.makespan_us.to_bits(), late.makespan_us.to_bits());
        assert_eq!(healthy, late);
    }

    #[test]
    fn arenas_revalidate_across_crash_plans_and_back_to_healthy() {
        // One arena alternating crash plan → zero plan → crash plan must
        // match fresh-arena runs exactly, including identical stall reports.
        let p = 16;
        let topo = IdealFullMesh::new(p);
        let alloc = Allocation::block(p);
        let model = CostModel::default();
        let compiled = allreduce(p, AllreduceAlg::RecursiveDoubling).compile();
        let crash = crate::fault::FaultPlan::none().crash_rank(3, 0.0);
        let zero = crate::fault::FaultPlan::none();
        let mut arena = SimArena::new();
        for plan in [&crash, &zero, &crash, &zero] {
            let fresh = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
                .faults(plan)
                .run();
            let reused = SimRequest::new(&model, &compiled, 1 << 20, &topo, &alloc)
                .faults(plan)
                .arena(&mut arena)
                .run();
            match (fresh, reused) {
                (
                    SimOutcome::Completed {
                        makespan_us: a,
                        report: ra,
                    },
                    SimOutcome::Completed {
                        makespan_us: b,
                        report: rb,
                    },
                ) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                    assert_eq!(ra, rb);
                }
                (SimOutcome::Stalled(a), SimOutcome::Stalled(b)) => assert_eq!(a, b),
                (a, b) => panic!("outcome shapes diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn vector_size_sweeps_reuse_the_cached_routes() {
        let p = 16;
        let model = CostModel::default();
        let alloc = Allocation::block(p);
        let topo = FatTree::new(p, 4, 1);
        let compiled = allreduce(p, AllreduceAlg::BineLarge).compile();
        let mut arena = SimArena::new();
        for n in [1u64 << 10, 1 << 20, 1 << 24, 1 << 20] {
            let fresh = simulate(&model, &compiled, n, &topo, &alloc);
            let reused = sim_time_in(&mut arena, &model, &compiled, n, &topo, &alloc);
            assert_eq!(fresh.makespan_us.to_bits(), reused.to_bits());
        }
        assert_eq!(arena.cached_schedules(), 1);
    }
}
