//! Network topology models for the four system classes evaluated in the
//! paper: Dragonfly (LUMI), Dragonfly+ (Leonardo), oversubscribed fat tree
//! (MareNostrum 5) and torus (Fugaku).
//!
//! The models are deliberately coarse: what matters for reproducing the
//! paper's results is (a) which node belongs to which *group* — the unit of
//! full-bandwidth connectivity — and (b) which links are *global*
//! (inter-group, oversubscribed) versus *local*. Routes are minimal and
//! deterministic; adaptive routing would only spread load further, so the
//! reported global-traffic numbers are lower bounds exactly as in Sec. 5.1.1.

use bine_core::torus::TorusShape;

/// Identifier of a compute node.
pub type NodeId = usize;
/// Identifier of a network link.
pub type LinkId = usize;

/// Whether a link is inside a group (full bandwidth) or between groups
/// (oversubscribed / long).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Intra-group link (node injection, leaf switch, intra-group router).
    Local,
    /// Inter-group (global) link: longer, oversubscribed, more expensive.
    Global,
}

/// Static properties of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkInfo {
    /// Local or global.
    pub class: LinkClass,
    /// Bandwidth in GiB/s.
    pub bandwidth_gib_s: f64,
    /// Latency contribution in microseconds.
    pub latency_us: f64,
}

/// A network topology: node→group membership, minimal routes and link
/// properties.
pub trait Topology {
    /// Total number of compute nodes.
    fn num_nodes(&self) -> usize;
    /// Number of groups (fully connected / full-bandwidth islands).
    fn num_groups(&self) -> usize;
    /// Group of a node.
    fn group_of(&self, node: NodeId) -> usize;
    /// Number of links in the model.
    fn num_links(&self) -> usize;
    /// Properties of a link.
    fn link(&self, link: LinkId) -> LinkInfo;
    /// Links traversed by a message from `a` to `b` (empty when `a == b`).
    fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId>;
    /// Human-readable name (e.g. `"dragonfly(24x124)"`).
    fn name(&self) -> String;

    /// Whether two nodes are in different groups, i.e. whether a message
    /// between them is counted as *global traffic* (the paper's headline
    /// metric, counted once per message as in Fig. 1).
    fn crosses_groups(&self, a: NodeId, b: NodeId) -> bool {
        self.group_of(a) != self.group_of(b)
    }

    /// The highest bandwidth of any link (GiB/s): no flow can ever drain
    /// faster than this, which makes it the bandwidth term of the cheap
    /// candidate lower bound in [`crate::cost::LowerBounds`].
    fn max_link_bandwidth_gib_s(&self) -> f64 {
        (0..self.num_links())
            .map(|l| self.link(l).bandwidth_gib_s)
            .fold(0.0, f64::max)
    }

    /// The lowest latency of any link (microseconds): no network message can
    /// pay less than this on top of the software alpha, which makes it the
    /// latency term of the cheap candidate lower bound in
    /// [`crate::cost::LowerBounds`].
    fn min_link_latency_us(&self) -> f64 {
        (0..self.num_links())
            .map(|l| self.link(l).latency_us)
            .fold(f64::INFINITY, f64::min)
    }
}

// Default link parameters, loosely modelled on a 200 Gb/s-class fabric.
const LOCAL_BW: f64 = 23.0; // GiB/s
const GLOBAL_BW: f64 = 23.0; // GiB/s per global link (oversubscription comes from sharing)
const LOCAL_LAT: f64 = 0.5; // us
const GLOBAL_LAT: f64 = 1.5; // us
const TORUS_BW: f64 = 6.3; // GiB/s per TNI-class link
const TORUS_LAT: f64 = 0.9; // us

fn local_link() -> LinkInfo {
    LinkInfo {
        class: LinkClass::Local,
        bandwidth_gib_s: LOCAL_BW,
        latency_us: LOCAL_LAT,
    }
}

fn global_link() -> LinkInfo {
    LinkInfo {
        class: LinkClass::Global,
        bandwidth_gib_s: GLOBAL_BW,
        latency_us: GLOBAL_LAT,
    }
}

/// Deterministic hash used to spread flows over parallel global links.
fn spread(a: usize, b: usize, buckets: usize) -> usize {
    // Fibonacci hashing of the pair; deterministic and cheap.
    let x = (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    (x % buckets.max(1) as u64) as usize
}

// ---------------------------------------------------------------------------
// Oversubscribed fat tree (MareNostrum 5, and the Fig. 1 example)
// ---------------------------------------------------------------------------

/// A two-level oversubscribed fat tree: full-bandwidth sub-trees ("groups")
/// of `nodes_per_group` nodes, each connected to the core level by
/// `uplinks_per_group` links. A `nodes_per_group : uplinks_per_group` ratio
/// of 2:1 models MareNostrum 5; `2 : 1` with two-node groups models Fig. 1.
#[derive(Debug, Clone)]
pub struct FatTree {
    nodes_per_group: usize,
    uplinks_per_group: usize,
    num_nodes: usize,
    local: LinkInfo,
    global: LinkInfo,
}

impl FatTree {
    /// Creates an oversubscribed fat tree with the given shape and the
    /// default 200 Gb/s-class link parameters.
    pub fn new(num_nodes: usize, nodes_per_group: usize, uplinks_per_group: usize) -> Self {
        Self::with_links(
            num_nodes,
            nodes_per_group,
            uplinks_per_group,
            local_link(),
            global_link(),
        )
    }

    /// Creates an oversubscribed fat tree with explicit per-class link
    /// parameters — the knob that models *heterogeneous* fabrics (fast
    /// islands behind slow, long uplinks) the uniform presets cannot.
    pub fn with_links(
        num_nodes: usize,
        nodes_per_group: usize,
        uplinks_per_group: usize,
        local: LinkInfo,
        global: LinkInfo,
    ) -> Self {
        assert!(nodes_per_group >= 1 && uplinks_per_group >= 1 && num_nodes >= 1);
        Self {
            nodes_per_group,
            uplinks_per_group,
            num_nodes,
            local,
            global,
        }
    }

    /// The MareNostrum 5 ACC partition model: 160-node full-bandwidth
    /// sub-trees, 2:1 oversubscribed towards the core.
    pub fn marenostrum5(num_nodes: usize) -> Self {
        Self::new(num_nodes, 160, 8)
    }

    /// The 8-node, 2 nodes-per-switch, single-uplink example of Fig. 1.
    pub fn figure1() -> Self {
        Self::new(8, 2, 1)
    }

    /// A heterogeneous "accelerator island" fat tree: 16-node islands with
    /// NVLink-class intra-island bandwidth, joined by two heavily
    /// oversubscribed, long-haul uplinks per island. The 20:1 bandwidth
    /// gap and the ~80:1 latency gap between the tiers is the regime the
    /// fixed catalog cannot express and topology-aware synthesis exists
    /// for; `bine-bench` commits a tuned decision table for this fabric
    /// (`tuning/heterofat.json`).
    pub fn hetero_island(num_nodes: usize) -> Self {
        Self::with_links(
            num_nodes,
            16,
            2,
            LinkInfo {
                class: LinkClass::Local,
                bandwidth_gib_s: 100.0,
                latency_us: 0.3,
            },
            LinkInfo {
                class: LinkClass::Global,
                bandwidth_gib_s: 5.0,
                latency_us: 25.0,
            },
        )
    }

    fn injection(&self, node: NodeId) -> LinkId {
        node
    }

    fn uplink(&self, group: usize, idx: usize) -> LinkId {
        self.num_nodes + group * self.uplinks_per_group + idx
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
    fn num_groups(&self) -> usize {
        self.num_nodes.div_ceil(self.nodes_per_group)
    }
    fn group_of(&self, node: NodeId) -> usize {
        node / self.nodes_per_group
    }
    fn num_links(&self) -> usize {
        self.num_nodes + self.num_groups() * self.uplinks_per_group
    }
    fn link(&self, link: LinkId) -> LinkInfo {
        if link < self.num_nodes {
            self.local
        } else {
            self.global
        }
    }
    fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        if a == b {
            return Vec::new();
        }
        let (ga, gb) = (self.group_of(a), self.group_of(b));
        if ga == gb {
            vec![self.injection(a), self.injection(b)]
        } else {
            let up = self.uplink(ga, spread(a, b, self.uplinks_per_group));
            let down = self.uplink(gb, spread(b, a, self.uplinks_per_group));
            vec![self.injection(a), up, down, self.injection(b)]
        }
    }
    fn name(&self) -> String {
        format!(
            "fat-tree({} nodes, {}:{} oversubscribed)",
            self.num_nodes, self.nodes_per_group, self.uplinks_per_group
        )
    }
}

// ---------------------------------------------------------------------------
// Ideal full mesh (the congestion-free limit)
// ---------------------------------------------------------------------------

/// An idealised fully connected network: every ordered node pair owns a
/// dedicated full-bandwidth link with uniform latency.
///
/// Because the schedules are single-ported (each rank sends at most one
/// network message per step), no two messages of a step ever share a link
/// here, so both the synchronous cost model's congestion terms and the
/// discrete-event simulator's fair-share division vanish. This is the
/// *congestion-free limit* in which the simulator is property-tested to
/// reproduce the synchronous alpha–beta model exactly, and the closed-form
/// alpha–beta predictions hold.
#[derive(Debug, Clone)]
pub struct IdealFullMesh {
    num_nodes: usize,
    link: LinkInfo,
}

impl IdealFullMesh {
    /// Creates an ideal full mesh with the default local-link parameters.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_link(num_nodes, local_link())
    }

    /// Creates an ideal full mesh with explicit link parameters.
    pub fn with_link(num_nodes: usize, link: LinkInfo) -> Self {
        assert!(num_nodes >= 1);
        Self { num_nodes, link }
    }

    /// The uniform link parameters of this mesh.
    pub fn link_info(&self) -> LinkInfo {
        self.link
    }
}

impl Topology for IdealFullMesh {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }
    fn num_groups(&self) -> usize {
        // One full-bandwidth island: nothing ever counts as global traffic.
        1
    }
    fn group_of(&self, _node: NodeId) -> usize {
        0
    }
    fn num_links(&self) -> usize {
        self.num_nodes * self.num_nodes
    }
    fn link(&self, _link: LinkId) -> LinkInfo {
        self.link
    }
    fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        if a == b {
            return Vec::new();
        }
        vec![a * self.num_nodes + b]
    }
    fn name(&self) -> String {
        format!("ideal-full-mesh({})", self.num_nodes)
    }
}

// ---------------------------------------------------------------------------
// Dragonfly (LUMI) and Dragonfly+ (Leonardo)
// ---------------------------------------------------------------------------

/// Flavour of group-based low-diameter topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DragonflyFlavour {
    /// Classic Dragonfly (fully connected routers inside a group), e.g.
    /// LUMI's Slingshot network.
    Dragonfly,
    /// Dragonfly+ (groups are two-level fat trees), e.g. Leonardo.
    DragonflyPlus,
}

/// A Dragonfly or Dragonfly+ network: `num_groups` groups of
/// `nodes_per_group` nodes, with `global_links_per_pair` parallel global
/// links between every pair of groups.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    flavour: DragonflyFlavour,
    num_groups: usize,
    nodes_per_group: usize,
    global_links_per_pair: usize,
}

impl Dragonfly {
    /// Creates a Dragonfly-style network.
    pub fn new(
        flavour: DragonflyFlavour,
        num_groups: usize,
        nodes_per_group: usize,
        global_links_per_pair: usize,
    ) -> Self {
        assert!(num_groups >= 1 && nodes_per_group >= 1 && global_links_per_pair >= 1);
        Self {
            flavour,
            num_groups,
            nodes_per_group,
            global_links_per_pair,
        }
    }

    /// The LUMI-G model: 24-group Slingshot Dragonfly with 124 nodes per
    /// group (Sec. 5.1).
    pub fn lumi() -> Self {
        Self::new(DragonflyFlavour::Dragonfly, 24, 124, 4)
    }

    /// The Leonardo Booster model: 23-group Dragonfly+ with 180 nodes per
    /// group (Sec. 5.2).
    pub fn leonardo() -> Self {
        Self::new(DragonflyFlavour::DragonflyPlus, 23, 180, 2)
    }

    fn injection(&self, node: NodeId) -> LinkId {
        node
    }

    fn pair_index(&self, ga: usize, gb: usize) -> usize {
        // Index of the unordered group pair (ga, gb), ga != gb.
        let (lo, hi) = if ga < gb { (ga, gb) } else { (gb, ga) };
        lo * self.num_groups + hi
    }

    fn global(&self, ga: usize, gb: usize, idx: usize) -> LinkId {
        self.num_nodes() + self.pair_index(ga, gb) * self.global_links_per_pair + idx
    }
}

impl Topology for Dragonfly {
    fn num_nodes(&self) -> usize {
        self.num_groups * self.nodes_per_group
    }
    fn num_groups(&self) -> usize {
        self.num_groups
    }
    fn group_of(&self, node: NodeId) -> usize {
        node / self.nodes_per_group
    }
    fn num_links(&self) -> usize {
        self.num_nodes() + self.num_groups * self.num_groups * self.global_links_per_pair
    }
    fn link(&self, link: LinkId) -> LinkInfo {
        if link < self.num_nodes() {
            local_link()
        } else {
            global_link()
        }
    }
    fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        if a == b {
            return Vec::new();
        }
        let (ga, gb) = (self.group_of(a), self.group_of(b));
        if ga == gb {
            vec![self.injection(a), self.injection(b)]
        } else {
            let g = self.global(ga, gb, spread(a, b, self.global_links_per_pair));
            vec![self.injection(a), g, self.injection(b)]
        }
    }
    fn name(&self) -> String {
        let kind = match self.flavour {
            DragonflyFlavour::Dragonfly => "dragonfly",
            DragonflyFlavour::DragonflyPlus => "dragonfly+",
        };
        format!("{kind}({}x{})", self.num_groups, self.nodes_per_group)
    }
}

// ---------------------------------------------------------------------------
// Torus (Fugaku)
// ---------------------------------------------------------------------------

/// A k-ary n-dimensional torus with bidirectional nearest-neighbour links and
/// dimension-ordered minimal routing. All links share the same class; the
/// torus has no "groups", so every inter-node link is treated as global
/// traffic (Sec. 5.4: on a torus, all links can be considered
/// oversubscribed).
#[derive(Debug, Clone)]
pub struct Torus {
    shape: TorusShape,
}

impl Torus {
    /// Creates a torus with the given dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Self {
            shape: TorusShape::new(dims),
        }
    }

    /// The shape of the torus.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Link from `node` in `direction` (0 = positive, 1 = negative) along
    /// `dim`.
    fn link_id(&self, node: NodeId, dim: usize, direction: usize) -> LinkId {
        (node * self.shape.num_dims() + dim) * 2 + direction
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.shape.num_ranks()
    }
    fn num_groups(&self) -> usize {
        // Every node is its own group: all inter-node traffic uses links that
        // the paper treats as oversubscribed.
        self.shape.num_ranks()
    }
    fn group_of(&self, node: NodeId) -> usize {
        node
    }
    fn num_links(&self) -> usize {
        self.shape.num_ranks() * self.shape.num_dims() * 2
    }
    fn link(&self, _link: LinkId) -> LinkInfo {
        LinkInfo {
            class: LinkClass::Global,
            bandwidth_gib_s: TORUS_BW,
            latency_us: TORUS_LAT,
        }
    }
    fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        if a == b {
            return Vec::new();
        }
        // Dimension-ordered routing along the shorter way around each ring.
        let mut links = Vec::new();
        let mut cur = self.shape.coords(a);
        let target = self.shape.coords(b);
        let dims = self.shape.dims().to_vec();
        for d in 0..dims.len() {
            let k = dims[d];
            while cur[d] != target[d] {
                let forward = (target[d] + k - cur[d]) % k;
                let backward = (cur[d] + k - target[d]) % k;
                let node = self.shape.rank(&cur);
                if forward <= backward {
                    links.push(self.link_id(node, d, 0));
                    cur[d] = (cur[d] + 1) % k;
                } else {
                    links.push(self.link_id(node, d, 1));
                    cur[d] = (cur[d] + k - 1) % k;
                }
            }
        }
        links
    }
    fn name(&self) -> String {
        let dims: Vec<String> = self.shape.dims().iter().map(|d| d.to_string()).collect();
        format!("torus({})", dims.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_figure1_groups() {
        let ft = FatTree::figure1();
        assert_eq!(ft.num_nodes(), 8);
        assert_eq!(ft.num_groups(), 4);
        assert_eq!(ft.group_of(0), 0);
        assert_eq!(ft.group_of(3), 1);
        assert!(!ft.crosses_groups(0, 1));
        assert!(ft.crosses_groups(0, 2));
        // Intra-group route touches only local links.
        assert!(ft
            .route(0, 1)
            .iter()
            .all(|&l| ft.link(l).class == LinkClass::Local));
        // Inter-group route touches exactly two global links (up + down).
        let globals = ft
            .route(0, 4)
            .iter()
            .filter(|&&l| ft.link(l).class == LinkClass::Global)
            .count();
        assert_eq!(globals, 2);
    }

    #[test]
    fn dragonfly_routes_use_one_global_hop() {
        let df = Dragonfly::lumi();
        assert_eq!(df.num_nodes(), 24 * 124);
        assert_eq!(df.num_groups(), 24);
        let a = 0;
        let b = 3 * 124 + 17;
        let route = df.route(a, b);
        let globals = route
            .iter()
            .filter(|&&l| df.link(l).class == LinkClass::Global)
            .count();
        assert_eq!(globals, 1);
        assert!(df.crosses_groups(a, b));
        assert!(!df.crosses_groups(5, 100));
    }

    #[test]
    fn routes_are_symmetric_in_link_count() {
        let topo = Dragonfly::leonardo();
        for (a, b) in [(0, 1), (0, 500), (1000, 3000), (42, 42)] {
            assert_eq!(topo.route(a, b).len(), topo.route(b, a).len());
        }
    }

    #[test]
    fn torus_route_length_equals_hop_distance() {
        let torus = Torus::new(vec![4, 4, 4]);
        for a in [0, 5, 17, 63] {
            for b in [0, 9, 33, 62] {
                assert_eq!(torus.route(a, b).len(), torus.shape().hop_distance(a, b));
            }
        }
    }

    #[test]
    fn torus_links_are_valid_ids() {
        let torus = Torus::new(vec![2, 8]);
        for a in 0..torus.num_nodes() {
            for b in 0..torus.num_nodes() {
                for l in torus.route(a, b) {
                    assert!(l < torus.num_links());
                }
            }
        }
    }

    #[test]
    fn link_ids_are_in_range_for_group_topologies() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(FatTree::marenostrum5(640)),
            Box::new(Dragonfly::lumi()),
            Box::new(Dragonfly::leonardo()),
        ];
        for topo in &topos {
            let n = topo.num_nodes();
            for (a, b) in [(0, n - 1), (1, n / 2), (n / 3, n / 3 + 1)] {
                for l in topo.route(a, b) {
                    assert!(l < topo.num_links(), "{}", topo.name());
                }
            }
        }
    }
}
