//! Synthetic job-allocation traces.
//!
//! Sec. 2.4.2 analyses one to two weeks of real Slurm allocation data from
//! Leonardo and LUMI. That data is not publicly available, so this module
//! generates allocations with the same qualitative properties: the scheduler
//! hands a job the lowest-numbered free nodes (Slurm `block` distribution),
//! but because the machine is busy the free nodes are fragmented across
//! Dragonfly/Dragonfly+ groups, and the per-group rank counts are uneven.

use rand::Rng;

use crate::allocation::Allocation;
use crate::topology::{NodeId, Topology};

/// Generator of fragmented job allocations on a group-based machine.
#[derive(Debug, Clone)]
pub struct JobTraceGenerator {
    /// Fraction of the machine already occupied by other jobs (0.0–0.95).
    pub occupancy: f64,
    /// Probability that an occupied node frees up between consecutive
    /// samples, controlling how correlated successive allocations are.
    pub churn: f64,
}

impl Default for JobTraceGenerator {
    fn default() -> Self {
        Self {
            occupancy: 0.55,
            churn: 0.3,
        }
    }
}

/// One sampled job allocation.
#[derive(Debug, Clone)]
pub struct JobSample {
    /// The nodes handed to the job, sorted by node id (hostname order).
    pub nodes: Vec<NodeId>,
}

impl JobSample {
    /// The allocation (one rank per node, ranks sorted by hostname).
    pub fn allocation(&self) -> Allocation {
        Allocation::from_nodes(self.nodes.clone())
    }
}

impl JobTraceGenerator {
    /// Creates a generator with a given machine occupancy.
    pub fn with_occupancy(occupancy: f64) -> Self {
        assert!((0.0..=0.95).contains(&occupancy), "occupancy out of range");
        Self {
            occupancy,
            ..Self::default()
        }
    }

    /// Samples `count` allocations of `job_nodes` nodes each on `topo`.
    ///
    /// Every sample re-draws the busy set (partially correlated through the
    /// churn parameter), marks the requested number of nodes free if the
    /// machine is too full, and then assigns the lowest-numbered free nodes
    /// to the job.
    pub fn sample<R: Rng>(
        &self,
        topo: &dyn Topology,
        job_nodes: usize,
        count: usize,
        rng: &mut R,
    ) -> Vec<JobSample> {
        let n = topo.num_nodes();
        assert!(
            job_nodes >= 1 && job_nodes <= n,
            "job of {job_nodes} nodes on {n}-node machine"
        );
        let mut busy = vec![false; n];
        for b in busy.iter_mut() {
            *b = rng.gen_bool(self.occupancy);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // Churn: occupied nodes free up, free nodes get taken.
            for b in busy.iter_mut() {
                if rng.gen_bool(self.churn) {
                    *b = rng.gen_bool(self.occupancy);
                }
            }
            // Make sure the job fits by freeing random nodes if needed.
            let mut free: usize = busy.iter().filter(|&&b| !b).count();
            while free < job_nodes {
                let candidate = rng.gen_range(0..n);
                if busy[candidate] {
                    busy[candidate] = false;
                    free += 1;
                }
            }
            // Slurm block distribution: lowest-numbered free nodes first.
            let nodes: Vec<NodeId> = (0..n).filter(|&i| !busy[i]).take(job_nodes).collect();
            // The job now occupies those nodes.
            for &i in &nodes {
                busy[i] = true;
            }
            out.push(JobSample { nodes });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Dragonfly;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_have_the_requested_size_and_are_sorted() {
        let topo = Dragonfly::lumi();
        let gen = JobTraceGenerator::default();
        let mut rng = StdRng::seed_from_u64(42);
        for sample in gen.sample(&topo, 256, 20, &mut rng) {
            assert_eq!(sample.nodes.len(), 256);
            assert!(sample.nodes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fragmented_allocations_span_more_groups_than_packed_ones() {
        let topo = Dragonfly::lumi();
        let mut rng = StdRng::seed_from_u64(1);
        let fragmented = JobTraceGenerator::with_occupancy(0.7);
        let samples = fragmented.sample(&topo, 256, 10, &mut rng);
        let avg_groups: f64 = samples
            .iter()
            .map(|s| s.allocation().groups_spanned(&topo) as f64)
            .sum::<f64>()
            / samples.len() as f64;
        // A perfectly packed 256-node job needs ⌈256 / 124⌉ = 3 groups; a
        // fragmented one uses clearly more.
        assert!(avg_groups > 4.0, "avg groups {avg_groups}");
    }

    #[test]
    fn zero_occupancy_gives_packed_blocks() {
        let topo = Dragonfly::lumi();
        let gen = JobTraceGenerator {
            occupancy: 0.0,
            churn: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let samples = gen.sample(&topo, 124, 1, &mut rng);
        assert_eq!(samples[0].allocation().groups_spanned(&topo), 1);
    }

    #[test]
    fn per_group_rank_counts_are_uneven() {
        // Sec. 1: allocations rarely give the same number of ranks per group.
        let topo = Dragonfly::lumi();
        let gen = JobTraceGenerator::default();
        let mut rng = StdRng::seed_from_u64(11);
        let sample = &gen.sample(&topo, 512, 1, &mut rng)[0];
        let counts: Vec<usize> = sample
            .allocation()
            .ranks_per_group(&topo)
            .into_iter()
            .filter(|&c| c > 0)
            .collect();
        let all_equal = counts.windows(2).all(|w| w[0] == w[1]);
        assert!(
            !all_equal,
            "expected uneven per-group counts, got {counts:?}"
        );
    }
}
