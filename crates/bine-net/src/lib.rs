//! # bine-net
//!
//! Network substrate for the Bine Trees reproduction: models of the four
//! topologies used in the paper's evaluation (Dragonfly/LUMI,
//! Dragonfly+/Leonardo, 2:1 oversubscribed fat tree/MareNostrum 5,
//! torus/Fugaku), rank-to-node allocations, per-link traffic accounting and
//! an alpha–beta–congestion cost model.
//!
//! Together with `bine-sched` this crate turns a communication schedule into
//! the two quantities the paper reports: **bytes over global links** and
//! **(modelled) runtime**.
//!
//! ## Quick example
//!
//! ```
//! use bine_net::allocation::Allocation;
//! use bine_net::topology::FatTree;
//! use bine_net::traffic::global_bytes;
//! use bine_sched::collectives::{broadcast, BroadcastAlg};
//!
//! // The Fig. 1 example: 8 nodes, two per leaf switch, 2:1 oversubscribed.
//! let topo = FatTree::figure1();
//! let alloc = Allocation::block(8);
//! let dd = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
//! let dh = broadcast(8, 0, BroadcastAlg::BinomialDistanceHalving);
//! assert_eq!(global_bytes(&dd, 1000, &topo, &alloc), 6000);
//! assert_eq!(global_bytes(&dh, 1000, &topo, &alloc), 3000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod allocation;
pub mod cost;
pub mod event;
pub mod fault;
pub mod feedback;
pub mod sim;
pub mod topology;
pub mod trace;
pub mod traffic;
pub mod view;

pub use allocation::Allocation;
pub use cost::{CostBreakdown, CostModel, CostSummary, LowerBounds};
pub use event::EventQueue;
pub use fault::{FaultError, FaultPlan, FaultSpec, LinkDown, LinkFault, RankCrash, Straggler};
pub use feedback::{LogHistogram, ObservedTiming, TimingSource};
#[allow(deprecated)]
pub use sim::{
    sim_time_in, sim_time_in_faulted, sim_time_us, simulate, simulate_faulted, simulate_in,
    simulate_in_faulted, simulate_reference, simulate_reference_faulted, simulate_schedule,
    SimArena, SimOutcome, SimReport, SimRequest, StallReport,
};
pub use topology::{
    Dragonfly, DragonflyFlavour, FatTree, IdealFullMesh, LinkClass, LinkInfo, Topology, Torus,
};
pub use trace::{JobSample, JobTraceGenerator};
pub use traffic::{global_bytes, global_traffic_reduction, measure, TrafficReport};
pub use view::{
    fugaku_dims, synth_view, system_allocation, system_topology, system_view, TUNING_PLACEMENT_SEED,
};
