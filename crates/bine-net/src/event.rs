//! The event-queue core of the discrete-event simulator.
//!
//! A thin, deterministic priority queue over `(time, payload)` pairs:
//! events pop in ascending time order, and events carrying the same
//! timestamp pop in insertion order (FIFO), which keeps the simulation
//! reproducible when many completions coincide — as they routinely do in
//! the congestion-free limit where the simulator must match the synchronous
//! cost model bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued event: ordered by time, then by insertion sequence.
///
/// The sequence counter is a `u64` on purpose: large discrete-event runs
/// (hundreds of thousands of sends, several events each, across thousands of
/// simulations sharing one queue via an arena) must never wrap the tie-break
/// counter, or FIFO order — and with it bit-level reproducibility — would
/// silently break.
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest (time, seq) wins.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
            .reverse()
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue (see the module docs).
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN — a NaN timestamp means the simulation
    /// already produced garbage, and total-order comparisons would silently
    /// misplace it.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event scheduled at NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules every `(time, payload)` pair of `events`, in order.
    ///
    /// Equivalent to pushing the events one by one — tie-breaking (FIFO)
    /// sequence numbers are assigned in iteration order — but rebuilds the
    /// heap with one O(current + new) heapify pass instead of paying a
    /// sift-up per event. This is what the simulator's initial ready-send
    /// seeding uses: seeding `k` events costs O(k), not O(k log k), and the
    /// existing backing allocation is reused.
    ///
    /// # Panics
    /// Panics if any time is NaN, like [`EventQueue::push`]. As with
    /// sequential pushes, the events preceding the NaN are queued and the
    /// queue's prior contents are preserved.
    pub fn push_many(&mut self, events: impl IntoIterator<Item = (f64, T)>) {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        for (time, payload) in events {
            if time.is_nan() {
                // Restore the queue before panicking — push_many must not
                // be weaker than push, which leaves the queue intact.
                self.heap = BinaryHeap::from(entries);
                panic!("event scheduled at NaN");
            }
            let seq = self.seq;
            self.seq += 1;
            entries.push(Entry { time, seq, payload });
        }
        self.heap = BinaryHeap::from(entries);
    }

    /// Removes every queued event and resets the FIFO tie-break counter,
    /// keeping the backing allocation for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// The timestamp of the earliest queued event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..32 {
            q.push(1.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_are_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn push_many_pops_identically_to_sequential_pushes() {
        let events = [
            (3.0, "c"),
            (1.0, "a1"),
            (2.0, "b"),
            (1.0, "a2"),
            (1.0, "a3"),
        ];
        let mut one_by_one = EventQueue::new();
        for &(t, p) in &events {
            one_by_one.push(t, p);
        }
        let mut bulk = EventQueue::new();
        bulk.push_many(events);
        while let Some(expected) = one_by_one.pop() {
            assert_eq!(bulk.pop(), Some(expected));
        }
        assert!(bulk.is_empty());
    }

    #[test]
    fn push_many_after_pushes_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(1.0, 0);
        q.push_many([(1.0, 1), (0.5, 2), (1.0, 3)]);
        q.push(1.0, 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![2, 0, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn push_many_rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push_many([(1.0, ()), (f64::NAN, ())]);
    }

    #[test]
    fn push_many_preserves_the_queue_when_it_panics() {
        let mut q = EventQueue::new();
        q.push(1.0, "before");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push_many([(2.0, "first"), (f64::NAN, "bad"), (3.0, "after")]);
        }));
        assert!(result.is_err());
        // Exactly what sequential pushes would have left behind: the prior
        // contents plus the events preceding the NaN.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["before", "first"]);
    }

    #[test]
    fn clear_empties_and_resets_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(1.0, "old");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(2.0, "x");
        q.push(2.0, "y");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["x", "y"]);
    }
}
