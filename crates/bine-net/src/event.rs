//! The event-queue core of the discrete-event simulator.
//!
//! A thin, deterministic priority queue over `(time, payload)` pairs:
//! events pop in ascending time order, and events carrying the same
//! timestamp pop in insertion order (FIFO), which keeps the simulation
//! reproducible when many completions coincide — as they routinely do in
//! the congestion-free limit where the simulator must match the synchronous
//! cost model bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued event: ordered by time, then by insertion sequence.
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest (time, seq) wins.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
            .reverse()
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue (see the module docs).
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN — a NaN timestamp means the simulation
    /// already produced garbage, and total-order comparisons would silently
    /// misplace it.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event scheduled at NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// The timestamp of the earliest queued event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..32 {
            q.push(1.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_are_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
