//! A synchronous alpha–beta–congestion cost model.
//!
//! The paper measures wall-clock time on four production systems; this
//! reproduction substitutes a cost model that charges exactly the effects the
//! paper attributes performance differences to:
//!
//! * **latency (alpha)** per message, higher over global links;
//! * **serialisation (beta)**: the bytes offered to each link divided by the
//!   link bandwidth — so several messages sharing an oversubscribed global
//!   link within a step slow each other down (the Fig. 1 effect);
//! * **non-contiguity overhead**: a per-extra-segment charge modelling
//!   datatype packing / multiple sends (Sec. 4.3.1, Appendix B);
//! * **local work**: memory-copy time for buffer permutations and a
//!   reduction term proportional to the bytes each rank has to combine.
//!
//! Absolute numbers are not meant to match the paper's machines; the *shape*
//! of comparisons (who wins where, where crossovers sit) is.

use bine_sched::{Schedule, TransferKind};

use crate::allocation::Allocation;
use crate::topology::Topology;

/// Bytes per microsecond for one GiB/s (shared with the discrete-event
/// simulator in [`crate::sim`], which must use identical unit conversions to
/// reproduce this model in the congestion-free limit).
pub(crate) const GIB_PER_US: f64 = 1024.0 * 1024.0 * 1024.0 / 1e6;

/// Tunable parameters of the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed per-message software/NIC overhead in microseconds.
    pub alpha_us: f64,
    /// Additional per-message overhead for every memory segment beyond the
    /// first (non-contiguous sends, Sec. 4.3.1).
    pub segment_overhead_us: f64,
    /// Local memory-copy bandwidth (GiB/s), used for local permutation steps.
    pub copy_bandwidth_gib_s: f64,
    /// Local reduction bandwidth (GiB/s): bytes a rank can combine per unit
    /// time when applying a reduction operator to received data.
    pub reduce_bandwidth_gib_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alpha_us: 1.3,
            segment_overhead_us: 0.35,
            copy_bandwidth_gib_s: 28.0,
            reduce_bandwidth_gib_s: 20.0,
        }
    }
}

/// Breakdown of the modelled execution time of one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Total modelled time in microseconds.
    pub total_us: f64,
    /// Portion attributed to per-message latency and segment overheads.
    pub latency_us: f64,
    /// Portion attributed to link serialisation (bandwidth/congestion).
    pub bandwidth_us: f64,
    /// Portion attributed to local copies and reductions.
    pub compute_us: f64,
}

impl CostModel {
    /// Estimates the execution time of `schedule` with `n`-byte vectors on
    /// `topo` under `alloc`. Steps are synchronous: a step finishes when its
    /// slowest rank/link finishes; the schedule time is the sum of its steps.
    pub fn estimate(
        &self,
        schedule: &Schedule,
        n: u64,
        topo: &dyn Topology,
        alloc: &Allocation,
    ) -> CostBreakdown {
        assert!(alloc.num_ranks() >= schedule.num_ranks);
        let mut out = CostBreakdown::default();
        let mut link_bytes = vec![0u64; topo.num_links()];
        let mut link_msgs = vec![0u32; topo.num_links()];
        let mut touched: Vec<usize> = Vec::new();

        for step in &schedule.steps {
            if step.messages.is_empty() {
                continue;
            }
            let mut max_latency = 0.0f64;
            let mut max_local = 0.0f64;
            let mut max_reduce = 0.0f64;
            for l in touched.drain(..) {
                link_bytes[l] = 0;
                link_msgs[l] = 0;
            }

            for m in &step.messages {
                let byte_count = schedule.message_bytes(m, n);
                let bytes = byte_count as f64;
                if m.is_local() {
                    max_local = max_local.max(bytes / (self.copy_bandwidth_gib_s * GIB_PER_US));
                    continue;
                }
                let (src, dst) = (alloc.node_of(m.src), alloc.node_of(m.dst));
                let mut path_latency = self.alpha_us
                    + self.segment_overhead_us * (m.segments.saturating_sub(1)) as f64;
                for link in topo.route(src, dst) {
                    path_latency += topo.link(link).latency_us;
                    if link_msgs[link] == 0 {
                        touched.push(link);
                    }
                    link_bytes[link] += byte_count;
                    link_msgs[link] += 1;
                }
                max_latency = max_latency.max(path_latency);
                if m.kind == TransferKind::Reduce {
                    max_reduce = max_reduce.max(bytes / (self.reduce_bandwidth_gib_s * GIB_PER_US));
                }
            }

            // Serialisation on shared links: a link traversed by several
            // messages in the same step delivers them one after the other,
            // which both divides the effective bandwidth (the byte term
            // below) and queues the message headers (the latency term here).
            // This is the "limited number of concurrent communications" of
            // oversubscribed global links that Sec. 1 describes.
            let mut max_link_time = 0.0f64;
            let mut max_queueing = 0.0f64;
            for &l in &touched {
                let info = topo.link(l);
                let t = link_bytes[l] as f64 / (info.bandwidth_gib_s * GIB_PER_US);
                max_link_time = max_link_time.max(t);
                let q = (link_msgs[l].saturating_sub(1)) as f64 * info.latency_us;
                max_queueing = max_queueing.max(q);
            }
            let max_latency = max_latency + max_queueing;

            let step_bandwidth = max_link_time.max(max_local);
            out.latency_us += max_latency;
            out.bandwidth_us += step_bandwidth;
            out.compute_us += max_reduce;
            out.total_us += max_latency + step_bandwidth + max_reduce;
        }
        out
    }

    /// Shorthand returning only the total modelled time in microseconds.
    pub fn time_us(
        &self,
        schedule: &Schedule,
        n: u64,
        topo: &dyn Topology,
        alloc: &Allocation,
    ) -> f64 {
        self.estimate(schedule, n, topo, alloc).total_us
    }
}

/// Compact byte-count summary of a schedule for repeated cost evaluation.
///
/// [`CostModel::estimate`] walks every block id of every message, which for
/// the largest segment-based schedules (p² block ids at thousands of ranks)
/// costs hundreds of milliseconds *per vector size*. All the model actually
/// needs per message is how many full-vector blocks and how many
/// `ceil(n/p)`-sized segment blocks it carries — two counts that are
/// independent of `n`. `CostSummary::of` extracts them once; "
/// [`CostModel::estimate_summary`] then reproduces `estimate` **bit for
/// bit** (the same u64 byte totals feed the same f64 operations in the
/// same order — property-tested in `tests/proptests.rs`) at O(messages)
/// per size instead of O(block ids).
#[derive(Debug, Clone)]
pub struct CostSummary {
    num_ranks: usize,
    /// Sum of the schedule's per-rank counts, for sizing the
    /// `counted_blocks` of irregular schedules. `0` for regular schedules
    /// (which carry no counted blocks).
    counts_total: u64,
    /// Per step, per message: everything `estimate` reads.
    steps: Vec<Vec<SummaryMessage>>,
}

#[derive(Debug, Clone)]
struct SummaryMessage {
    src: u32,
    dst: u32,
    reduce: bool,
    segments: u32,
    /// Number of [`bine_sched::BlockId::Full`] blocks carried.
    full_blocks: u64,
    /// Number of segment-sized (`Segment`/`Pairwise`) blocks carried at the
    /// uniform `ceil(n/p)` size.
    seg_blocks: u64,
    /// For irregular schedules: `Segment` blocks grouped by their per-rank
    /// count value as `(count, multiplicity)` pairs. Empty for regular
    /// schedules, where every segment block lands in `seg_blocks` instead.
    counted_blocks: Vec<(u64, u64)>,
}

impl SummaryMessage {
    fn bytes(&self, n: u64, p: usize, counts_total: u64) -> u64 {
        // Exactly Schedule::message_bytes: Full blocks contribute n each,
        // uniform segment blocks ceil(n/p) (min 1) each, counted segment
        // blocks their count-proportional share. Grouping by count value
        // preserves the u64 sum exactly (integer addition is associative),
        // which is what keeps estimate_summary bit-identical to estimate.
        let mut total = self.full_blocks * n + self.seg_blocks * n.div_ceil(p as u64).max(1);
        for &(count, mult) in &self.counted_blocks {
            total += mult * bine_sched::Counts::share_bytes(count, counts_total, n);
        }
        total
    }

    fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

impl CostSummary {
    /// Summarises one schedule.
    pub fn of(schedule: &Schedule) -> CostSummary {
        use bine_sched::BlockId;
        let counts = schedule.counts.as_ref();
        let steps = schedule
            .steps
            .iter()
            .map(|step| {
                step.messages
                    .iter()
                    .map(|m| {
                        let mut full_blocks = 0u64;
                        let mut seg_blocks = 0u64;
                        let mut by_count = std::collections::BTreeMap::new();
                        for b in &m.blocks {
                            match (counts, b) {
                                (_, BlockId::Full) => full_blocks += 1,
                                (Some(c), BlockId::Segment(i)) => {
                                    *by_count.entry(c.count(*i as usize)).or_insert(0u64) += 1;
                                }
                                _ => seg_blocks += 1,
                            }
                        }
                        SummaryMessage {
                            src: m.src as u32,
                            dst: m.dst as u32,
                            reduce: m.kind == TransferKind::Reduce,
                            segments: m.segments,
                            full_blocks,
                            seg_blocks,
                            counted_blocks: by_count.into_iter().collect(),
                        }
                    })
                    .collect()
            })
            .collect();
        CostSummary {
            num_ranks: schedule.num_ranks,
            counts_total: counts.map_or(0, |c| c.total()),
            steps,
        }
    }

    /// Number of ranks of the summarised schedule.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }
}

impl CostModel {
    /// [`CostModel::estimate`] over a pre-built [`CostSummary`]: identical
    /// result (bit for bit), O(messages) per call.
    pub fn estimate_summary(
        &self,
        summary: &CostSummary,
        n: u64,
        topo: &dyn Topology,
        alloc: &Allocation,
    ) -> CostBreakdown {
        assert!(alloc.num_ranks() >= summary.num_ranks);
        let p = summary.num_ranks;
        let mut out = CostBreakdown::default();
        let mut link_bytes = vec![0u64; topo.num_links()];
        let mut link_msgs = vec![0u32; topo.num_links()];
        let mut touched: Vec<usize> = Vec::new();

        for step in &summary.steps {
            if step.is_empty() {
                continue;
            }
            let mut max_latency = 0.0f64;
            let mut max_local = 0.0f64;
            let mut max_reduce = 0.0f64;
            for l in touched.drain(..) {
                link_bytes[l] = 0;
                link_msgs[l] = 0;
            }

            for m in step {
                let byte_count = m.bytes(n, p, summary.counts_total);
                let bytes = byte_count as f64;
                if m.is_local() {
                    max_local = max_local.max(bytes / (self.copy_bandwidth_gib_s * GIB_PER_US));
                    continue;
                }
                let (src, dst) = (alloc.node_of(m.src as usize), alloc.node_of(m.dst as usize));
                let mut path_latency = self.alpha_us
                    + self.segment_overhead_us * (m.segments.saturating_sub(1)) as f64;
                for link in topo.route(src, dst) {
                    path_latency += topo.link(link).latency_us;
                    if link_msgs[link] == 0 {
                        touched.push(link);
                    }
                    link_bytes[link] += byte_count;
                    link_msgs[link] += 1;
                }
                max_latency = max_latency.max(path_latency);
                if m.reduce {
                    max_reduce = max_reduce.max(bytes / (self.reduce_bandwidth_gib_s * GIB_PER_US));
                }
            }

            let mut max_link_time = 0.0f64;
            let mut max_queueing = 0.0f64;
            for &l in &touched {
                let info = topo.link(l);
                let t = link_bytes[l] as f64 / (info.bandwidth_gib_s * GIB_PER_US);
                max_link_time = max_link_time.max(t);
                let q = (link_msgs[l].saturating_sub(1)) as f64 * info.latency_us;
                max_queueing = max_queueing.max(q);
            }
            let max_latency = max_latency + max_queueing;

            let step_bandwidth = max_link_time.max(max_local);
            out.latency_us += max_latency;
            out.bandwidth_us += step_bandwidth;
            out.compute_us += max_reduce;
            out.total_us += max_latency + step_bandwidth + max_reduce;
        }
        out
    }
}

/// Cheap candidate lower bounds for autotuning sweeps.
///
/// The tuner in `bine-tune` scores hundreds of (algorithm, segments)
/// candidates per grid point; most of them lose badly, and proving that they
/// lose is much cheaper than scoring them. `LowerBounds` precomputes the two
/// extremal link properties of a topology once and then answers, in O(1),
/// "what is the least this candidate could possibly cost?" from two closed
/// forms the catalog provides without building the schedule
/// (`bine_sched::catalog::AlgorithmId::{min_steps, min_rank_bytes}`):
///
/// * **synchronous model** ([`LowerBounds::sync_time_us`]): every nonempty
///   network step costs at least `alpha + min link latency`, and the total
///   serialisation time is at least the busiest rank's sent bytes over the
///   fastest link — both true for any step-synchronous schedule whose ranks
///   occupy distinct nodes.
/// * **discrete-event model** ([`LowerBounds::des_time_us`]): barriers are
///   gone, so only one message latency is guaranteed, but the single send
///   port still serialises the busiest rank's bytes at no more than the
///   fastest link's rate.
///
/// A candidate whose lower bound already exceeds the incumbent best score
/// can be skipped without ever building or costing its schedule, which is
/// what keeps full decision-table regeneration inside a CI-friendly budget.
/// Both bounds are *validated* (never above the true score) by the catalog
/// metadata tests in `bine-sched` and the tuner proptests.
#[derive(Debug, Clone, Copy)]
pub struct LowerBounds {
    /// Per-message software overhead (from the [`CostModel`]).
    pub alpha_us: f64,
    /// Smallest per-link latency in the topology.
    pub min_link_latency_us: f64,
    /// Highest link bandwidth in the topology, converted to bytes/us.
    pub max_link_bytes_per_us: f64,
}

impl LowerBounds {
    /// Precomputes the bounds' ingredients for one (model, topology) pair.
    pub fn new(model: &CostModel, topo: &dyn Topology) -> Self {
        Self {
            alpha_us: model.alpha_us,
            min_link_latency_us: topo.min_link_latency_us(),
            max_link_bytes_per_us: topo.max_link_bandwidth_gib_s() * GIB_PER_US,
        }
    }

    /// Lower-bounds the synchronous-model time of any schedule with at least
    /// `steps` nonempty network steps whose busiest rank sends at least
    /// `max_rank_bytes` bytes (ranks on distinct nodes).
    pub fn sync_time_us(&self, steps: u64, max_rank_bytes: u64) -> f64 {
        steps as f64 * (self.alpha_us + self.min_link_latency_us)
            + max_rank_bytes as f64 / self.max_link_bytes_per_us
    }

    /// Lower-bounds the discrete-event makespan of the same schedule: one
    /// guaranteed message latency (dependency chains are not assumed) plus
    /// the busiest send port's serialisation time.
    pub fn des_time_us(&self, max_rank_bytes: u64) -> f64 {
        self.alpha_us
            + self.min_link_latency_us
            + max_rank_bytes as f64 / self.max_link_bytes_per_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Dragonfly, FatTree};
    use bine_sched::collectives::{allreduce, broadcast, AllreduceAlg, BroadcastAlg};

    #[test]
    fn distance_halving_broadcast_is_faster_on_oversubscribed_fat_tree() {
        // The Fig. 1 motivation: fewer bytes on the shared uplinks means a
        // lower modelled runtime for the distance-halving variant.
        let topo = FatTree::figure1();
        let alloc = Allocation::block(8);
        let model = CostModel::default();
        let n = 8 << 20;
        let dd = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
        let dh = broadcast(8, 0, BroadcastAlg::BinomialDistanceHalving);
        assert!(
            model.time_us(&dh, n, &topo, &alloc) < model.time_us(&dd, n, &topo, &alloc),
            "distance halving should win on the Fig. 1 example"
        );
    }

    #[test]
    fn latency_dominates_small_vectors_and_bandwidth_dominates_large_ones() {
        let topo = Dragonfly::lumi();
        let alloc = Allocation::block(256);
        let model = CostModel::default();
        let sched = allreduce(256, AllreduceAlg::BineLarge);
        let small = model.estimate(&sched, 256, &topo, &alloc);
        let large = model.estimate(&sched, 256 << 20, &topo, &alloc);
        assert!(small.latency_us > small.bandwidth_us);
        assert!(large.bandwidth_us > large.latency_us);
    }

    #[test]
    fn ring_beats_logarithmic_algorithms_only_for_large_vectors_at_small_scale() {
        // Sec. 5.2.2: the ring allreduce is usually more effective only for
        // large vectors at small node counts.
        let topo = Dragonfly::lumi();
        let model = CostModel::default();
        let p = 16;
        let alloc = Allocation::block(p);
        let ring = allreduce(p, AllreduceAlg::Ring);
        let bine_small = allreduce(p, AllreduceAlg::BineSmall);
        // Small vector: the ring's p-1 latency-bound steps lose badly.
        assert!(
            model.time_us(&bine_small, 256, &topo, &alloc)
                < model.time_us(&ring, 256, &topo, &alloc)
        );
    }

    #[test]
    fn more_steps_cost_more_latency() {
        let topo = Dragonfly::lumi();
        let alloc = Allocation::block(64);
        let model = CostModel::default();
        let rd = allreduce(64, AllreduceAlg::RecursiveDoubling);
        let ring = allreduce(64, AllreduceAlg::Ring);
        let rd_cost = model.estimate(&rd, 64, &topo, &alloc);
        let ring_cost = model.estimate(&ring, 64, &topo, &alloc);
        assert!(ring_cost.latency_us > rd_cost.latency_us);
    }
}
