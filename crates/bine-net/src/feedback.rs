//! Timing feedback types for online adaptation.
//!
//! The serving layer (`bine-tune`'s `ServiceSelector`) closes the loop
//! between the *modelled* cost a decision table committed offline and the
//! cost actually *observed* under traffic: every executed or simulated
//! request can report an [`ObservedTiming`], and the per-entry distribution
//! is accumulated in a [`LogHistogram`] — a fixed-bucket, allocation-free
//! power-of-two histogram cheap enough to update on the hot serving path.
//!
//! The types live here (rather than in `bine-tune`) because they describe
//! *network-time* measurements: the same microsecond scale the cost model
//! and the discrete-event simulator produce, so a simulated makespan and a
//! measured wall time feed one histogram without conversion.

/// Where an observed timing came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingSource {
    /// Measured wall time of a real execution (e.g. an
    /// `ExecutorPool` run behind `ServiceSelector::execute`).
    Execution,
    /// A discrete-event simulated makespan (e.g. a [`crate::sim::SimRequest`]
    /// run standing in for the network).
    Simulation,
}

/// One observed cost sample for a served pick, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedTiming {
    /// Provenance of the sample.
    pub source: TimingSource,
    /// The observed time in microseconds.
    pub time_us: f64,
}

impl ObservedTiming {
    /// A measured execution wall time.
    pub fn execution(time_us: f64) -> ObservedTiming {
        ObservedTiming {
            source: TimingSource::Execution,
            time_us,
        }
    }

    /// A simulated makespan.
    pub fn simulation(time_us: f64) -> ObservedTiming {
        ObservedTiming {
            source: TimingSource::Simulation,
            time_us,
        }
    }
}

/// Number of buckets in a [`LogHistogram`]: one per power of two from
/// sub-microsecond up to ~2⁶² µs, which covers every plausible collective
/// time with room to spare.
pub const LOG_HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram of microsecond timings.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` µs (bucket 0 collects
/// everything below 1 µs). The struct is a flat array plus two scalars —
/// no heap allocation ever, neither at construction nor on
/// [`LogHistogram::record`] — so it can live under a serving shard's stripe
/// lock and be updated on every request without disturbing the
/// allocation-free warm path (pinned by `bine-tune`'s counting-allocator
/// test).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; LOG_HISTOGRAM_BUCKETS],
    count: u64,
    sum_us: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; LOG_HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0.0,
        }
    }

    /// Index of the bucket a sample falls into.
    fn bucket_of(time_us: f64) -> usize {
        if time_us.is_nan() || time_us < 1.0 {
            // NaN, negative and sub-microsecond samples all land in the
            // first bucket rather than panicking the serving path.
            return 0;
        }
        let exp = (time_us.log2().floor() as i64).clamp(0, LOG_HISTOGRAM_BUCKETS as i64 - 2);
        (exp + 1) as usize
    }

    /// Records one sample. Allocation-free.
    pub fn record(&mut self, time_us: f64) {
        self.buckets[Self::bucket_of(time_us)] += 1;
        self.count += 1;
        self.sum_us += time_us;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// The raw bucket counts: bucket `i` holds samples in
    /// `[2^(i-1), 2^i)` µs, bucket 0 everything below 1 µs.
    pub fn buckets(&self) -> &[u64; LOG_HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Drops every sample (the shape an adaptation epoch change uses: the
    /// distribution of the previous pick says nothing about the new one).
    pub fn reset(&mut self) {
        self.buckets = [0; LOG_HISTOGRAM_BUCKETS];
        self.count = 0;
        self.sum_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record(0.25); // bucket 0
        h.record(1.0); // [1, 2) → bucket 1
        h.record(1.9); // bucket 1
        h.record(2.0); // [2, 4) → bucket 2
        h.record(1000.0); // [512, 1024) → bucket 10
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn mean_and_reset() {
        let mut h = LogHistogram::new();
        assert_eq!(h.mean_us(), 0.0);
        h.record(10.0);
        h.record(30.0);
        assert!((h.mean_us() - 20.0).abs() < 1e-12);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn pathological_samples_never_panic() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(-5.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[LOG_HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn observed_timing_constructors_tag_the_source() {
        assert_eq!(
            ObservedTiming::execution(3.0).source,
            TimingSource::Execution
        );
        assert_eq!(
            ObservedTiming::simulation(3.0).source,
            TimingSource::Simulation
        );
    }
}
