//! Chaos harness for the failure-aware stack: hammers the
//! [`bine_tune::ServiceSelector`] with seeded, deterministic compile
//! failures while verifying the degraded answers against the binomial
//! baseline under a fault-injected discrete-event simulation.
//!
//! The harness asserts the two robustness contracts of the serving layer:
//!
//! 1. **100% answer availability** — every request gets a compiled,
//!    executable schedule, however many injected compile panics, retries
//!    and tripped circuit breakers it took to produce it. A degraded
//!    request is answered with the binomial [`bine_tune::fallback_pick`];
//!    it is never an error.
//! 2. **Degraded answers are bit-identical to the baseline** — each served
//!    fallback schedule is simulated under a seeded
//!    [`bine_net::fault::FaultSpec`] plan (degraded links, latency spikes,
//!    stragglers) on the optimized DES and compared bit-for-bit against
//!    the *reference* DES running a directly-built binomial schedule: same
//!    makespan bits, same per-rank finish bits, same message counts.
//!    Healthy answers get the same optimized-vs-reference pin on their own
//!    schedule, so the chaos run doubles as a faulted-DES equivalence
//!    sweep.
//!
//! [`run`] is shared by the `chaos_bench` bin (the CI smoke step) and the
//! unit tests below.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::fault::FaultSpec;
use bine_net::sim::{SimReport, SimRequest};
use bine_sched::{build, Collective};
use bine_tune::{fallback_pick, slug, tuned_name, CompileAttempt, DegradePolicy, ServiceSelector};

use crate::serve;
use crate::systems::System;

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// System whose committed decision table is served (and whose topology
    /// hosts the faulted simulations).
    pub system: String,
    /// Concurrent requester threads in the storm phase.
    pub threads: usize,
    /// Requests issued per thread during the storm.
    pub requests_per_thread: usize,
    /// Seed of both fault surfaces: the compile-failure draws and the DES
    /// fault plan. Same seed, same chaos — the run is fully reproducible.
    pub seed: u64,
    /// Probability that a primary compile attempt panics. Drawn
    /// deterministically per `(collective, nodes, attempt)`, so some
    /// entries always fail (their breaker trips), some recover on retry
    /// and some never fail.
    pub fail_rate: f64,
    /// Degradation policy the service runs under. The default uses an
    /// hour-long breaker cooldown so entries broken during the storm are
    /// still observably degraded in the verification pass (half-open
    /// recovery is pinned by the `bine-tune` unit tests instead).
    pub policy: DegradePolicy,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            system: "LUMI".into(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            requests_per_thread: 400,
            seed: 42,
            fail_rate: 0.4,
            policy: DegradePolicy {
                flight_timeout: Duration::from_millis(500),
                max_retries: 1,
                backoff_base: Duration::from_micros(100),
                backoff_cap: Duration::from_millis(2),
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_secs(3600),
            },
        }
    }
}

/// Outcome of one chaos run. `availability` must be 1.0 and
/// `unexpected_answers` 0 for the run to count as passed (the `chaos_bench`
/// bin exits non-zero otherwise); bit-identity of the degraded answers is
/// verified inside [`run`], which errors on any mismatch.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Requests issued during the storm phase.
    pub total_requests: u64,
    /// Storm requests that received a compiled schedule.
    pub answered: u64,
    /// Storm answers that were the tuned pick.
    pub tuned_answers: u64,
    /// Storm answers that were the binomial fallback (degraded mode).
    pub fallback_answers: u64,
    /// Storm answers that were neither — always 0 unless the cache
    /// published a corrupted entry.
    pub unexpected_answers: u64,
    /// Compile panics the injection hook actually fired.
    pub injected_panics: u64,
    /// Service counter: requests answered with the fallback pick.
    pub service_fallbacks: u64,
    /// Service counter: follower waits that timed out.
    pub service_timeouts: u64,
    /// Service counter: compile retries after a panic.
    pub service_retries: u64,
    /// Service counter: compilations started (leaderships taken).
    pub service_compilations: u64,
    /// Entries still answering with the fallback in the verification pass
    /// (their breakers tripped during the storm and stayed open).
    pub degraded_entries: usize,
    /// Schedules simulated under the seeded fault plan, optimized vs
    /// reference, all bit-identical (a mismatch aborts [`run`] instead).
    pub sim_checked: usize,
    /// Links degraded or spiked by the seeded fault plan (at the largest
    /// node count of the query mix).
    pub faulted_links: usize,
    /// Straggler ranks in the seeded fault plan (at the largest node count
    /// of the query mix).
    pub stragglers: usize,
}

impl ChaosReport {
    /// Fraction of storm requests that received an answer. The contract is
    /// exactly 1.0.
    pub fn availability(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            self.answered as f64 / self.total_requests as f64
        }
    }

    /// Fraction of answered storm requests served in degraded mode.
    pub fn degraded_share(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.fallback_answers as f64 / self.answered as f64
        }
    }
}

/// Stateless splitmix64 mix, the same construction the DES fault plans use
/// for their seeded draws: no RNG state to share between threads, and a
/// draw depends only on `(seed, inputs)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` for one compile attempt.
fn failure_roll(seed: u64, collective: Collective, nodes: usize, attempt: u32) -> f64 {
    let h = splitmix64(
        seed ^ splitmix64(
            collective as u64 ^ splitmix64(nodes as u64 ^ splitmix64(attempt as u64)),
        ),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn reports_bit_identical(a: &SimReport, b: &SimReport) -> bool {
    a.makespan_us.to_bits() == b.makespan_us.to_bits()
        && a.network_messages == b.network_messages
        && a.peak_active_flows == b.peak_active_flows
        && a.rank_finish_us.len() == b.rank_finish_us.len()
        && a.rank_finish_us
            .iter()
            .zip(&b.rank_finish_us)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs the chaos harness: a multi-threaded request storm against a
/// fault-injected service, then a serial verification pass that simulates
/// every answer under the seeded DES fault plan and checks degraded
/// answers bit-for-bit against directly-built binomial baselines.
///
/// `Err` means the harness itself could not uphold a contract it checks
/// structurally (missing tables, an unanswered verification request, or a
/// bit mismatch); storm-phase availability lands in the report for the
/// caller to judge.
pub fn run(opts: &ChaosOptions) -> Result<ChaosReport, String> {
    let system = System::all()
        .into_iter()
        .find(|s| slug(s.name) == slug(&opts.system))
        .ok_or_else(|| format!("no benchmark system named {:?}", opts.system))?;

    let injected = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&injected);
    let (seed, fail_rate) = (opts.seed, opts.fail_rate);
    let service = ServiceSelector::load_default()?
        .with_policy(opts.policy)
        .with_compile_hook(Arc::new(move |a: &CompileAttempt| {
            if failure_roll(seed, a.collective, a.nodes, a.attempt) < fail_rate {
                counter.fetch_add(1, Ordering::Relaxed);
                panic!("injected compile failure");
            }
        }));
    let sys = service.resolve_system(&opts.system)?;

    // The standard serving query mix: every query resolves against the
    // committed tables, and every pick (tuned or fallback) is buildable at
    // its power-of-two rank count.
    let queries = serve::queries();
    let expected: Vec<String> = queries
        .iter()
        .map(|&(c, n, b)| {
            service
                .choose_at(sys, c, n, b)
                .map(|t| tuned_name(t.algorithm, t.segments))
                .ok_or_else(|| format!("no table entry for ({}, {n}, {b})", c.name()))
        })
        .collect::<Result<_, _>>()?;

    // --- storm phase: concurrent requests against the failing service ---
    let threads = opts.threads.max(1);
    let requests_per_thread = opts.requests_per_thread.max(queries.len());
    let answered = AtomicU64::new(0);
    let tuned = AtomicU64::new(0);
    let fallback = AtomicU64::new(0);
    let unexpected = AtomicU64::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (service, queries, expected, barrier) = (&service, &queries, &expected, &barrier);
            let (answered, tuned, fallback, unexpected) =
                (&answered, &tuned, &fallback, &unexpected);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..requests_per_thread {
                    let j = (i + t * 7) % queries.len();
                    let (c, n, b) = queries[j];
                    match service.compiled_at(sys, c, n, b) {
                        None => {} // unanswered: availability drops below 1
                        Some(compiled) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                            if compiled.algorithm == expected[j] {
                                tuned.fetch_add(1, Ordering::Relaxed);
                            } else if compiled.algorithm == fallback_pick(c, b) {
                                fallback.fetch_add(1, Ordering::Relaxed);
                            } else {
                                unexpected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    // --- verification pass: simulate every answer under the fault plan ---
    let model = CostModel::default();
    let spec = FaultSpec::moderate(opts.seed);
    let mut degraded_entries = 0usize;
    let mut sim_checked = 0usize;
    let mut faulted_links = 0usize;
    let mut stragglers = 0usize;
    for (j, &(c, n, b)) in queries.iter().enumerate() {
        let compiled = service
            .compiled_at(sys, c, n, b)
            .ok_or_else(|| format!("verification request ({}, {n}, {b}) unanswered", c.name()))?;
        let topo = system.topology(n);
        let alloc = Allocation::block(n);
        let plan = spec.plan(topo.num_links(), n);
        faulted_links = faulted_links.max(plan.link_faults().len());
        stragglers = stragglers.max(plan.stragglers().len());
        // The reference-side schedule: the tuned pick itself when healthy,
        // a directly-built binomial baseline when degraded — so a degraded
        // answer is pinned bit-identical to the baseline, not to itself.
        let baseline = if compiled.algorithm == expected[j] {
            None
        } else if compiled.algorithm == fallback_pick(c, b) {
            degraded_entries += 1;
            let sched = build(c, fallback_pick(c, b), n, 0).ok_or_else(|| {
                format!("fallback {} unbuildable at {n} ranks", fallback_pick(c, b))
            })?;
            Some(sched.compile())
        } else {
            return Err(format!(
                "answer for ({}, {n}, {b}) is {:?}: neither the tuned pick {:?} \
                 nor the fallback {:?}",
                c.name(),
                compiled.algorithm,
                expected[j],
                fallback_pick(c, b)
            ));
        };
        let optimized = SimRequest::new(&model, &compiled, b, topo.as_ref(), &alloc)
            .faults(&plan)
            .run()
            .into_report();
        let reference = SimRequest::new(
            &model,
            baseline.as_ref().unwrap_or(&compiled),
            b,
            topo.as_ref(),
            &alloc,
        )
        .reference()
        .faults(&plan)
        .run()
        .into_report();
        if !reports_bit_identical(&optimized, &reference) {
            return Err(format!(
                "faulted DES mismatch for ({}, {n}, {b}) answer {:?}: optimized \
                 {:?} vs reference {:?} ({} vs {} messages)",
                c.name(),
                compiled.algorithm,
                optimized.makespan_us,
                reference.makespan_us,
                optimized.network_messages,
                reference.network_messages,
            ));
        }
        sim_checked += 1;
    }

    Ok(ChaosReport {
        total_requests: (threads * requests_per_thread) as u64,
        answered: answered.into_inner(),
        tuned_answers: tuned.into_inner(),
        fallback_answers: fallback.into_inner(),
        unexpected_answers: unexpected.into_inner(),
        injected_panics: injected.load(Ordering::Relaxed),
        service_fallbacks: service.fallbacks(),
        service_timeouts: service.timeouts(),
        service_retries: service.retries(),
        service_compilations: service.compilations(),
        degraded_entries,
        sim_checked,
        faulted_links,
        stragglers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rolls_are_deterministic_and_spread() {
        let a = failure_roll(7, Collective::Allreduce, 16, 0);
        assert_eq!(a, failure_roll(7, Collective::Allreduce, 16, 0));
        assert!((0.0..1.0).contains(&a));
        // Different inputs draw differently (overwhelmingly).
        assert_ne!(a, failure_roll(7, Collective::Allreduce, 16, 1));
        assert_ne!(a, failure_roll(8, Collective::Allreduce, 16, 0));
    }

    /// The acceptance scenario at test scale: a storm with an aggressive
    /// fail rate must keep availability at exactly 100%, actually degrade
    /// some entries to the binomial fallback, and pass the faulted-DES
    /// bit-identity verification for every answer.
    #[test]
    fn chaos_run_keeps_full_availability_with_bit_identical_fallbacks() {
        let report = run(&ChaosOptions {
            threads: 4,
            requests_per_thread: 64,
            seed: 7,
            fail_rate: 0.5,
            ..ChaosOptions::default()
        })
        .expect("chaos run");
        assert_eq!(report.availability(), 1.0, "{report:?}");
        assert_eq!(report.unexpected_answers, 0);
        assert_eq!(report.answered, report.total_requests);
        assert!(report.injected_panics > 0, "the hook must actually fire");
        assert!(report.fallback_answers > 0, "some answers must degrade");
        assert!(report.degraded_entries > 0);
        assert_eq!(report.sim_checked, serve::queries().len());
        assert!(report.faulted_links > 0, "the fault plan must not be empty");
        assert!(report.degraded_share() > 0.0 && report.degraded_share() < 1.0);
        assert!(
            report.service_retries > 0,
            "some attempts must have retried"
        );
    }

    /// A zero fail rate is a healthy service: no degradation anywhere, and
    /// the verification pass still pins optimized-vs-reference DES bits
    /// under the fault plan for every tuned answer.
    #[test]
    fn zero_fail_rate_never_degrades() {
        let report = run(&ChaosOptions {
            threads: 2,
            requests_per_thread: 64,
            seed: 3,
            fail_rate: 0.0,
            ..ChaosOptions::default()
        })
        .expect("chaos run");
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.fallback_answers, 0);
        assert_eq!(report.injected_panics, 0);
        assert_eq!(report.degraded_entries, 0);
        assert_eq!(report.service_fallbacks, 0);
        assert_eq!(report.service_timeouts, 0);
        assert_eq!(report.service_retries, 0);
        assert_eq!(report.sim_checked, serve::queries().len());
    }
}
