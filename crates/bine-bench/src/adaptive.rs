//! The adaptive-serving harness: drives the online feedback loop of
//! [`bine_tune::ServiceSelector`] end to end against a *wrong* committed
//! model, and proves it converges to the simulation-true winner.
//!
//! The scenario is the one the tentpole exists for. A decision table is
//! committed with the pick the **healthy** model chooses, but the machine
//! then develops a seeded, deterministic fault plan (degraded links,
//! latency spikes, stragglers) the offline model knows nothing about.
//! Observed per-pick costs — here the faulted DES, so the whole run is
//! bit-reproducible across machines — are fed back through
//! [`bine_tune::ServiceSelector::observe`]:
//!
//! 1. the entry's observed mean diverges past the committed modelled
//!    score, triggering a single-flight re-evaluation whose scorer is the
//!    *faulted* DES;
//! 2. the DES-true winner (computed independently by this harness over the
//!    same catalog) is promoted into the epoch-versioned overlay, and the
//!    warm request path serves it as an `Arc` clone;
//! 3. when the faults clear (the harness flips its scorer back to the
//!    healthy DES), the override's periodic re-check lets the committed
//!    pick win again and the overlay reverts to empty — the committed
//!    tables were never touched.
//!
//! [`measure`] is shared by the `adaptive_bench` bin (CI smoke: exits
//! non-zero unless the run converged and reverted) and `bench_exec`, which
//! records the `/adaptive/` warm-path timings into `BENCH_exec.json`
//! (hard-gated like `/serve/`; the `overrides`/`reverts`/`reevals`
//! counters ride along ungated, like the serve-layer health counters).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::fault::FaultSpec;
use bine_net::sim::SimRequest;
use bine_net::{ObservedTiming, Topology};
use bine_sched::{algorithms, build, Collective};
use bine_tune::{
    slug, AdaptPolicy, DecisionTable, Entry, Reevaluator, ScoreFn, ScoreModel, ServiceSelector,
};

use crate::systems::System;

/// Configuration of one adaptive-serving run.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Benchmark system whose topology hosts the simulations.
    pub system: String,
    /// Collective of the diverging grid entry.
    pub collective: Collective,
    /// Rank count of the diverging grid entry.
    pub nodes: usize,
    /// Vector size of the grid entry (scoring and observations).
    pub bytes: u64,
    /// Base seed of the fault-plan search (see [`measure`]: the first plan
    /// from this seed that actually flips the DES winner is used, so the
    /// run is deterministic).
    pub seed: u64,
    /// The feedback-loop policy the service runs under.
    pub policy: AdaptPolicy,
    /// Warm-path timing samples per repeat (observe / overridden-hit ns).
    pub timing_samples: usize,
    /// Timing repeats; best (minimum) ns is reported.
    pub repeats: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            system: "LUMI".into(),
            collective: Collective::Allreduce,
            nodes: 16,
            bytes: 1 << 20,
            seed: 42,
            policy: AdaptPolicy::default(),
            timing_samples: 4096,
            repeats: 5,
        }
    }
}

/// Outcome of one adaptive-serving run. The convergence contract is
/// checked structurally inside [`measure`] (which errors on any violation);
/// the fields record what happened for reporting and `BENCH_exec.json`.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The committed pick — the healthy model's winner.
    pub committed_pick: String,
    /// The faulted-DES winner the harness computed independently.
    pub des_true_pick: String,
    /// The committed pick's healthy modelled score (µs), as committed.
    pub committed_healthy_us: f64,
    /// The committed pick's cost under the fault plan (µs) — what the
    /// service actually observes.
    pub committed_faulted_us: f64,
    /// The DES-true winner's cost under the fault plan (µs).
    pub challenger_faulted_us: f64,
    /// Fault-plan seed the search settled on.
    pub plan_seed: u64,
    /// Links degraded or spiked by the chosen plan.
    pub faulted_links: usize,
    /// Straggler ranks in the chosen plan.
    pub stragglers: usize,
    /// Service counter: overrides promoted (exactly 1 in this scenario).
    pub overrides: u64,
    /// Service counter: overrides reverted (exactly 1 in this scenario).
    pub reverts: u64,
    /// Service counter: re-evaluations run (divergence + re-checks).
    pub reevals: u64,
    /// Warm observe cost on a healthy, fully-sampled entry (ns, best-of).
    pub observe_ns: f64,
    /// Warm `compiled_at` cost while the override is active (ns, best-of).
    pub overridden_hit_ns: f64,
}

/// The faulted-DES cost of one pick at the grid point, `None` when the
/// pick is not buildable at this rank count.
#[allow(clippy::too_many_arguments)]
fn des_cost(
    pick: &str,
    collective: Collective,
    nodes: usize,
    bytes: u64,
    model: &CostModel,
    topo: &dyn Topology,
    alloc: &Allocation,
    faults: Option<&bine_net::FaultPlan>,
) -> Option<f64> {
    let compiled = build(collective, pick, nodes, 0)?.compile();
    let req = SimRequest::new(model, &compiled, bytes, topo, alloc).time_only();
    let req = match faults {
        Some(plan) => req.faults(plan),
        None => req,
    };
    Some(req.run().makespan_us())
}

/// First strict minimum over the catalog of `collective` (the same
/// tie-break the service's re-evaluator uses), under `faults`.
fn catalog_winner(
    collective: Collective,
    nodes: usize,
    bytes: u64,
    model: &CostModel,
    topo: &dyn Topology,
    alloc: &Allocation,
    faults: Option<&bine_net::FaultPlan>,
) -> Option<(String, f64)> {
    let mut best: Option<(String, f64)> = None;
    for alg in algorithms(collective) {
        if let Some(cost) = des_cost(
            alg.name(),
            collective,
            nodes,
            bytes,
            model,
            topo,
            alloc,
            faults,
        ) {
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((alg.name().to_string(), cost));
            }
        }
    }
    best
}

/// Runs the adaptive-serving scenario end to end and checks every step of
/// the convergence contract, erroring (rather than reporting) on any
/// violation: the override must be promoted, must be the independently
/// computed DES-true winner, must be served from the warm path, and must
/// revert once the faults clear.
pub fn measure(opts: &AdaptiveOptions) -> Result<AdaptiveReport, String> {
    let system = System::all()
        .into_iter()
        .find(|s| slug(s.name) == slug(&opts.system))
        .ok_or_else(|| format!("no benchmark system named {:?}", opts.system))?;
    let (collective, nodes, bytes) = (opts.collective, opts.nodes, opts.bytes);
    let topo = system.topology(nodes);
    let alloc = Allocation::block(nodes);
    let model = CostModel::default();

    // The committed pick: the healthy DES winner, scored exactly as the
    // offline tuner would have (no faults).
    let (committed, committed_healthy) = catalog_winner(
        collective,
        nodes,
        bytes,
        &model,
        topo.as_ref(),
        &alloc,
        None,
    )
    .ok_or_else(|| format!("no buildable {} at {nodes} ranks", collective.name()))?;

    // Search for the first seeded fault plan that makes the committed
    // model *wrong*: a different catalog winner under the faulted DES, and
    // far enough from the healthy score to clear the divergence threshold.
    // The search order is fixed, so the chosen plan is deterministic.
    let mut chosen = None;
    for plan_seed in opts.seed..opts.seed + 64 {
        let plan = FaultSpec::moderate(plan_seed).plan(topo.num_links(), nodes);
        let Some((winner, winner_cost)) = catalog_winner(
            collective,
            nodes,
            bytes,
            &model,
            topo.as_ref(),
            &alloc,
            Some(&plan),
        ) else {
            continue;
        };
        let committed_faulted = des_cost(
            &committed,
            collective,
            nodes,
            bytes,
            &model,
            topo.as_ref(),
            &alloc,
            Some(&plan),
        )
        .expect("the committed pick stays buildable under faults");
        if winner != committed && committed_faulted >= opts.policy.divergence * committed_healthy {
            chosen = Some((plan_seed, plan, winner, winner_cost, committed_faulted));
            break;
        }
    }
    let (plan_seed, plan, des_true, challenger_faulted, committed_faulted) =
        chosen.ok_or_else(|| {
            format!(
                "no fault plan in [{}, {}) flips the {} winner at {nodes} ranks",
                opts.seed,
                opts.seed + 64,
                collective.name()
            )
        })?;
    let (faulted_links, stragglers) = (plan.link_faults().len(), plan.stragglers().len());

    // The service's re-evaluation scorer: the DES over the same catalog,
    // under the fault plan while it is active and healthy after it clears.
    // The flag is the harness's stand-in for "the machine got repaired".
    let healthy = Arc::new(AtomicBool::new(false));
    let scorer: Arc<ScoreFn> = {
        let healthy = Arc::clone(&healthy);
        let (system, model, plan) = (system.clone(), model.clone(), plan.clone());
        Arc::new(move |pick, collective, nodes, bytes| {
            let topo = system.topology(nodes);
            let alloc = Allocation::block(nodes);
            let faults = (!healthy.load(Ordering::Relaxed)).then_some(&plan);
            des_cost(
                pick,
                collective,
                nodes,
                bytes,
                &model,
                topo.as_ref(),
                &alloc,
                faults,
            )
        })
    };

    // The served table: the diverging entry plus a permanently-healthy
    // sibling at twice the rank count (its modelled score *is* what the
    // harness observes for it), used to time the steady-state observe path
    // without tripping re-evaluations.
    let sibling_nodes = nodes * 2;
    let sibling_topo = system.topology(sibling_nodes);
    let sibling_healthy = des_cost(
        &committed,
        collective,
        sibling_nodes,
        bytes,
        &model,
        sibling_topo.as_ref(),
        &Allocation::block(sibling_nodes),
        None,
    )
    .ok_or_else(|| format!("{committed} unbuildable at {sibling_nodes} ranks"))?;
    let table = DecisionTable {
        system: "adaptive-lab".into(),
        entries: vec![
            Entry {
                collective,
                dist: None,
                nodes,
                vector_bytes: bytes,
                pick: committed.clone(),
                model: ScoreModel::Des,
                time_us: committed_healthy,
            },
            Entry {
                collective,
                dist: None,
                nodes: sibling_nodes,
                vector_bytes: bytes,
                pick: committed.clone(),
                model: ScoreModel::Des,
                time_us: sibling_healthy,
            },
        ],
    };
    let service = ServiceSelector::from_tables(&[table])
        .with_adaptation(opts.policy, Reevaluator::catalog(usize::MAX, scorer));
    let sys = 0;

    // --- phase 1: faults active, observations diverge, override lands ---
    let before = service
        .compiled_at(sys, collective, nodes, bytes)
        .ok_or("the committed pick must be servable")?;
    if before.algorithm != committed {
        return Err(format!(
            "pre-divergence answer is {:?}, expected the committed {committed:?}",
            before.algorithm
        ));
    }
    for _ in 0..opts.policy.min_samples {
        service.observe_at(
            sys,
            collective,
            nodes,
            bytes,
            ObservedTiming::simulation(committed_faulted),
        );
    }
    let overlay = service.overlay();
    let entry = overlay
        .entries
        .first()
        .ok_or("divergence fed past min_samples must promote an override")?;
    if entry.pick != des_true {
        return Err(format!(
            "override converged to {:?}, but the DES-true winner is {des_true:?}",
            entry.pick
        ));
    }
    let served = service
        .compiled_at(sys, collective, nodes, bytes)
        .ok_or("the overridden entry must stay servable")?;
    if served.algorithm != des_true {
        return Err(format!(
            "warm path serves {:?} despite the {des_true:?} override",
            served.algorithm
        ));
    }

    // --- timings on the warm paths (override still active) ---
    let samples = opts.timing_samples.max(1);
    let repeats = opts.repeats.max(1);
    let mut overridden_hit_ns = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..samples {
            std::hint::black_box(service.compiled_at(sys, collective, nodes, bytes));
        }
        let ns = start.elapsed().as_nanos() as f64 / samples as f64;
        overridden_hit_ns = overridden_hit_ns.min(ns);
    }
    // Steady-state observe: the healthy sibling entry, fed its own
    // modelled score so the divergence check runs every time and never
    // fires. Warm it past min_samples first.
    for _ in 0..opts.policy.min_samples {
        service.observe_at(
            sys,
            collective,
            sibling_nodes,
            bytes,
            ObservedTiming::simulation(sibling_healthy),
        );
    }
    let mut observe_ns = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..samples {
            service.observe_at(
                sys,
                collective,
                sibling_nodes,
                bytes,
                ObservedTiming::simulation(sibling_healthy),
            );
        }
        let ns = start.elapsed().as_nanos() as f64 / samples as f64;
        observe_ns = observe_ns.min(ns);
    }

    // --- phase 2: faults clear, the re-check reverts the override ---
    healthy.store(true, Ordering::Relaxed);
    for _ in 0..opts.policy.recheck_interval {
        service.observe_at(
            sys,
            collective,
            nodes,
            bytes,
            ObservedTiming::simulation(committed_healthy),
        );
    }
    if !service.overlay().is_empty() {
        return Err("the override must revert once the faults clear".into());
    }
    let after = service
        .compiled_at(sys, collective, nodes, bytes)
        .ok_or("the reverted entry must stay servable")?;
    if after.algorithm != committed {
        return Err(format!(
            "post-revert answer is {:?}, expected the committed {committed:?}",
            after.algorithm
        ));
    }

    Ok(AdaptiveReport {
        committed_pick: committed,
        des_true_pick: des_true,
        committed_healthy_us: committed_healthy,
        committed_faulted_us: committed_faulted,
        challenger_faulted_us: challenger_faulted,
        plan_seed,
        faulted_links,
        stragglers,
        overrides: service.overrides(),
        reverts: service.reverts(),
        reevals: service.reevals(),
        observe_ns,
        overridden_hit_ns,
    })
}

/// The `BENCH_exec.json` entries of a run. The two warm-path timings are
/// hard-gated by `perf_gate` (they are the adaptive layer's tax on the
/// serving hot path); the loop counters ride along ungated, like the
/// serve layer's degradation counters.
pub fn bench_entries(r: &AdaptiveReport) -> Vec<(String, f64)> {
    vec![
        ("select-mix/adaptive/observe-ns".into(), r.observe_ns),
        (
            "select-mix/adaptive/overridden-hit-ns".into(),
            r.overridden_hit_ns,
        ),
        ("select-mix/adaptive/overrides".into(), r.overrides as f64),
        ("select-mix/adaptive/reverts".into(), r.reverts as f64),
        ("select-mix/adaptive/reevals".into(), r.reevals as f64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance scenario at test scale: a seeded fault plan makes
    /// the committed model wrong, the overlay converges to the DES-true
    /// winner, and clearing the faults reverts it — deterministically.
    #[test]
    fn adaptive_run_converges_to_the_des_true_winner_and_reverts() {
        let opts = AdaptiveOptions {
            timing_samples: 64,
            repeats: 1,
            ..AdaptiveOptions::default()
        };
        let r = measure(&opts).expect("adaptive run");
        assert_ne!(r.committed_pick, r.des_true_pick);
        assert!(r.committed_faulted_us >= opts.policy.divergence * r.committed_healthy_us);
        assert!(r.challenger_faulted_us < r.committed_faulted_us);
        assert_eq!(r.overrides, 1, "{r:?}");
        assert_eq!(r.reverts, 1, "{r:?}");
        assert!(r.reevals >= 2, "{r:?}");
        assert!(r.observe_ns > 0.0 && r.overridden_hit_ns > 0.0);

        // Deterministic: a second run lands on the same plan and winner.
        let again = measure(&opts).expect("adaptive run");
        assert_eq!(again.plan_seed, r.plan_seed);
        assert_eq!(again.des_true_pick, r.des_true_pick);
        assert_eq!(
            again.committed_faulted_us.to_bits(),
            r.committed_faulted_us.to_bits()
        );
    }
}
