//! Shared report builders used by the per-table/per-figure binaries.

use bine_sched::Collective;

use crate::report::{
    algorithm_letter, format_bytes, geometric_mean, max, mean, render_table, BoxPlot,
};
use crate::runner::{compare_vs_binomial, heatmap, improvement_distribution, Evaluator};
use crate::systems::System;

/// Builds the per-collective "Comparison with Binomial Trees" table for one
/// system (the layout of Tables 3, 4 and 5).
pub fn comparison_table(system: System) -> String {
    let mut eval = Evaluator::new(system.clone());
    let mut rows = Vec::new();
    for collective in Collective::ALL {
        let h2h = compare_vs_binomial(&mut eval, collective);
        let avg_gain =
            (geometric_mean(&h2h.gains.iter().map(|g| 1.0 + g).collect::<Vec<_>>()) - 1.0) * 100.0;
        let max_gain = max(&h2h.gains) * 100.0;
        let avg_drop =
            (geometric_mean(&h2h.drops.iter().map(|d| 1.0 + d).collect::<Vec<_>>()) - 1.0) * 100.0;
        let max_drop = max(&h2h.drops) * 100.0;
        let avg_red = mean(&h2h.traffic_reductions) * 100.0;
        let max_red = max(&h2h.traffic_reductions) * 100.0;
        rows.push(vec![
            collective.name().to_string(),
            format!("{:.0}%", h2h.win_fraction() * 100.0),
            format!("{avg_gain:.0}%/{max_gain:.0}%"),
            format!("{:.0}%", h2h.loss_fraction() * 100.0),
            format!("{avg_drop:.0}%/{max_drop:.0}%"),
            format!("{avg_red:.0}%/{max_red:.0}%"),
        ]);
    }
    format!(
        "Comparison with binomial trees on {} ({} configurations per collective)\n{}",
        system.name,
        system.node_counts.len() * system.vector_sizes.len(),
        render_table(
            &[
                "Coll.",
                "%Win",
                "Avg/Max Gain",
                "%Loss",
                "Avg/Max Drop",
                "Avg/Max Traffic Red."
            ],
            &rows,
        )
    )
}

/// Builds the best-algorithm heatmap for one collective on one system (the
/// layout of Fig. 9a / Fig. 10a): rows are vector sizes, columns node counts.
pub fn heatmap_table(system: System, collective: Collective) -> String {
    let mut eval = Evaluator::new(system.clone());
    let cells = heatmap(&mut eval, collective);
    let node_counts: Vec<usize> = system.node_counts.clone();
    let sizes: Vec<u64> = system.vector_sizes.clone();
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![format_bytes(n)];
        for &nodes in &node_counts {
            let cell = cells
                .iter()
                .find(|c| c.nodes == nodes && c.vector_bytes == n);
            row.push(match cell {
                None => "-".to_string(),
                Some(c) => match c.bine_advantage {
                    Some(adv) => format!("{adv:.2}"),
                    None => algorithm_letter(&c.best_algorithm).to_string(),
                },
            });
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["Vector".to_string()];
    header.extend(node_counts.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    format!(
        "Best algorithm per (vector size x node count) for {} on {}\n\
         (number = Bine wins by that factor over the next-best algorithm;\n\
          letter = best non-Bine algorithm: N binomial/butterfly, R ring, B Bruck, S swing, P pairwise)\n{}{}",
        collective.name(),
        system.name,
        render_table(&header_refs, &rows),
        tuned_table(&mut eval, collective)
    )
}

/// The `tuned` companion grid of a heatmap: what the committed decision
/// table picks at every (vector size × node count) point — segment suffix
/// included, so the pipelining-driven picks are visible next to the
/// synchronous-model heatmap above. Empty when the system has no committed
/// `tuning/` table for the collective.
fn tuned_table(eval: &mut Evaluator, collective: Collective) -> String {
    let node_counts: Vec<usize> = eval.system().node_counts.clone();
    let sizes: Vec<u64> = eval.system().vector_sizes.clone();
    if eval
        .tuned_pick(collective, node_counts[0], sizes[0])
        .is_none()
    {
        return String::new();
    }
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![format_bytes(n)];
        for &nodes in &node_counts {
            row.push(match eval.tuned_pick(collective, nodes, n) {
                None => "-".to_string(),
                Some(t) => bine_tune::tuned_name(t.algorithm, t.segments),
            });
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["tuned".to_string()];
    header.extend(node_counts.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    format!(
        "\ntuned: decision-table pick per (vector size x node count), tuning/{}.json\n{}",
        bine_tune::slug(eval.system().name),
        render_table(&header_refs, &rows)
    )
}

/// Builds the all-collective improvement summary for one system (the layout
/// of Fig. 9b / 10b / 11a / 11b): for each collective, the share of
/// configurations where a Bine algorithm beats every other algorithm and the
/// distribution of the improvement in those configurations.
pub fn improvement_summary(system: System) -> String {
    let mut eval = Evaluator::new(system.clone());
    let mut rows = Vec::new();
    for collective in Collective::ALL {
        let (win_fraction, improvements) = improvement_distribution(&mut eval, collective);
        let bp = BoxPlot::of(&improvements);
        rows.push(vec![
            collective.name().to_string(),
            format!("{:.0}%", win_fraction * 100.0),
            if improvements.is_empty() {
                "-".into()
            } else {
                format!("{:.1}%", bp.min)
            },
            if improvements.is_empty() {
                "-".into()
            } else {
                format!("{:.1}%", bp.q1)
            },
            if improvements.is_empty() {
                "-".into()
            } else {
                format!("{:.1}%", bp.median)
            },
            if improvements.is_empty() {
                "-".into()
            } else {
                format!("{:.1}%", bp.q3)
            },
            if improvements.is_empty() {
                "-".into()
            } else {
                format!("{:.1}%", bp.max)
            },
        ]);
    }
    format!(
        "Improvement of Bine over the best non-Bine algorithm on {}\n\
         (%Best = share of configurations where Bine is the overall fastest;\n\
          distribution of the improvement over those configurations)\n{}",
        system.name,
        render_table(
            &["Coll.", "%Best", "min", "q1", "median", "q3", "max"],
            &rows
        )
    )
}

/// Builds the DES-vs-synchronous comparison for one collective on one
/// system at a fixed node count: for the Bine algorithm and the binomial
/// baseline, the synchronous barrier-model time, the discrete-event
/// simulated time, and the simulated time of the `chunks`-way segmented
/// (pipelined) schedule — plus which algorithm wins under each time model.
///
/// The interesting read is the last two columns: where the winner under
/// `DES+seg` differs from the winner under `sync`, the barrier model is
/// predicting the wrong algorithm choice — the crossover has moved.
pub fn des_comparison_table(
    system: System,
    collective: Collective,
    nodes: usize,
    chunks: usize,
) -> String {
    let mut eval = Evaluator::new(system.clone());
    let mut rows = Vec::new();
    for &n in &system.vector_sizes {
        let bine = eval.bine_algorithm(collective, n).to_string();
        let base = eval.binomial_algorithm(collective, n).to_string();
        let bine_sync = eval.evaluate(collective, &bine, nodes, n).time_us;
        let base_sync = eval.evaluate(collective, &base, nodes, n).time_us;
        let bine_des = eval.simulate(collective, &bine, nodes, n, 1);
        let base_des = eval.simulate(collective, &base, nodes, n, 1);
        // "seg" is the best of the flat and the {chunks}-way pipelined
        // schedule: pipelining is an optimisation a library would only apply
        // when it helps (small vectors lose to the extra per-chunk alpha).
        let bine_seg = eval
            .simulate(collective, &bine, nodes, n, chunks)
            .min(bine_des);
        let base_seg = eval
            .simulate(collective, &base, nodes, n, chunks)
            .min(base_des);
        let winner = |b: f64, o: f64| if b <= o { "bine" } else { "binomial" };
        // The tuned row: what the committed decision table picks here and
        // its DES time at the tuned segment count.
        let (tuned_pick, tuned_us) = match eval.simulate_tuned(collective, nodes, n) {
            Some((pick, t)) => (pick, format!("{t:.1}")),
            None => ("-".to_string(), "-".to_string()),
        };
        rows.push(vec![
            format_bytes(n),
            format!("{bine_sync:.1}"),
            format!("{bine_des:.1}"),
            format!("{bine_seg:.1}"),
            format!("{base_sync:.1}"),
            format!("{base_des:.1}"),
            format!("{base_seg:.1}"),
            winner(bine_sync, base_sync).to_string(),
            winner(bine_seg, base_seg).to_string(),
            tuned_pick,
            tuned_us,
        ]);
    }
    format!(
        "Synchronous barrier model vs discrete-event simulation for {} on {} ({nodes} nodes)\n\
         (times in us; seg = best of the flat and the {chunks}-chunk pipelined schedule;\n\
          win(..) = predicted winner under each time model; tuned = the committed\n\
          decision table's pick and its DES time at the tuned segment count)\n{}",
        collective.name(),
        system.name,
        render_table(
            &[
                "Vector",
                "bine sync",
                "bine DES",
                "bine seg",
                "binom sync",
                "binom DES",
                "binom seg",
                "win(sync)",
                "win(DES+seg)",
                "tuned",
                "tuned us"
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_has_one_row_per_collective() {
        let t = comparison_table(System::marenostrum5());
        for c in Collective::ALL {
            assert!(t.contains(c.name()), "missing {}", c.name());
        }
    }

    #[test]
    fn heatmap_table_mentions_every_node_count() {
        let t = heatmap_table(System::marenostrum5(), Collective::Allreduce);
        for nodes in System::marenostrum5().node_counts {
            assert!(t.contains(&nodes.to_string()));
        }
    }

    #[test]
    fn des_comparison_table_has_one_row_per_vector_size() {
        let t = des_comparison_table(System::marenostrum5(), Collective::Allreduce, 16, 4);
        for n in System::marenostrum5().vector_sizes {
            assert!(t.contains(&crate::report::format_bytes(n)));
        }
        assert!(t.contains("win(DES+seg)"));
        // The tuned columns must carry real picks from the committed MN5
        // table, not just the caption word or "-" placeholders.
        assert!(t.contains("tuned us"));
        assert!(
            t.contains("bine-small") || t.contains("bine-large"),
            "tuned column has no committed pick:\n{t}"
        );
    }

    #[test]
    fn heatmap_table_includes_the_tuned_companion_grid_when_tables_exist() {
        // The committed tuning/ tables cover allreduce on every system; the
        // heatmap must then carry the decision-table companion grid.
        let t = heatmap_table(System::marenostrum5(), Collective::Allreduce);
        assert!(
            t.contains("tuning/marenostrum5.json"),
            "missing tuned grid:\n{t}"
        );
        // Alltoall is tuned since the collective-space extension, so its
        // heatmap carries the companion grid too.
        let t = heatmap_table(System::marenostrum5(), Collective::Alltoall);
        assert!(
            t.contains("tuning/marenostrum5.json"),
            "missing tuned alltoall grid:\n{t}"
        );
        // Reduce has no committed table: no companion grid, no noise.
        let t = heatmap_table(System::marenostrum5(), Collective::Reduce);
        assert!(!t.contains("tuning/"));
    }
}
