//! The CI perf-regression gate over `BENCH_exec.json`.
//!
//! `bench_exec` records the ns/op of every executor as a flat JSON report;
//! the committed `BENCH_exec.json` is the perf baseline of the repository
//! and CI re-records `BENCH_exec.ci.json` on every push. This module diffs
//! the two: if any **compiled-executor** entry (name containing
//! `/compiled/` — the data plane the repo's headline speedup lives on),
//! **discrete-event simulator** entry (name containing `/sim/` — the time
//! model the 512-node tuning horizon depends on) or **serving-layer
//! throughput** entry (name containing `/serve/` — the worker-normalized
//! ns/request of the concurrent `ServiceSelector` request path, the
//! core-count-robust statistic) regresses by more than the threshold, the
//! gate fails and CI goes red. Interpreter baselines
//! (`reference`, `sequential`, `sim-reference`, the single-threaded
//! `/serial/` selector), the thread pool, the one-off `compile` cost and
//! the `/serve-latency/` p99 tail are reported for context but not gated —
//! they are either deliberately slow baselines or too scheduler-noisy for
//! a hard threshold (tail latency in particular depends on the runner's
//! core count and co-scheduled load).
//!
//! The gate is exercised end to end by `tests/` below: a synthetic 2×
//! slowdown of a compiled entry must fail it, anything inside the threshold
//! must pass.

/// Relative slowdown above which the gate fails (0.25 = +25% ns/op).
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// One benchmark entry: name and ns/op.
pub type BenchEntry = (String, f64);

/// Parses the flat `BENCH_exec.json` format written by `bench_exec`:
/// a `"benches"` object of `"name": ns_per_op` pairs.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut entries = Vec::new();
    let mut in_benches = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("\"benches\"") {
            in_benches = true;
            continue;
        }
        if !in_benches {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let line = line.strip_suffix(',').unwrap_or(line);
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("line {}: expected \"name\": value", lineno + 1));
        };
        let name = name.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad ns/op for {name}: {e}", lineno + 1))?;
        entries.push((name, value));
    }
    if entries.is_empty() {
        return Err("no \"benches\" entries found".into());
    }
    Ok(entries)
}

/// Whether an entry is hard-gated (see the module docs). `/sim-reference/`
/// entries deliberately do not match `/sim/`: the reference simulator is a
/// baseline, not a perf surface. Likewise `/serial/` (the single-threaded
/// selector baseline) and `/serve-latency/` (scheduler-noisy p99 tail) do
/// not match `/serve/`. `/serve/` and `/adaptive/` entries whose last
/// segment is one of the service's health counters (`fallbacks`,
/// `timeouts`, `retries`, and the adaptive loop's `overrides`, `reverts`,
/// `reevals`) are also exempt: they are *observations*, not perf numbers —
/// a chaos or timing wobble that degrades a few requests, or an adaptive
/// run that re-checks its override once more, must not fail the perf gate
/// (the availability and convergence contracts are enforced by
/// `chaos_bench` and `adaptive_bench` instead).
pub fn is_gated(name: &str) -> bool {
    let health_counter = name.rsplit('/').next().is_some_and(|tail| {
        matches!(
            tail,
            "fallbacks" | "timeouts" | "retries" | "overrides" | "reverts" | "reevals"
        )
    });
    (name.contains("/compiled/")
        || name.contains("/sim/")
        || name.contains("/serve/")
        || name.contains("/adaptive/"))
        && !health_counter
}

/// Verdict for one benchmark entry present in the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Baseline ns/op (committed `BENCH_exec.json`), `None` for a benchmark
    /// that only exists in the current report.
    pub baseline: Option<f64>,
    /// Benchmark name.
    pub name: String,
    /// Current ns/op (`BENCH_exec.ci.json`), `None` if the entry vanished.
    pub current: Option<f64>,
    /// Whether this entry participates in the hard gate.
    pub gated: bool,
}

impl GateRow {
    /// current / baseline, i.e. > 1 means slower.
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => Some(c / b.max(1e-9)),
            _ => None,
        }
    }

    /// Whether this row fails the gate at `threshold`.
    pub fn fails(&self, threshold: f64) -> bool {
        if !self.gated {
            return false;
        }
        match self.ratio() {
            // A gated benchmark that disappeared is a regression too: it
            // means the perf trajectory silently lost coverage. A NaN ratio
            // (corrupt recording) also fails rather than slipping through a
            // `>` comparison.
            None => true,
            Some(r) => r.is_nan() || r > 1.0 + threshold,
        }
    }
}

/// Outcome of diffing a current report against the baseline.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// One row per baseline entry, in baseline order.
    pub rows: Vec<GateRow>,
    /// The slowdown threshold the gate ran with.
    pub threshold: f64,
}

impl GateOutcome {
    /// Names of the gated entries that fail.
    pub fn failures(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.fails(self.threshold))
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Renders the diff as a GitHub-flavoured markdown table (used for the
    /// CI step summary).
    pub fn markdown(&self) -> String {
        let mut out = String::from(
            "## Perf-regression gate (compiled executors)\n\n\
             | benchmark | baseline ns/op | current ns/op | ratio | gate |\n\
             |---|---:|---:|---:|:---:|\n",
        );
        for r in &self.rows {
            let baseline = match r.baseline {
                Some(b) => format!("{b:.0}"),
                None => "new".into(),
            };
            let current = match r.current {
                Some(c) => format!("{c:.0}"),
                None => "missing".into(),
            };
            let ratio = match r.ratio() {
                Some(q) => format!("{q:.2}x"),
                None => "-".into(),
            };
            let verdict = if !r.gated {
                "–"
            } else if r.fails(self.threshold) {
                "❌"
            } else {
                "✅"
            };
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                r.name, baseline, current, ratio, verdict
            ));
        }
        let failures = self.failures();
        if failures.is_empty() {
            out.push_str(&format!(
                "\nAll gated entries within +{:.0}% of the committed baseline.\n",
                self.threshold * 100.0
            ));
        } else {
            out.push_str(&format!(
                "\n**FAIL**: {} gated entr{} regressed beyond +{:.0}%: {}\n\n\
                 If this is an intentional perf change (or baseline hardware drift, not a \
                 code change), regenerate `BENCH_exec.json` with the `bench_exec` bin — or \
                 from the uploaded `BENCH_exec` artifact — and commit it.\n",
                failures.len(),
                if failures.len() == 1 { "y" } else { "ies" },
                self.threshold * 100.0,
                failures.join(", ")
            ));
        }
        out
    }
}

/// Diffs `current` against `baseline` at `threshold`.
///
/// Entries present only in `current` (benchmarks added without regenerating
/// the committed baseline) are reported as un-gated `new` rows so the
/// coverage gap is visible instead of silent.
pub fn gate(baseline: &[BenchEntry], current: &[BenchEntry], threshold: f64) -> GateOutcome {
    let mut rows: Vec<GateRow> = baseline
        .iter()
        .map(|(name, base)| GateRow {
            name: name.clone(),
            baseline: Some(*base),
            current: current.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns),
            gated: is_gated(name),
        })
        .collect();
    for (name, ns) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            rows.push(GateRow {
                name: name.clone(),
                baseline: None,
                current: Some(*ns),
                gated: false,
            });
        }
    }
    GateOutcome { rows, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benches": {
    "allreduce-bine-large/reference/64": 1000000.0,
    "allreduce-bine-large/compiled/64": 1000.0,
    "allreduce-bine-large/pool/64": 2000.0,
    "allreduce-bine-large/compile/64": 500.0,
    "allreduce-bine-large/sim/64": 300000.0,
    "allreduce-bine-large/sim-reference/64": 9000000.0,
    "select-mix/serve/worker-ns-per-req": 500.0,
    "select-mix/serve-latency/p99-ns": 1500.0,
    "select-mix/serial/ns-per-req": 450.0
  },
  "unit": "ns/op (median)"
}
"#;

    fn entries() -> Vec<BenchEntry> {
        parse_bench_json(SAMPLE).unwrap()
    }

    #[test]
    fn parses_the_bench_exec_format() {
        let e = entries();
        assert_eq!(e.len(), 9);
        assert_eq!(e[1].0, "allreduce-bine-large/compiled/64");
        assert_eq!(e[1].1, 1000.0);
        assert!(parse_bench_json("{}").is_err());
    }

    #[test]
    fn only_compiled_des_and_serve_entries_are_gated() {
        assert!(is_gated("allreduce-bine-large/compiled/256"));
        assert!(is_gated("allreduce-bine-large/sim/256"));
        assert!(is_gated("select-mix/serve/worker-ns-per-req"));
        assert!(!is_gated("allreduce-bine-large/reference/256"));
        assert!(!is_gated("allreduce-bine-large/sim-reference/256"));
        assert!(!is_gated("allreduce-bine-large/pool/256"));
        assert!(!is_gated("allreduce-bine-large/compile/256"));
        assert!(!is_gated("select-mix/serial/ns-per-req"));
        assert!(!is_gated("select-mix/serve-latency/p99-ns"));
    }

    #[test]
    fn serve_degradation_counters_are_observations_not_perf_gates() {
        assert!(!is_gated("select-mix/serve/fallbacks"));
        assert!(!is_gated("select-mix/serve/timeouts"));
        assert!(!is_gated("select-mix/serve/retries"));
        // The throughput statistic next to them stays hard-gated.
        assert!(is_gated("select-mix/serve/worker-ns-per-req"));
    }

    #[test]
    fn adaptive_timings_are_gated_but_its_counters_are_not() {
        assert!(is_gated("select-mix/adaptive/observe-ns"));
        assert!(is_gated("select-mix/adaptive/overridden-hit-ns"));
        assert!(!is_gated("select-mix/adaptive/overrides"));
        assert!(!is_gated("select-mix/adaptive/reverts"));
        assert!(!is_gated("select-mix/adaptive/reevals"));
    }

    #[test]
    fn a_serve_throughput_slowdown_fails_but_the_p99_tail_may_drift() {
        let mut slowed = entries();
        for e in &mut slowed {
            if e.0.contains("/serve/") || e.0.contains("/serve-latency/") {
                e.1 *= 2.0;
            }
        }
        let outcome = gate(&entries(), &slowed, DEFAULT_THRESHOLD);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures(),
            vec!["select-mix/serve/worker-ns-per-req"]
        );
    }

    #[test]
    fn a_des_slowdown_fails_the_gate_like_an_executor_slowdown() {
        let mut slowed = entries();
        for e in &mut slowed {
            if e.0.contains("/sim/") {
                e.1 *= 2.0;
            }
        }
        let outcome = gate(&entries(), &slowed, DEFAULT_THRESHOLD);
        assert!(!outcome.passed());
        assert_eq!(outcome.failures(), vec!["allreduce-bine-large/sim/64"]);
    }

    #[test]
    fn identical_reports_pass() {
        let outcome = gate(&entries(), &entries(), DEFAULT_THRESHOLD);
        assert!(outcome.passed());
        assert!(outcome.markdown().contains("All gated entries"));
    }

    #[test]
    fn a_deliberate_2x_slowdown_fails_the_gate() {
        // The acceptance scenario: double a compiled executor's ns/op.
        let mut slowed = entries();
        for e in &mut slowed {
            if e.0.contains("/compiled/") {
                e.1 *= 2.0;
            }
        }
        let outcome = gate(&entries(), &slowed, DEFAULT_THRESHOLD);
        assert!(!outcome.passed());
        assert_eq!(outcome.failures(), vec!["allreduce-bine-large/compiled/64"]);
        assert!(outcome.markdown().contains("**FAIL**"));
    }

    #[test]
    fn ungated_entries_may_regress_freely() {
        let mut slowed = entries();
        for e in &mut slowed {
            if !is_gated(&e.0) {
                e.1 *= 10.0;
            }
        }
        assert!(gate(&entries(), &slowed, DEFAULT_THRESHOLD).passed());
    }

    #[test]
    fn slowdowns_within_the_threshold_pass() {
        let mut slowed = entries();
        for e in &mut slowed {
            e.1 *= 1.2;
        }
        assert!(gate(&entries(), &slowed, DEFAULT_THRESHOLD).passed());
        let mut slower = entries();
        for e in &mut slower {
            e.1 *= 1.26;
        }
        assert!(!gate(&entries(), &slower, DEFAULT_THRESHOLD).passed());
    }

    #[test]
    fn a_vanished_gated_entry_fails() {
        let current: Vec<BenchEntry> = entries()
            .into_iter()
            .filter(|(n, _)| !n.contains("/compiled/"))
            .collect();
        let outcome = gate(&entries(), &current, DEFAULT_THRESHOLD);
        assert!(!outcome.passed());
        assert!(outcome.markdown().contains("missing"));
    }

    #[test]
    fn a_nan_recording_fails_rather_than_passing() {
        let mut corrupt = entries();
        for e in &mut corrupt {
            if e.0.contains("/compiled/") {
                e.1 = f64::NAN;
            }
        }
        assert!(!gate(&entries(), &corrupt, DEFAULT_THRESHOLD).passed());
    }

    #[test]
    fn entries_only_in_the_current_report_are_surfaced_as_new() {
        let mut current = entries();
        current.push(("allreduce-bine-large/compiled/4096".into(), 123.0));
        let outcome = gate(&entries(), &current, DEFAULT_THRESHOLD);
        // Visible in the report, but not gated (no baseline to compare to).
        assert!(outcome.passed());
        let md = outcome.markdown();
        assert!(md.contains("allreduce-bine-large/compiled/4096"));
        assert!(md.contains("| new |"));
    }
}
