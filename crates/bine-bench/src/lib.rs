//! # bine-bench
//!
//! The benchmark harness of the Bine Trees reproduction: one binary per
//! table/figure of the paper's evaluation (see `src/bin/`), built on the
//! shared modules:
//!
//! * [`systems`] — the four evaluation targets (LUMI, Leonardo,
//!   MareNostrum 5, Fugaku) with their node counts and vector sizes,
//! * [`runner`] — schedule construction + cost-model evaluation for every
//!   (collective, algorithm, nodes, vector size) configuration, the pruned
//!   best-algorithm sweeps behind the heatmaps, and the bridge to the
//!   `bine-tune` decision tables (`Evaluator::tuned_pick`),
//! * [`report`] — geometric means, percentiles, box-plot summaries and table
//!   rendering,
//! * [`tables`] — the shared table/figure builders,
//! * [`perfgate`] — the CI perf-regression gate over `BENCH_exec.json`,
//! * [`serve`] — the serving-layer benchmark: requests/sec and p99/p999 latency
//!   of the concurrent `bine_tune::ServiceSelector` against the
//!   single-threaded selector baseline (the `serve_bench` bin front-end),
//! * [`chaos`] — the failure-injection harness: a request storm with seeded
//!   compile panics and a faulted-DES verification pass, asserting 100%
//!   answer availability with fallback answers bit-identical to the
//!   binomial baseline (the `chaos_bench` bin front-end, a CI smoke step),
//! * [`crash`] — the crash-fault harness: a storm of executions under
//!   seeded dead-rank plans, asserting that every stall either recovers by
//!   shrink-and-retry bit-identically to a direct survivor-communicator
//!   run (finals and traffic) or surfaces as a typed error (the
//!   `crash_chaos` bin front-end, a CI smoke step).
//!
//! The `tune` binary regenerates the committed `tuning/*.json` decision
//! tables from [`runner::tune_target`]; the `tune_gate` binary is the CI
//! drift gate over them. Criterion micro-benchmarks of schedule
//! generation, execution and traffic analysis live under `benches/`.
//!
//! ## Quick example
//!
//! ```
//! use bine_bench::{Evaluator, System};
//! use bine_sched::Collective;
//!
//! // One Fig. 9-style grid point: modelled allreduce time and global-link
//! // traffic for bine-large vs the recursive-doubling butterfly at 16 LUMI
//! // nodes, 1 MiB vectors.
//! let mut eval = Evaluator::new(System::lumi());
//! let bine = eval.evaluate(Collective::Allreduce, "bine-large", 16, 1 << 20);
//! let rd = eval.evaluate(Collective::Allreduce, "recursive-doubling", 16, 1 << 20);
//! assert!(bine.time_us > 0.0 && rd.time_us > 0.0);
//! // The paper's headline: Bine's locality keeps bytes off the global links.
//! assert!(bine.global_bytes < rd.global_bytes);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod chaos;
pub mod crash;
pub mod perfgate;
pub mod report;
pub mod runner;
pub mod serve;
pub mod systems;
pub mod tables;

pub use runner::{compare_vs_binomial, heatmap, improvement_distribution, Evaluator, HeadToHead};
pub use systems::{paper_vector_sizes, System, SystemKind, SMALL_VECTOR_THRESHOLD};

/// Elements per block used by the execution benchmarks at a given rank
/// count, shared by `benches/execution.rs` and the `bench_exec` recorder so
/// their ns/op stay comparable. Scaled down at the largest sizes because the
/// seed reference interpreter's per-step snapshot is O(ranks × elements).
pub fn exec_bench_elems(p: usize) -> usize {
    match p {
        0..=64 => 64,
        65..=256 => 16,
        _ => 1,
    }
}
