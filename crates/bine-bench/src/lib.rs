//! # bine-bench
//!
//! The benchmark harness of the Bine Trees reproduction: one binary per
//! table/figure of the paper's evaluation (see `src/bin/`), built on three
//! shared modules:
//!
//! * [`systems`] — the four evaluation targets (LUMI, Leonardo,
//!   MareNostrum 5, Fugaku) with their node counts and vector sizes,
//! * [`runner`] — schedule construction + cost-model evaluation for every
//!   (collective, algorithm, nodes, vector size) configuration,
//! * [`report`] — geometric means, percentiles, box-plot summaries and table
//!   rendering,
//! * [`perfgate`] — the CI perf-regression gate over `BENCH_exec.json`.
//!
//! Criterion micro-benchmarks of schedule generation, execution and traffic
//! analysis live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod perfgate;
pub mod report;
pub mod runner;
pub mod systems;
pub mod tables;

pub use runner::{compare_vs_binomial, heatmap, improvement_distribution, Evaluator, HeadToHead};
pub use systems::{paper_vector_sizes, System, SystemKind, SMALL_VECTOR_THRESHOLD};

/// Elements per block used by the execution benchmarks at a given rank
/// count, shared by `benches/execution.rs` and the `bench_exec` recorder so
/// their ns/op stay comparable. Scaled down at the largest sizes because the
/// seed reference interpreter's per-step snapshot is O(ranks × elements).
pub fn exec_bench_elems(p: usize) -> usize {
    match p {
        0..=64 => 64,
        65..=256 => 16,
        _ => 1,
    }
}
