//! The serving-layer benchmark harness: requests/sec and tail latency of
//! [`bine_tune::ServiceSelector`] under multi-threaded load, against the
//! single-threaded [`bine_tune::Selector`] baseline.
//!
//! One *request* is the full serving hot path: resolve the tuned pick for a
//! `(collective, nodes, bytes)` query and fetch its compiled schedule from
//! the cache (compiling once, under single-flight, when cold). The query
//! mix sweeps all four tuned collectives across node counts and vector
//! sizes, so requests spread over many distinct cache entries — and, in the
//! sharded service, over many independent lock stripes.
//!
//! [`measure`] is shared by the `serve_bench` bin (interactive report, CI
//! smoke) and `bench_exec` (which records the `/serve/` entries into
//! `BENCH_exec.json`, hard-gated by `perf_gate` exactly like `/compiled/`
//! and `/sim/`). All recorded numbers are nanoseconds, lower-is-better,
//! best-of-`repeats` — the same min statistic the rest of the perf
//! trajectory uses, for the same reason: it is the most reproducible
//! number across noisy runners.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use bine_sched::Collective;
use bine_tune::{Selector, ServiceSelector};

/// Configuration of one serving benchmark run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// System whose committed decision table is served.
    pub system: String,
    /// Concurrent worker threads (defaults to the available parallelism).
    pub threads: usize,
    /// Requests issued per thread per repeat.
    pub requests_per_thread: usize,
    /// Timed repeats; the best (minimum) wall/p99 is reported.
    pub repeats: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            system: "LUMI".into(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            requests_per_thread: 2000,
            repeats: 5,
        }
    }
}

/// Outcome of one serving benchmark run (all times nanoseconds).
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Worker threads that served the concurrent phase.
    pub threads: usize,
    /// Requests per repeat across all threads.
    pub total_requests: u64,
    /// Best wall time of a concurrent repeat.
    pub best_wall_ns: f64,
    /// Aggregate inverse throughput of the best repeat
    /// (`best_wall_ns / total_requests`). Scales with the machine's core
    /// count, so it is reported but not gated.
    pub ns_per_req: f64,
    /// Worker-normalized request cost (`ns_per_req × threads`, i.e. wall
    /// time per request *per worker* at full load, contention included).
    /// Roughly invariant to the runner's core count — a 1-core and a
    /// 16-core machine agree unless the serving path itself got slower or
    /// more contended — which is what makes it safe to hard-gate across
    /// machines.
    pub worker_ns_per_req: f64,
    /// Best 99th-percentile single-request latency over the repeats.
    pub p99_ns: f64,
    /// Best 99.9th-percentile single-request latency over the repeats —
    /// the deep tail where lock convoys and single-flight follower waits
    /// live; recorded next to the p99, equally ungated.
    pub p999_ns: f64,
    /// Throughput of the best repeat, requests per second.
    pub requests_per_sec: f64,
    /// Single-threaded `Selector::compiled` baseline, ns per request
    /// (best-of-repeats, warm cache).
    pub serial_ns_per_req: f64,
    /// `serial_ns_per_req / ns_per_req`: how many serial selectors this
    /// service replaced.
    pub speedup_vs_serial: f64,
    /// Schedules compiled by the service over the whole run; with a warm
    /// cache and single-flight this equals [`ServeMeasurement::distinct`].
    pub compilations: u64,
    /// Distinct cache entries the query mix resolves to.
    pub distinct: usize,
}

/// The benchmark's query mix: all four tuned collectives × power-of-two
/// node counts × sizes spanning the latency- and bandwidth-bound regimes.
/// Every query resolves against the committed tables (16 is the smallest
/// tuned node row; 8 exercises the below-grid clamp).
pub fn queries() -> Vec<(Collective, usize, u64)> {
    let mut q = Vec::new();
    for &collective in &[
        Collective::Allreduce,
        Collective::Allgather,
        Collective::ReduceScatter,
        Collective::Broadcast,
    ] {
        for &nodes in &[8usize, 16, 32, 64] {
            for &bytes in &[64u64, 8 << 10, 1 << 20, 16 << 20] {
                q.push((collective, nodes, bytes));
            }
        }
    }
    q
}

/// Index of the `q`-quantile element of a sorted latency vector
/// (`q = 0.99` for the p99, `0.999` for the p999).
fn tail_index(len: usize, q: f64) -> usize {
    ((len as f64 * q).ceil() as usize).clamp(1, len) - 1
}

/// Runs the serving benchmark: a warmed single-threaded [`Selector`]
/// baseline, then `threads` workers hammering one shared
/// [`ServiceSelector`], both over the same query mix. Errors only when the
/// committed decision tables cannot be loaded.
pub fn measure(opts: &ServeOptions) -> Result<ServeMeasurement, String> {
    let queries = queries();
    let threads = opts.threads.max(1);
    let repeats = opts.repeats.max(1);
    let requests_per_thread = opts.requests_per_thread.max(queries.len());

    // --- single-threaded baseline: Selector::compiled on a warm cache ---
    let mut serial = Selector::load(&opts.system)?.with_cache_capacity(queries.len());
    for &(c, n, b) in &queries {
        serial.compiled(c, n, b);
    }
    let serial_requests = requests_per_thread;
    let mut serial_best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        for i in 0..serial_requests {
            let (c, n, b) = queries[i % queries.len()];
            std::hint::black_box(serial.compiled(c, n, b));
        }
        let ns = start.elapsed().as_nanos() as f64 / serial_requests as f64;
        serial_best = serial_best.min(ns);
    }

    // --- concurrent service ---
    let service = ServiceSelector::load_default()?;
    let sys = service
        .system_index(&opts.system)
        .ok_or_else(|| format!("system {} has no committed table", opts.system))?;
    // Warm pass: populates the cache (and counts the distinct entries).
    for &(c, n, b) in &queries {
        service.compiled_at(sys, c, n, b);
    }
    let distinct = service.cached_schedules();

    let total_requests = (threads * requests_per_thread) as u64;
    let mut best_wall = f64::INFINITY;
    let mut best_p99 = f64::INFINITY;
    let mut best_p999 = f64::INFINITY;
    for _ in 0..repeats {
        // Throughput phase: no per-request clocks — two `Instant` reads per
        // request would dominate a ~50 ns warm hit. Wall time is taken from
        // inside the workers — first barrier release to last request
        // completion — because on a saturated machine the spawning thread
        // may not get the CPU back until the workers are already done, so
        // any clock it reads races with them.
        let barrier = Barrier::new(threads);
        let spans: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        let epoch = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (service, queries, barrier, spans, epoch) =
                    (&service, &queries, &barrier, &spans, &epoch);
                scope.spawn(move || {
                    barrier.wait();
                    let begin = epoch.elapsed().as_nanos() as u64;
                    for i in 0..requests_per_thread {
                        let (c, n, b) = queries[(i + t * 7) % queries.len()];
                        std::hint::black_box(service.compiled_at(sys, c, n, b));
                    }
                    let end = epoch.elapsed().as_nanos() as u64;
                    spans.lock().unwrap().push((begin, end));
                });
            }
        });
        let spans = spans.into_inner().unwrap();
        let begin = spans.iter().map(|&(b, _)| b).min().unwrap_or(0);
        let end = spans.iter().map(|&(_, e)| e).max().unwrap_or(1);
        let wall = (end.saturating_sub(begin) as f64).max(1.0);
        best_wall = best_wall.min(wall);

        // Latency phase: same contention (all threads hammering), but each
        // request individually timed; p99 over the merged samples.
        let barrier = Barrier::new(threads);
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let sampled = (requests_per_thread / 4).max(queries.len());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (service, queries, barrier, latencies) =
                    (&service, &queries, &barrier, &latencies);
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(sampled);
                    barrier.wait();
                    for i in 0..sampled {
                        let (c, n, b) = queries[(i + t * 7) % queries.len()];
                        let start = Instant::now();
                        std::hint::black_box(service.compiled_at(sys, c, n, b));
                        local.push(start.elapsed().as_nanos() as u64);
                    }
                    latencies.lock().unwrap().append(&mut local);
                });
            }
        });
        let mut lat = latencies.into_inner().unwrap();
        lat.sort_unstable();
        best_p99 = best_p99.min(lat[tail_index(lat.len(), 0.99)] as f64);
        best_p999 = best_p999.min(lat[tail_index(lat.len(), 0.999)] as f64);
    }

    let ns_per_req = best_wall / total_requests as f64;
    Ok(ServeMeasurement {
        threads,
        total_requests,
        best_wall_ns: best_wall,
        ns_per_req,
        worker_ns_per_req: ns_per_req * threads as f64,
        p99_ns: best_p99,
        p999_ns: best_p999,
        requests_per_sec: 1e9 / ns_per_req,
        serial_ns_per_req: serial_best,
        speedup_vs_serial: serial_best / ns_per_req,
        compilations: service.compilations(),
        distinct,
    })
}

/// The `BENCH_exec.json` entries of a measurement (ns, lower-is-better).
/// The `/serve/` entry is the **worker-normalized** request cost — the
/// core-count-robust throughput statistic (see
/// [`ServeMeasurement::worker_ns_per_req`]) — and is hard-gated by
/// `perf_gate`. The p99/p999 tails and the serial baseline are recorded
/// for context but ungated (`/serve-latency/` deliberately does not match
/// `/serve/`, like `/sim-reference/` vs `/sim/`): the tail is
/// thread-count- and scheduler-dependent, exactly the noise class the
/// gate excludes. Raw aggregate throughput lands in the report's
/// `serve_requests_per_sec` summary field.
pub fn bench_entries(m: &ServeMeasurement) -> Vec<(String, f64)> {
    vec![
        (
            "select-mix/serve/worker-ns-per-req".into(),
            m.worker_ns_per_req,
        ),
        ("select-mix/serve-latency/p99-ns".into(), m.p99_ns),
        ("select-mix/serve-latency/p999-ns".into(), m.p999_ns),
        ("select-mix/serial/ns-per-req".into(), m.serial_ns_per_req),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_resolves_against_the_committed_tables() {
        let service = ServiceSelector::load_default().expect("committed tables");
        let sys = service.system_index("LUMI").expect("LUMI table");
        for (c, n, b) in queries() {
            assert!(
                service.choose_at(sys, c, n, b).is_some(),
                "no pick for ({}, {n}, {b})",
                c.name()
            );
        }
    }

    #[test]
    fn tail_index_is_sane() {
        assert_eq!(tail_index(1, 0.99), 0);
        assert_eq!(tail_index(100, 0.99), 98);
        assert_eq!(tail_index(1000, 0.99), 989);
        assert_eq!(tail_index(1, 0.999), 0);
        assert_eq!(tail_index(1000, 0.999), 998);
        assert_eq!(tail_index(10_000, 0.999), 9989);
        // The p999 never precedes the p99 in the sorted vector.
        for len in [1usize, 7, 100, 1000, 4096] {
            assert!(tail_index(len, 0.999) >= tail_index(len, 0.99));
        }
    }

    #[test]
    fn a_small_run_produces_consistent_numbers() {
        let m = measure(&ServeOptions {
            system: "LUMI".into(),
            threads: 2,
            requests_per_thread: 64,
            repeats: 1,
        })
        .expect("measure");
        assert_eq!(m.threads, 2);
        assert_eq!(m.total_requests, 2 * 64);
        assert!(m.ns_per_req > 0.0 && m.p99_ns > 0.0);
        assert!(m.p999_ns >= m.p99_ns);
        assert!(m.requests_per_sec > 0.0);
        assert!(m.distinct > 0);
        // Warm cache + single-flight: one compile per distinct entry.
        assert_eq!(m.compilations, m.distinct as u64);
        let entries = bench_entries(&m);
        assert!(entries.iter().any(|(n, _)| n.contains("/serve/")));
        assert!(entries.iter().any(|(n, _)| n.ends_with("/p999-ns")));
    }
}
