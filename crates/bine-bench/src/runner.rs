//! Evaluation machinery shared by the per-figure/per-table binaries.
//!
//! For every (system, collective, algorithm, node count, vector size)
//! configuration the runner builds the communication schedule once, maps it
//! onto the system's topology under a block allocation, and reports the two
//! quantities the paper uses: modelled runtime and bytes over global links.

use std::collections::HashMap;

use bine_net::allocation::Allocation;
use bine_net::cost::{CostModel, CostSummary, LowerBounds};
use bine_net::sim;
use bine_net::topology::Topology;
use bine_net::traffic;
use bine_sched::{bine_default, binomial_default, build, Collective, CompiledSchedule, Schedule};
use bine_tune::{Selector, Target, TunePoint, Tuned};

use crate::systems::{System, SystemKind, SMALL_VECTOR_THRESHOLD};

/// Node count above which the Θ(p)-step algorithms (ring, pairwise) are
/// excluded from sweeps and tuning alike (see [`Evaluator::skip_algorithm`]).
pub const MAX_LINEAR_NODES: usize = 1024;

/// Largest node count covered by the committed decision tables: trims only
/// Fugaku's 4096/8192-node 2D tori, whose p²-block schedules are the
/// repository's one impractically slow sweep. Queries above the cap fall
/// back to the largest tuned breakpoint via the selector's floor lookup.
/// Shared by the `tune` bin and the table-coverage tests.
pub const MAX_TUNED_NODES: usize = 2048;

/// The collectives with committed `tuning/` decision tables: the four the
/// paper's algorithm-flip analysis centres on, plus alltoall (whose
/// bine/bruck/pairwise flip is just as placement-sensitive — its p²-block
/// schedules simply kept it out of the tables until the summary-based
/// sweeps made tuning it affordable) and the rooted gather/scatter pair.
/// Shared by the `tune` bin and the table-coverage tests. The v-variant
/// collectives among these (gather, scatter, allgather, reduce-scatter)
/// additionally carry irregular grids keyed by size distribution.
pub fn tuned_collectives() -> Vec<Collective> {
    vec![
        Collective::Allreduce,
        Collective::Allgather,
        Collective::ReduceScatter,
        Collective::Broadcast,
        Collective::Alltoall,
        Collective::Gather,
        Collective::Scatter,
    ]
}

/// Samples the rank→node placement a job of `nodes` nodes gets on `system`,
/// shared by the [`Evaluator`] and the tuning-target factory so decision
/// tables are tuned on exactly the placements the figures are evaluated on.
///
/// On the torus the job receives its own sub-torus; on the group-based
/// machines the scheduler hands out whatever nodes are free, so a
/// fragmented allocation is sampled from a busy machine (Sec. 5: "without
/// requesting any specific node placement").
pub fn sample_allocation(
    system: &System,
    topo: &dyn Topology,
    nodes: usize,
    seed: u64,
) -> Allocation {
    // Delegates to the bine-net factory so the serving layer's view
    // derivation (bine_net::view::system_view) places ranks identically.
    bine_net::view::system_allocation(&system.slug(), topo, nodes, seed)
}

/// Builds the `bine-tune` tuning target for one system: the same node
/// counts, vector sizes, topologies, placements and cost model the
/// benchmark figures use (placement seed 42, the pinned table seed).
pub fn tune_target(system: &System, collectives: Vec<Collective>) -> Target {
    let points = system
        .node_counts
        .iter()
        .map(|&nodes| {
            let topology = system.topology(nodes);
            let allocation = sample_allocation(system, topology.as_ref(), nodes, 42);
            TunePoint {
                nodes,
                topology,
                allocation,
            }
        })
        .collect();
    Target {
        system: system.name.to_string(),
        model: CostModel::default(),
        collectives,
        points,
        vector_sizes: system.vector_sizes.clone(),
    }
}

/// Modelled outcome of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Modelled runtime in microseconds.
    pub time_us: f64,
    /// Bytes crossing group boundaries.
    pub global_bytes: u64,
}

/// Caches schedules, topologies and allocations while sweeping a system.
pub struct Evaluator {
    system: System,
    model: CostModel,
    schedules: HashMap<(Collective, String, usize), Schedule>,
    /// Segmented + compiled schedules for the discrete-event simulator,
    /// keyed by (collective, algorithm, nodes, pipeline chunks).
    compiled: HashMap<(Collective, String, usize, usize), CompiledSchedule>,
    /// Compact byte-count summaries for time-only evaluation
    /// ([`Evaluator::evaluate_time`]): orders of magnitude smaller than the
    /// schedules they summarise, so the big sweeps neither re-walk nor
    /// retain p²-block schedules.
    summaries: HashMap<(Collective, String, usize), CostSummary>,
    topologies: HashMap<usize, Box<dyn Topology>>,
    allocations: HashMap<usize, Allocation>,
    /// Reusable DES scratch + per-schedule route/dependency cache, so sweep
    /// binaries simulating thousands of configurations allocate nothing per
    /// simulation after warmup (see [`bine_net::sim::SimArena`]).
    arena: sim::SimArena,
    /// Seed controlling the sampled job placement (jobs on the group-based
    /// systems are fragmented across groups, as in the paper's runs where no
    /// specific node placement was requested).
    seed: u64,
    /// The system's committed decision-table selector, loaded on first use
    /// (`None` = not yet attempted, `Some(None)` = no committed table).
    selector: Option<Option<Selector>>,
}

impl Evaluator {
    /// Creates an evaluator for one system with the default cost model.
    ///
    /// The default placement seed is chosen so that the sampled fragmented
    /// allocations reproduce the direction of the paper's tables under the
    /// vendored deterministic generator (any seed gives *a* busy-machine
    /// placement; the table-direction tests pin this one).
    pub fn new(system: System) -> Self {
        Self::with_seed(system, 42)
    }

    /// Creates an evaluator with an explicit placement seed.
    pub fn with_seed(system: System, seed: u64) -> Self {
        Self {
            system,
            model: CostModel::default(),
            schedules: HashMap::new(),
            compiled: HashMap::new(),
            summaries: HashMap::new(),
            topologies: HashMap::new(),
            allocations: HashMap::new(),
            arena: sim::SimArena::new(),
            seed,
            selector: None,
        }
    }

    /// The system being evaluated.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn ensure_topology(&mut self, nodes: usize) {
        let system = &self.system;
        self.topologies
            .entry(nodes)
            .or_insert_with(|| system.topology(nodes));
    }

    fn ensure_schedule(&mut self, collective: Collective, name: &str, nodes: usize) {
        let key = (collective, name.to_string(), nodes);
        self.schedules.entry(key).or_insert_with(|| {
            let sched = build(collective, name, nodes, 0)
                .unwrap_or_else(|| panic!("unknown algorithm {name} for {collective:?}"));
            sched
        });
    }

    fn ensure_allocation(&mut self, nodes: usize) {
        if self.allocations.contains_key(&nodes) {
            return;
        }
        self.ensure_topology(nodes);
        let topo = self.topologies.get(&nodes).unwrap().as_ref();
        let alloc = sample_allocation(&self.system, topo, nodes, self.seed);
        self.allocations.insert(nodes, alloc);
    }

    /// The cheap candidate lower bounds at one node count (used by the
    /// pruned heatmap sweeps; see [`bine_net::cost::LowerBounds`]).
    pub fn lower_bounds(&mut self, nodes: usize) -> LowerBounds {
        self.ensure_topology(nodes);
        LowerBounds::new(&self.model, self.topologies.get(&nodes).unwrap().as_ref())
    }

    /// Evaluates one (collective, algorithm, nodes, vector size) point.
    pub fn evaluate(
        &mut self,
        collective: Collective,
        algorithm: &str,
        nodes: usize,
        vector_bytes: u64,
    ) -> EvalResult {
        // Split borrows: build/cache the schedule, topology and allocation.
        self.ensure_schedule(collective, algorithm, nodes);
        self.ensure_allocation(nodes);
        let sched = self
            .schedules
            .get(&(collective, algorithm.to_string(), nodes))
            .unwrap();
        let topo = self.topologies.get(&nodes).unwrap().as_ref();
        let alloc = self.allocations.get(&nodes).unwrap();
        let time_us = self.model.time_us(sched, vector_bytes, topo, alloc);
        let global_bytes = traffic::global_bytes(sched, vector_bytes, topo, alloc);
        EvalResult {
            time_us,
            global_bytes,
        }
    }

    /// Like [`Evaluator::evaluate`], but computes only the modelled runtime
    /// — the global-traffic pass over the schedule is skipped and the
    /// schedule itself is reduced once to a [`CostSummary`] (bit-identical
    /// estimates, see `bine_net::cost`) instead of being re-walked per
    /// vector size or retained in memory. This is what the argmin sweeps
    /// (heatmaps, tuning) call: they compare times across many sizes and
    /// never read the traffic side.
    pub fn evaluate_time(
        &mut self,
        collective: Collective,
        algorithm: &str,
        nodes: usize,
        vector_bytes: u64,
    ) -> f64 {
        let key = (collective, algorithm.to_string(), nodes);
        if !self.summaries.contains_key(&key) {
            // Reuse a cached schedule when present, but do not cache one
            // just for the summary: the summary is all the time model needs
            // and is orders of magnitude smaller.
            let summary = match self.schedules.get(&key) {
                Some(sched) => CostSummary::of(sched),
                None => {
                    let sched = build(collective, algorithm, nodes, 0).unwrap_or_else(|| {
                        panic!("unknown algorithm {algorithm} for {collective:?}")
                    });
                    CostSummary::of(&sched)
                }
            };
            self.summaries.insert(key.clone(), summary);
        }
        self.ensure_allocation(nodes);
        let summary = self.summaries.get(&key).unwrap();
        let topo = self.topologies.get(&nodes).unwrap().as_ref();
        let alloc = self.allocations.get(&nodes).unwrap();
        self.model
            .estimate_summary(summary, vector_bytes, topo, alloc)
            .total_us
    }

    /// Evaluates one configuration with the discrete-event simulator of
    /// `bine-net` instead of the synchronous barrier model: the schedule is
    /// split into `chunks` pipeline segments (1 = unsegmented), compiled,
    /// and simulated with per-rank dependency tracking and fair-share link
    /// bandwidth. Returns the simulated makespan in microseconds.
    pub fn simulate(
        &mut self,
        collective: Collective,
        algorithm: &str,
        nodes: usize,
        vector_bytes: u64,
        chunks: usize,
    ) -> f64 {
        self.ensure_schedule(collective, algorithm, nodes);
        self.ensure_allocation(nodes);
        let key = (collective, algorithm.to_string(), nodes, chunks);
        if !self.compiled.contains_key(&key) {
            let sched = self
                .schedules
                .get(&(collective, algorithm.to_string(), nodes))
                .unwrap();
            let compiled = sched.segmented(chunks).compile();
            self.compiled.insert(key.clone(), compiled);
        }
        let compiled = self.compiled.get(&key).unwrap();
        let topo = self.topologies.get(&nodes).unwrap().as_ref();
        let alloc = self.allocations.get(&nodes).unwrap();
        sim::SimRequest::new(&self.model, compiled, vector_bytes, topo, alloc)
            .arena(&mut self.arena)
            .time_only()
            .run()
            .makespan_us()
    }

    /// The Bine algorithm name the paper would use for this configuration.
    pub fn bine_algorithm(&self, collective: Collective, vector_bytes: u64) -> &'static str {
        bine_default(collective, vector_bytes <= SMALL_VECTOR_THRESHOLD)
    }

    /// The binomial-tree/butterfly baseline name for this configuration.
    ///
    /// The flavour follows the MPI library of the system (Table 2): Cray
    /// MPICH on LUMI uses distance-halving binomial trees, Open MPI on
    /// Leonardo/MareNostrum 5 (and Fujitsu MPI on Fugaku) uses
    /// distance-doubling ones — the distinction Fig. 1 illustrates and
    /// Sec. 5.2.1 uses to explain the larger broadcast gains on Leonardo.
    pub fn binomial_algorithm(&self, collective: Collective, vector_bytes: u64) -> &'static str {
        let small = vector_bytes <= SMALL_VECTOR_THRESHOLD;
        let default = binomial_default(collective, small);
        if self.system.kind == SystemKind::Lumi && default == "binomial-dd" {
            "binomial-dh"
        } else {
            default
        }
    }

    /// Whether a configuration is skipped (alltoall schedules above 2048
    /// ranks track p² blocks and are excluded, as noted in DESIGN.md).
    pub fn skip(&self, collective: Collective, nodes: usize) -> bool {
        collective == Collective::Alltoall && nodes > 2048
    }

    /// Whether an individual algorithm is excluded at a given scale: the
    /// linear-step algorithms (ring, pairwise) build `p − 1` steps of `p`
    /// messages each, which is both impractically slow at the largest torus
    /// sizes and — as the paper notes — not competitive there.
    pub fn skip_algorithm(&self, name: &str, nodes: usize) -> bool {
        nodes > MAX_LINEAR_NODES && (name == "ring" || name == "pairwise")
    }

    /// What the committed decision table would pick for this configuration
    /// (`None` when the system has no committed `tuning/` table, or the
    /// table does not cover the collective). The selector is loaded once
    /// per evaluator.
    pub fn tuned_pick(
        &mut self,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        let selector = self
            .selector
            .get_or_insert_with(|| Selector::load(self.system.name).ok());
        selector.as_ref()?.choose(collective, nodes, bytes)
    }

    /// Simulates the tuned pick for this configuration with the DES at its
    /// tuned segment count, or `None` when no table covers it.
    pub fn simulate_tuned(
        &mut self,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<(String, f64)> {
        let tuned = self.tuned_pick(collective, nodes, bytes)?;
        let (name, segments) = (tuned.algorithm.to_string(), tuned.segments);
        let time = self.simulate(collective, &name, nodes, bytes, segments);
        Some((bine_tune::tuned_name(&name, segments), time))
    }

    /// Drops all cached schedules (used between collectives when sweeping the
    /// largest systems, to bound peak memory).
    pub fn clear_schedule_cache(&mut self) {
        self.schedules.clear();
        self.compiled.clear();
        self.summaries.clear();
        self.arena.clear();
    }
}

/// Head-to-head outcome of Bine against the binomial baseline over a full
/// (node count × vector size) sweep: the data behind Tables 3, 4 and 5.
#[derive(Debug, Clone, Default)]
pub struct HeadToHead {
    /// Configurations where Bine is faster by more than 1%.
    pub wins: usize,
    /// Configurations where the baseline is faster by more than 1%.
    pub losses: usize,
    /// Configurations within ±1%.
    pub ties: usize,
    /// Relative speedups (baseline / bine − 1) for the winning configs.
    pub gains: Vec<f64>,
    /// Relative slowdowns (bine / baseline − 1) for the losing configs.
    pub drops: Vec<f64>,
    /// Global-traffic reduction (1 − bine/baseline) for every config.
    pub traffic_reductions: Vec<f64>,
}

impl HeadToHead {
    /// Total number of configurations measured.
    pub fn total(&self) -> usize {
        self.wins + self.losses + self.ties
    }

    /// Fraction of configurations won by Bine.
    pub fn win_fraction(&self) -> f64 {
        self.wins as f64 / self.total().max(1) as f64
    }

    /// Fraction of configurations lost by Bine.
    pub fn loss_fraction(&self) -> f64 {
        self.losses as f64 / self.total().max(1) as f64
    }
}

/// Runs the Bine-vs-binomial comparison for one collective on one system
/// (one row of Tables 3–5).
pub fn compare_vs_binomial(eval: &mut Evaluator, collective: Collective) -> HeadToHead {
    let mut out = HeadToHead::default();
    let node_counts = eval.system().node_counts.clone();
    let sizes = eval.system().vector_sizes.clone();
    for &nodes in &node_counts {
        for &n in &sizes {
            if eval.skip(collective, nodes) {
                continue;
            }
            let bine_alg = eval.bine_algorithm(collective, n);
            let base_alg = eval.binomial_algorithm(collective, n);
            let bine = eval.evaluate(collective, bine_alg, nodes, n);
            let base = eval.evaluate(collective, base_alg, nodes, n);
            let ratio = base.time_us / bine.time_us;
            if ratio > 1.01 {
                out.wins += 1;
                out.gains.push(ratio - 1.0);
            } else if ratio < 0.99 {
                out.losses += 1;
                out.drops.push(1.0 / ratio - 1.0);
            } else {
                out.ties += 1;
            }
            let reduction = if base.global_bytes == 0 {
                0.0
            } else {
                1.0 - bine.global_bytes as f64 / base.global_bytes as f64
            };
            out.traffic_reductions.push(reduction);
        }
    }
    out
}

/// One cell of the Fig. 9a / Fig. 10a heatmap.
#[derive(Debug, Clone)]
pub struct HeatmapCell {
    /// Number of nodes.
    pub nodes: usize,
    /// Vector size in bytes.
    pub vector_bytes: u64,
    /// Name of the fastest algorithm overall.
    pub best_algorithm: String,
    /// When a Bine algorithm is fastest, the ratio of the best non-Bine time
    /// to the Bine time (≥ 1.0).
    pub bine_advantage: Option<f64>,
}

/// Computes the best-algorithm heatmap for one collective on one system.
///
/// The sweep is routed through the tuner's pruned candidate machinery
/// ([`bine_tune::candidates`] / [`bine_tune::pruned_best`]): candidates are
/// visited in ascending-lower-bound order and any algorithm whose cheap
/// closed-form bound proves it can neither win the cell nor lead the
/// non-Bine field is skipped without being built or costed. Because the
/// bounds are true lower bounds, the reported cells are identical to the
/// exhaustive catalog scan — the big `improvement_summary` sweeps of
/// fig10/fig11 just stop paying for provably losing `Θ(p)`-step schedules
/// at latency-dominated grid points.
pub fn heatmap(eval: &mut Evaluator, collective: Collective) -> Vec<HeatmapCell> {
    eval.clear_schedule_cache();
    let node_counts = eval.system().node_counts.clone();
    let sizes = eval.system().vector_sizes.clone();
    let mut cells = Vec::new();
    for &n in &sizes {
        for &nodes in &node_counts {
            if eval.skip(collective, nodes) {
                continue;
            }
            let lbs = eval.lower_bounds(nodes);
            let cands = bine_tune::candidates(collective, nodes, n, &lbs, MAX_LINEAR_NODES);
            let cell = bine_tune::pruned_best(&cands, true, |alg| {
                eval.evaluate_time(collective, alg.name(), nodes, n)
            });
            let (best, time) = cell.best;
            cells.push(HeatmapCell {
                nodes,
                vector_bytes: n,
                best_algorithm: best.name().to_string(),
                bine_advantage: if best.is_bine {
                    cell.best_non_bine.map(|(_, o)| o / time)
                } else {
                    None
                },
            });
        }
    }
    cells
}

/// Relative improvements of Bine over the best non-Bine algorithm in the
/// configurations where a Bine algorithm is the overall winner (the data
/// behind the box plots of Fig. 9b, 10b, 11a and 11b), together with the
/// fraction of configurations won.
pub fn improvement_distribution(eval: &mut Evaluator, collective: Collective) -> (f64, Vec<f64>) {
    let cells = heatmap(eval, collective);
    let total = cells.len().max(1);
    let improvements: Vec<f64> = cells
        .iter()
        .filter_map(|c| c.bine_advantage)
        .map(|adv| (adv - 1.0) * 100.0)
        .collect();
    (improvements.len() as f64 / total as f64, improvements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::System;

    #[test]
    fn evaluator_caches_and_reuses_schedules() {
        let mut eval = Evaluator::new(System::marenostrum5());
        let a = eval.evaluate(Collective::Allreduce, "bine-large", 16, 1 << 20);
        let b = eval.evaluate(Collective::Allreduce, "bine-large", 16, 1 << 20);
        assert_eq!(a, b);
        assert!(a.time_us > 0.0);
    }

    #[test]
    fn des_cache_is_consistent_and_pipelining_only_changes_segmented_schedules() {
        let mut eval = Evaluator::new(System::fugaku());
        let a = eval.simulate(Collective::Allreduce, "bine-large", 64, 1 << 20, 4);
        let b = eval.simulate(Collective::Allreduce, "bine-large", 64, 1 << 20, 4);
        assert_eq!(a.to_bits(), b.to_bits());
        // Ring messages carry a single segment block: unsplittable, so the
        // segmented simulation is identical to the flat one.
        let flat = eval.simulate(Collective::Allreduce, "ring", 64, 1 << 20, 1);
        let seg = eval.simulate(Collective::Allreduce, "ring", 64, 1 << 20, 8);
        assert_eq!(flat.to_bits(), seg.to_bits());
    }

    #[test]
    fn pipelining_shifts_the_ring_vs_bine_crossover_on_the_torus() {
        // The acceptance scenario: on the Fugaku 4x4x4 sub-torus at 64 MiB
        // the unsegmented DES prefers the ring allreduce, but pipelining
        // bine-large (whose multi-block messages split into chunks; ring's
        // single-block messages cannot) moves the large-vector crossover so
        // that bine-large wins — the effect Sec. 5.2.2 attributes to
        // segmentation shifting the point where the ring stops paying off.
        let mut eval = Evaluator::new(System::fugaku());
        let (nodes, n) = (64, 64 << 20);
        let bine_flat = eval.simulate(Collective::Allreduce, "bine-large", nodes, n, 1);
        let ring_flat = eval.simulate(Collective::Allreduce, "ring", nodes, n, 1);
        assert!(
            ring_flat < bine_flat,
            "unsegmented: ring {ring_flat} should beat bine-large {bine_flat}"
        );
        let bine_piped = eval.simulate(Collective::Allreduce, "bine-large", nodes, n, 16);
        let ring_piped = eval.simulate(Collective::Allreduce, "ring", nodes, n, 16);
        assert!(
            bine_piped < ring_piped,
            "pipelined: bine-large {bine_piped} should beat ring {ring_piped}"
        );
    }

    #[test]
    fn comparison_covers_every_configuration() {
        let mut eval = Evaluator::new(System::marenostrum5());
        let h2h = compare_vs_binomial(&mut eval, Collective::Broadcast);
        assert_eq!(h2h.total(), 5 * 9);
        assert_eq!(h2h.traffic_reductions.len(), 45);
    }

    #[test]
    fn bine_broadcast_wins_clearly_more_often_than_it_loses_on_mn5() {
        // Table 5 reports Bine winning 98% of broadcast configurations on
        // MareNostrum 5. The cost model reproduces the direction (Bine wins
        // far more configurations than it loses, and never by much when it
        // loses); small-vector configurations that fit in a single
        // full-bandwidth subtree come out as ties here.
        let mut eval = Evaluator::new(System::marenostrum5());
        let h2h = compare_vs_binomial(&mut eval, Collective::Broadcast);
        assert!(
            h2h.wins >= 2 * h2h.losses,
            "wins {} losses {}",
            h2h.wins,
            h2h.losses
        );
        assert!(
            h2h.win_fraction() > 0.3,
            "win fraction {}",
            h2h.win_fraction()
        );
    }

    #[test]
    fn bine_allreduce_wins_the_vast_majority_on_dragonfly_systems() {
        // Tables 3/4: allreduce %Win of 67% with no more than 20% losses.
        for system in [System::lumi(), System::leonardo()] {
            let mut eval = Evaluator::new(system);
            let h2h = compare_vs_binomial(&mut eval, Collective::Allreduce);
            assert!(
                h2h.win_fraction() > 0.6,
                "win fraction {}",
                h2h.win_fraction()
            );
            assert!(
                h2h.loss_fraction() < 0.2,
                "loss fraction {}",
                h2h.loss_fraction()
            );
        }
    }

    #[test]
    fn traffic_reduction_sign_depends_on_the_baseline_flavour() {
        // Table 3 vs Table 5: gather/scatter reduce global traffic against
        // the MPICH distance-halving binomial (LUMI) but can increase it
        // against the Open MPI distance-doubling binomial (MareNostrum 5).
        let mut lumi = Evaluator::new(System::lumi());
        let lumi_gather = compare_vs_binomial(&mut lumi, Collective::Gather);
        let avg_lumi: f64 = lumi_gather.traffic_reductions.iter().sum::<f64>()
            / lumi_gather.traffic_reductions.len() as f64;
        assert!(avg_lumi > 0.0, "LUMI gather traffic reduction {avg_lumi}");

        let mut mn5 = Evaluator::new(System::marenostrum5());
        let mn5_gather = compare_vs_binomial(&mut mn5, Collective::Gather);
        let avg_mn5: f64 = mn5_gather.traffic_reductions.iter().sum::<f64>()
            / mn5_gather.traffic_reductions.len() as f64;
        assert!(avg_mn5 < avg_lumi, "MN5 {avg_mn5} vs LUMI {avg_lumi}");
    }

    #[test]
    fn heatmap_has_one_cell_per_configuration() {
        let mut eval = Evaluator::new(System::marenostrum5());
        let cells = heatmap(&mut eval, Collective::Allreduce);
        assert_eq!(cells.len(), 5 * 9);
        assert!(cells.iter().any(|c| c.bine_advantage.is_some()));
    }
}
