//! Small reporting helpers: geometric means, percentiles, box-plot summaries
//! and fixed-width table rendering for the per-figure binaries.

/// Geometric mean of a slice of ratios (returns 1.0 for an empty slice), the
/// averaging the paper uses for performance ratios (Sec. 5.1.1, citing
/// Hoefler & Belli).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The maximum of a slice (0.0 for an empty slice).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Linear-interpolated percentile (`q` in [0, 1]) of a slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Five-number summary used to describe the paper's box plots in text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl BoxPlot {
    /// Computes the five-number summary of `values`.
    pub fn of(values: &[f64]) -> Self {
        Self {
            min: percentile(values, 0.0),
            q1: percentile(values, 0.25),
            median: percentile(values, 0.5),
            q3: percentile(values, 0.75),
            max: percentile(values, 1.0),
        }
    }
}

impl std::fmt::Display for BoxPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:6.1}  q1 {:6.1}  med {:6.1}  q3 {:6.1}  max {:6.1}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Formats a byte count the way the paper labels its axes (32 B … 512 MiB).
pub fn format_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    const GIB: u64 = 1024 * 1024 * 1024;
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{} GiB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{} MiB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{} KiB", bytes / KIB)
    } else {
        format!("{} B", bytes)
    }
}

/// Renders rows of equal length as a fixed-width table with a header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row has wrong number of columns");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Single-letter code for an algorithm name, following the legend of
/// Fig. 9/10 (N = binomial/butterfly baseline, R = ring, B = Bruck,
/// S = Swing, P = pairwise).
pub fn algorithm_letter(name: &str) -> char {
    if name.starts_with("bine") {
        '*'
    } else if name.starts_with("binomial")
        || name.starts_with("recursive")
        || name.starts_with("rabenseifner")
        || name.starts_with("scatter-allgather")
        || name.starts_with("rs-gather")
    {
        'N'
    } else if name.starts_with("ring") {
        'R'
    } else if name.starts_with("bruck") {
        'B'
    } else if name.starts_with("swing") {
        'S'
    } else if name.starts_with("pairwise") {
        'P'
    } else {
        name.chars().next().unwrap_or('?').to_ascii_uppercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn percentiles_and_boxplot() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        let b = BoxPlot::of(&v);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
    }

    #[test]
    fn byte_formatting_matches_paper_labels() {
        assert_eq!(format_bytes(32), "32 B");
        assert_eq!(format_bytes(2048), "2 KiB");
        assert_eq!(format_bytes(512 * 1024 * 1024), "512 MiB");
    }

    #[test]
    fn table_rendering_is_aligned() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["33".into(), "444".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn letters_distinguish_algorithm_families() {
        assert_eq!(algorithm_letter("binomial-dd"), 'N');
        assert_eq!(algorithm_letter("recursive-doubling"), 'N');
        assert_eq!(algorithm_letter("ring"), 'R');
        assert_eq!(algorithm_letter("bruck"), 'B');
        assert_eq!(algorithm_letter("bine-large"), '*');
    }
}
