//! CI decision-table drift gate: regendiffs freshly tuned tables against
//! the committed `tuning/` baseline and fails (exit code 1) on any
//! divergence — a silent change of algorithm-selection policy must become
//! an explicit, reviewed table regeneration instead.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin tune_gate -- <committed-dir> <regenerated-dir>`
//!
//! Every `*.json` in `<committed-dir>` must have an identical-decision
//! counterpart in `<regenerated-dir>`. When `GITHUB_STEP_SUMMARY` is set
//! (as inside GitHub Actions) the markdown diff is appended to it, exactly
//! like the `perf_gate` bin.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use bine_tune::{drift, DecisionTable};

fn load(path: &Path) -> DecisionTable {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read decision table {}: {e}", path.display()));
    DecisionTable::from_json(&text)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn publish_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{markdown}");
        }
        Err(e) => eprintln!("warning: cannot append to GITHUB_STEP_SUMMARY ({path}): {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_dir, regen_dir] = args.as_slice() else {
        eprintln!("usage: tune_gate <committed-dir> <regenerated-dir>");
        return ExitCode::from(2);
    };

    let mut committed: Vec<_> = std::fs::read_dir(committed_dir)
        .unwrap_or_else(|e| panic!("cannot list {committed_dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    committed.sort();
    if committed.is_empty() {
        eprintln!("no committed decision tables under {committed_dir}");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in committed {
        let baseline = load(&path);
        let regen_path = Path::new(regen_dir).join(path.file_name().unwrap());
        if !regen_path.exists() {
            eprintln!(
                "{}: not regenerated (missing {})",
                path.display(),
                regen_path.display()
            );
            failed = true;
            continue;
        }
        let outcome = drift(&baseline, &load(&regen_path));
        println!("{}", outcome.markdown());
        publish_step_summary(&outcome.markdown());
        failed |= !outcome.passed();
    }

    if failed {
        eprintln!(
            "decision-table drift gate FAILED: regenerate with \
             `cargo run --release -p bine-bench --bin tune` and commit the tuning/ diff"
        );
        ExitCode::FAILURE
    } else {
        println!("decision-table drift gate PASSED");
        ExitCode::SUCCESS
    }
}
