//! Smoke sweep over the extended collective space: the tuned alltoall and
//! the irregular (v-variant) grids.
//!
//! For every paper system hosting the requested node count this binary
//!
//! * sweeps the alltoall catalog (bine / bruck / pairwise) across the
//!   paper's vector sizes with the synchronous model and the DES,
//! * sweeps every v-variant collective × size distribution × irregular
//!   algorithm with the synchronous model (the model the irregular tuning
//!   grids are scored with) and simulates the per-cell winner once with
//!   the DES — exercising the counts-aware byte sizing end to end,
//! * cross-checks the committed decision tables: for every swept cell the
//!   selector's dist-aware pick must be buildable via `build_irregular`.
//!
//! Usage: `cargo run --release -p bine-bench --bin irregular_sweep [nodes]`
//! (default 16). CI runs this as the v-variant/alltoall smoke.

use bine_bench::report::{format_bytes, render_table};
use bine_bench::runner::Evaluator;
use bine_bench::systems::System;
use bine_net::allocation::Allocation;
use bine_net::sim::SimRequest;
use bine_sched::{
    build_irregular, irregular_algorithms, Collective, SizeDist, IRREGULAR_COLLECTIVES,
};
use bine_tune::Selector;

const ALLTOALL_ALGS: [&str; 3] = ["bine", "bruck", "pairwise"];

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("nodes must be an integer"))
        .unwrap_or(16);
    for system in System::all() {
        if !system.node_counts.contains(&nodes) {
            continue;
        }
        let mut eval = Evaluator::new(system.clone());
        let sizes = system.vector_sizes.clone();

        // Alltoall: synchronous and simulated times per catalog algorithm.
        println!(
            "=== {} ({nodes} nodes, {}) — alltoall, times in us ===",
            system.name,
            eval.system().topology(nodes).name()
        );
        let mut rows = Vec::new();
        for &n in &sizes {
            let mut row = vec![format_bytes(n)];
            for alg in ALLTOALL_ALGS {
                if eval.skip_algorithm(alg, nodes) {
                    row.push("-".into());
                    continue;
                }
                let sync = eval.evaluate_time(Collective::Alltoall, alg, nodes, n);
                let des = eval.simulate(Collective::Alltoall, alg, nodes, n, 1);
                row.push(format!("{sync:.1} / {des:.1}"));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &[
                    "size",
                    "bine (sync/des)",
                    "bruck (sync/des)",
                    "pairwise (sync/des)"
                ],
                &rows
            )
        );

        // V-variant grids: the synchronous sweep the tuner runs, plus one
        // DES simulation of each cell's winner.
        let topo = system.topology(nodes);
        let alloc = Allocation::block(nodes);
        let model = eval.cost_model().clone();
        let n = 1u64 << 20;
        println!(
            "=== {} ({nodes} nodes) — v-variants at {}, sync times in us (DES of winner) ===",
            system.name,
            format_bytes(n)
        );
        let mut rows = Vec::new();
        for collective in IRREGULAR_COLLECTIVES {
            for dist in SizeDist::ALL {
                let counts = dist.counts(nodes, 0);
                let mut row = vec![format!("{}v@{}", collective.name(), dist.name())];
                let mut best: Option<(&'static str, f64)> = None;
                let mut cands = Vec::new();
                for alg in irregular_algorithms(collective) {
                    if eval.skip_algorithm(alg.name(), nodes) {
                        continue;
                    }
                    let sched = build_irregular(collective, alg.name(), nodes, 0, &counts)
                        .unwrap_or_else(|| panic!("{collective:?}/{} did not build", alg.name()));
                    let t = model.time_us(&sched, n, topo.as_ref(), &alloc);
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((alg.name(), t));
                    }
                    cands.push(format!("{}={t:.1}", alg.name()));
                }
                row.push(cands.join("  "));
                let (winner, _) = best.expect("every cell has a candidate");
                let compiled = build_irregular(collective, winner, nodes, 0, &counts)
                    .expect(winner)
                    .compile();
                let des = SimRequest::new(&model, &compiled, n, topo.as_ref(), &alloc)
                    .time_only()
                    .run()
                    .makespan_us();
                row.push(format!("{winner} ({des:.1})"));
                rows.push(row);
            }
        }
        println!(
            "{}",
            render_table(&["cell", "candidates (sync us)", "winner (des us)"], &rows)
        );

        // Committed-table cross-check: every dist-aware pick must build.
        let selector = Selector::load(system.name)
            .unwrap_or_else(|e| panic!("{}: cannot load committed table: {e}", system.name));
        let mut checked = 0usize;
        for collective in IRREGULAR_COLLECTIVES {
            for dist in SizeDist::ALL {
                for &bytes in &sizes {
                    let tuned = selector
                        .choose_irregular(collective, dist, nodes, bytes)
                        .unwrap_or_else(|| {
                            panic!(
                                "{}: no pick for {collective:?}@{}/{nodes}/{bytes}",
                                system.name,
                                dist.name()
                            )
                        });
                    let counts = dist.counts(nodes, 0);
                    build_irregular(collective, tuned.algorithm, nodes, 0, &counts).unwrap_or_else(
                        || {
                            panic!(
                                "{}: committed pick {} for {collective:?}@{} is not buildable",
                                system.name,
                                tuned.algorithm,
                                dist.name()
                            )
                        },
                    );
                    checked += 1;
                }
            }
        }
        println!(
            "{}: {checked} committed v-variant picks resolved and built\n",
            system.name
        );
    }
}
