//! Fig. 10 — Leonardo: (a) best-algorithm heatmap for allreduce, (b)
//! distribution of Bine's improvement over the best state-of-the-art
//! algorithm for all eight collectives.
//!
//! Paper result: Bine is the best allreduce in 67% of configurations (up to
//! 1.45×); the ring algorithm wins for very large vectors at small node
//! counts.

use bine_bench::systems::System;
use bine_bench::tables::{des_comparison_table, heatmap_table, improvement_summary};
use bine_sched::Collective;

fn main() {
    println!(
        "{}",
        heatmap_table(System::leonardo(), Collective::Allreduce)
    );
    println!();
    println!("{}", improvement_summary(System::leonardo()));
    println!();
    println!(
        "{}",
        des_comparison_table(System::leonardo(), Collective::Allreduce, 64, 8)
    );
}
