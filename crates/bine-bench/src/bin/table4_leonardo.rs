//! Table 4 — comparison with binomial trees on Leonardo (23-group
//! Dragonfly+, 16–2048 nodes, 32 B–512 MiB vectors).
//!
//! Paper result: Bine wins the majority of configurations for every
//! collective (over 90% for half of them), with broadcast gains larger than
//! on LUMI because Open MPI uses the distance-doubling binomial tree.

use bine_bench::systems::System;
use bine_bench::tables::comparison_table;

fn main() {
    println!("{}", comparison_table(System::leonardo()));
    println!("(baseline: Open MPI distance-doubling binomial trees and standard butterflies)");
}
