//! Crash-chaos smoke of the shrink-and-retry recovery stack.
//!
//! Hammers a shared [`bine_tune::ServiceSelector`] with executions whose
//! communicators lose seeded ranks mid-collective, then re-runs every
//! scenario serially and verifies each outcome in depth. The run fails
//! (non-zero exit) unless:
//!
//! * every request received a typed outcome — completed, recovered, or a
//!   typed [`bine_exec::ExecError::RankDead`] for genuinely unrecoverable
//!   plans (100% answer availability, nothing hangs),
//! * every recovery is **bit-identical** to a direct run of the same pick
//!   built straight on the survivor communicator — same final block
//!   stores, same traffic report — and its schedule passes the validator,
//! * every typed error names the seeded victim.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin crash_chaos -- \
//!     [--seed N] [--threads N] [--requests N] [--system NAME] [--elems N]`
//!
//! The CI workflow runs this as a smoke step; same seed, same victims,
//! same report.

use bine_bench::crash::{run, CrashOptions};

fn main() {
    let mut opts = CrashOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--threads" => opts.threads = value("--threads").parse().expect("--threads: integer"),
            "--requests" => {
                opts.requests_per_thread = value("--requests").parse().expect("--requests: integer")
            }
            "--system" => opts.system = value("--system"),
            "--elems" => opts.elems_per_block = value("--elems").parse().expect("--elems: integer"),
            other => panic!(
                "unknown argument {other}; usage: crash_chaos \
                 [--seed N] [--threads N] [--requests N] [--system NAME] [--elems N]"
            ),
        }
    }

    println!(
        "crash chaos: {} table, {} threads × {} requests, seed {}\n",
        opts.system, opts.threads, opts.requests_per_thread, opts.seed
    );
    // The recovery ladder probes schedule builders under `catch_unwind`;
    // unsupported rank counts assert, and those probe panics are expected.
    // Keep their backtraces off stderr for the duration of the run — any
    // real contract violation is caught and returned as `Err` instead.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run(&opts);
    std::panic::set_hook(default_hook);
    let report = report.unwrap_or_else(|e| {
        eprintln!("crash_chaos: {e}");
        std::process::exit(2);
    });

    println!(
        "requests answered     {:>10} / {}",
        report.answered, report.total_requests
    );
    println!(
        "availability          {:>9.1}%",
        report.availability() * 100.0
    );
    println!(
        "outcome classes       {:>10} full, {} recovered, {} typed-unrecoverable",
        report.full_answers, report.recovered_answers, report.unrecoverable_answers
    );
    println!(
        "service counters      {:>10} stalls, {} recoveries",
        report.service_stalls, report.service_recoveries
    );
    println!(
        "verification          {:>10} scenarios: {} recoveries bit-identical \
         ({} traffic reports matched), {} full runs pinned, {} typed errors checked",
        report.scenarios,
        report.recoveries_checked,
        report.traffic_checked,
        report.full_checked,
        report.unrecoverable_checked
    );

    if report.availability() < 1.0 || report.unexpected_outcomes > 0 {
        eprintln!(
            "\ncrash_chaos: FAILED — availability {:.3}%, {} unexpected outcomes",
            report.availability() * 100.0,
            report.unexpected_outcomes
        );
        std::process::exit(1);
    }
    println!(
        "\ncrash_chaos: 100% availability; every recoverable stall recovered \
         bit-identically on the survivor communicator"
    );
}
