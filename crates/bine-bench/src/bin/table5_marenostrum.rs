//! Table 5 — comparison with binomial trees on MareNostrum 5 (2:1
//! oversubscribed fat tree with 160-node subtrees, 4–64 nodes).
//!
//! Paper result: Bine wins most configurations; gather/scatter occasionally
//! *increase* global traffic (negative reduction) because the Open MPI
//! distance-doubling binomial keeps its heaviest edge at distance 1.

use bine_bench::systems::System;
use bine_bench::tables::comparison_table;

fn main() {
    println!("{}", comparison_table(System::marenostrum5()));
    println!("(baseline: Open MPI distance-doubling binomial trees and standard butterflies)");
}
