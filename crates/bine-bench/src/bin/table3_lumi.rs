//! Table 3 — comparison with binomial trees on LUMI (24-group Dragonfly,
//! 16–1024 nodes, 32 B–512 MiB vectors).
//!
//! Paper result: Bine wins 39–94% of the configurations depending on the
//! collective, with average gains around 7–33% and global-traffic reductions
//! of ~10% on average (up to 94% for broadcast).

use bine_bench::systems::System;
use bine_bench::tables::comparison_table;

fn main() {
    println!("{}", comparison_table(System::lumi()));
    println!("(baseline: Cray MPICH distance-halving binomial trees and standard butterflies)");
}
