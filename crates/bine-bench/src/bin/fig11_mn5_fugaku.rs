//! Fig. 11 — improvement of Bine over the best state-of-the-art algorithm on
//! (a) MareNostrum 5 and (b) Fugaku.
//!
//! Paper result: on MareNostrum 5 Bine is the best algorithm in 7–86% of
//! configurations depending on the collective (linear algorithms win at the
//! small 4–64-node scale for large vectors); on Fugaku the torus makes every
//! link oversubscribed and Bine's gains are the largest of the four systems.

use bine_bench::systems::System;
use bine_bench::tables::{des_comparison_table, improvement_summary};
use bine_sched::Collective;

fn main() {
    println!("{}", improvement_summary(System::marenostrum5()));
    println!();
    println!("{}", improvement_summary(System::fugaku()));
    println!();
    println!(
        "{}",
        des_comparison_table(System::fugaku(), Collective::Allreduce, 64, 8)
    );
    println!();
    println!("note: alltoall on Fugaku is evaluated up to 2048 nodes (see DESIGN.md).");
}
