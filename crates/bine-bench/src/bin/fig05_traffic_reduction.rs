//! Fig. 5 — distribution of the global-traffic reduction of Bine over
//! binomial trees across job allocations on Leonardo and LUMI.
//!
//! The paper mines one/two weeks of Slurm allocations; this binary samples
//! synthetic fragmented allocations with the same qualitative properties
//! (block distribution over a busy machine) and estimates, for every job, the
//! global traffic of a small-vector allreduce under Bine and binomial trees.
//!
//! Paper result: the reduction grows with the job size, stays below the 33%
//! theoretical bound, and a few sub-64-node jobs see a small increase.

use bine_bench::report::{render_table, BoxPlot};
use bine_net::topology::{Dragonfly, Topology};
use bine_net::trace::JobTraceGenerator;
use bine_net::traffic::global_traffic_reduction;
use bine_sched::collectives::{allreduce, AllreduceAlg};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let jobs_per_size = 60;
    println!(
        "Fig. 5 — global-traffic reduction of Bine vs binomial allreduce across job allocations"
    );
    println!(
        "({} synthetic jobs per node count; theoretical bound = 33%)\n",
        jobs_per_size
    );

    let systems: Vec<(&str, Box<dyn Topology>, Vec<usize>)> = vec![
        (
            "Leonardo",
            Box::new(Dragonfly::leonardo()),
            vec![2, 4, 8, 16, 32, 64, 128, 256],
        ),
        (
            "LUMI",
            Box::new(Dragonfly::lumi()),
            vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048],
        ),
    ];

    for (name, topo, node_counts) in systems {
        let mut rng = StdRng::seed_from_u64(5);
        let generator = JobTraceGenerator::default();
        let mut rows = Vec::new();
        for &nodes in &node_counts {
            let bine = allreduce(nodes, AllreduceAlg::BineSmall);
            let binom = allreduce(nodes, AllreduceAlg::RecursiveDoubling);
            let mut reductions = Vec::new();
            for sample in generator.sample(topo.as_ref(), nodes, jobs_per_size, &mut rng) {
                let alloc = sample.allocation();
                let red = global_traffic_reduction(&bine, &binom, 1 << 20, topo.as_ref(), &alloc);
                reductions.push(red * 100.0);
            }
            let bp = BoxPlot::of(&reductions);
            let above_bound = reductions.iter().filter(|&&r| r > 33.4).count();
            let negative = reductions.iter().filter(|&&r| r < 0.0).count();
            rows.push(vec![
                nodes.to_string(),
                format!("{:.1}", bp.min),
                format!("{:.1}", bp.q1),
                format!("{:.1}", bp.median),
                format!("{:.1}", bp.q3),
                format!("{:.1}", bp.max),
                negative.to_string(),
                above_bound.to_string(),
            ]);
        }
        println!(
            "{} ({})\n{}",
            name,
            topo.name(),
            render_table(
                &[
                    "nodes",
                    "min%",
                    "q1%",
                    "median%",
                    "q3%",
                    "max%",
                    "#negative",
                    "#above 33%"
                ],
                &rows
            )
        );
    }
}
