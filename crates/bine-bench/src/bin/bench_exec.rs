//! Records the execution-benchmark trajectory as `BENCH_exec.json`.
//!
//! Measures ns/op of the four executors on the BineLarge allreduce at
//! p ∈ {64, 256, 1024} (the same configurations as `benches/execution.rs`)
//! and writes a flat JSON report, so future PRs can diff the perf
//! trajectory of the data plane without parsing criterion output.
//!
//! Usage: `cargo run --release -p bine-bench --bin bench_exec [out.json]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bine_exec::state::Workload;
use bine_exec::{compiled, sequential, ExecutorPool};
use bine_sched::collectives::{allreduce, AllreduceAlg};
use bine_sched::Schedule;

/// Median ns/op of `body`, sampled until ~`budget_ms` is spent (at least 3
/// samples).
fn measure(budget_ms: u64, mut body: impl FnMut()) -> f64 {
    // One calibration run.
    let start = Instant::now();
    body();
    let est_ns = start.elapsed().as_nanos().max(1) as f64;
    let budget_ns = (budget_ms as f64) * 1e6;
    let samples = ((budget_ns / est_ns) as usize).clamp(3, 50);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        body();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Record {
    name: String,
    ns_per_op: f64,
}

fn bench_all_executors(records: &mut Vec<Record>, sched: &Schedule, p: usize) {
    let workload = Workload::for_schedule(sched, bine_bench::exec_bench_elems(p));
    // Built once; per-iteration clones are refcount bumps, so the timings
    // below measure execution, not input construction.
    let initial = workload.initial_state(sched);
    let compiled_sched = Arc::new(sched.compile());
    let pool = ExecutorPool::global();
    let record = |records: &mut Vec<Record>, executor: &str, ns: f64| {
        let name = format!("allreduce-bine-large/{executor}/{p}");
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    };
    let ns = measure(700, || {
        sequential::run_reference(sched, initial.clone());
    });
    record(records, "reference", ns);
    let ns = measure(700, || {
        sequential::run(sched, initial.clone());
    });
    record(records, "sequential", ns);
    let ns = measure(700, || {
        compiled::run(&compiled_sched, initial.clone());
    });
    record(records, "compiled", ns);
    let ns = measure(700, || {
        pool.run(&compiled_sched, initial.clone());
    });
    record(records, "pool", ns);
    // Compilation cost, paid once per schedule.
    let ns = measure(300, || {
        sched.compile();
    });
    let name = format!("allreduce-bine-large/compile/{p}");
    println!("{name:<48} {ns:>14.0} ns/op");
    records.push(Record {
        name,
        ns_per_op: ns,
    });
}

fn lookup(records: &[Record], name: &str) -> f64 {
    records
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.ns_per_op)
        .expect(name)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_exec.json".to_string());
    let mut records = Vec::new();
    for p in [64usize, 256, 1024] {
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        bench_all_executors(&mut records, &sched, p);
    }
    // The acceptance headline: compiled vs the seed interpreter at p = 256.
    let speedup_256 = lookup(&records, "allreduce-bine-large/reference/256")
        / lookup(&records, "allreduce-bine-large/compiled/256");

    let mut json = String::from("{\n  \"benches\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.1}{comma}", r.name, r.ns_per_op);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_compiled_vs_reference_p256\": {speedup_256:.2},"
    );
    let _ = writeln!(
        json,
        "  \"pool_workers\": {},",
        ExecutorPool::global().num_workers()
    );
    let _ = writeln!(json, "  \"unit\": \"ns/op (median)\"");
    json.push('}');
    json.push('\n');
    std::fs::write(&out_path, &json).expect("failed to write the report");
    println!("\nspeedup compiled vs reference @p=256: {speedup_256:.2}x");
    println!("wrote {out_path}");
}
