//! Records the execution-benchmark trajectory as `BENCH_exec.json`.
//!
//! Measures ns/op of the four executors on the BineLarge allreduce at
//! p ∈ {64, 256, 1024} (the same configurations as `benches/execution.rs`)
//! and writes a flat JSON report, so future PRs can diff the perf
//! trajectory of the data plane without parsing criterion output.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin bench_exec [out.json] [--iters N]`
//!
//! `--iters N` fixes the number of timed samples per benchmark (after one
//! warm-up run), making the recorder's runtime deterministic and bounded —
//! exactly what the CI perf-record step needs. Without the flag the default
//! is 25 samples locally and 7 under CI (detected via the `CI` environment
//! variable GitHub Actions always sets).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bine_exec::state::Workload;
use bine_exec::{compiled, sequential, ExecutorPool};
use bine_sched::collectives::{allreduce, AllreduceAlg};
use bine_sched::Schedule;

/// Minimum ns/op of `body` over exactly `iters` timed samples (plus one
/// untimed warm-up run). The minimum — not the median — is recorded because
/// the perf gate diffs these numbers across runs and machines: co-scheduled
/// load inflates medians but rarely the best-case sample, so the minimum is
/// the most reproducible statistic for a hard regression threshold.
fn measure(iters: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

struct Record {
    name: String,
    ns_per_op: f64,
}

fn bench_all_executors(records: &mut Vec<Record>, sched: &Schedule, p: usize, iters: usize) {
    let workload = Workload::for_schedule(sched, bine_bench::exec_bench_elems(p));
    // Built once; per-iteration clones are refcount bumps, so the timings
    // below measure execution, not input construction.
    let initial = workload.initial_state(sched);
    let compiled_sched = Arc::new(sched.compile());
    let pool = ExecutorPool::global();
    let record = |records: &mut Vec<Record>, executor: &str, ns: f64| {
        let name = format!("allreduce-bine-large/{executor}/{p}");
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    };
    let ns = measure(iters, || {
        sequential::run_reference(sched, initial.clone());
    });
    record(records, "reference", ns);
    let ns = measure(iters, || {
        sequential::run(sched, initial.clone());
    });
    record(records, "sequential", ns);
    let ns = measure(iters, || {
        compiled::run(&compiled_sched, initial.clone());
    });
    record(records, "compiled", ns);
    let ns = measure(iters, || {
        pool.run(&compiled_sched, initial.clone());
    });
    record(records, "pool", ns);
    // Compilation cost, paid once per schedule.
    let ns = measure(iters, || {
        sched.compile();
    });
    let name = format!("allreduce-bine-large/compile/{p}");
    println!("{name:<48} {ns:>14.0} ns/op");
    records.push(Record {
        name,
        ns_per_op: ns,
    });
}

fn lookup(records: &[Record], name: &str) -> f64 {
    records
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.ns_per_op)
        .expect(name)
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut iters: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--iters" {
            let n = args.next().expect("--iters needs a value");
            iters = Some(n.parse().expect("--iters must be a positive integer"));
        } else if arg.starts_with('-') {
            panic!("unknown flag {arg}; usage: bench_exec [out.json] [--iters N]");
        } else if out_path.is_some() {
            panic!("unexpected extra argument {arg}; usage: bench_exec [out.json] [--iters N]");
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_exec.json".to_string());
    // Deterministic, bounded runtime: a fixed sample count instead of a
    // wall-clock budget. Low under CI (whose runners are slow and whose
    // perf-record step must stay cheap), higher locally for stabler medians.
    let iters = iters
        .unwrap_or_else(|| {
            if std::env::var_os("CI").is_some() {
                7
            } else {
                25
            }
        })
        .max(1);
    println!("{iters} timed samples per benchmark\n");
    let mut records = Vec::new();
    for p in [64usize, 256, 1024] {
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        bench_all_executors(&mut records, &sched, p, iters);
    }
    // The acceptance headline: compiled vs the seed interpreter at p = 256.
    let speedup_256 = lookup(&records, "allreduce-bine-large/reference/256")
        / lookup(&records, "allreduce-bine-large/compiled/256");

    let mut json = String::from("{\n  \"benches\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.1}{comma}", r.name, r.ns_per_op);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_compiled_vs_reference_p256\": {speedup_256:.2},"
    );
    let _ = writeln!(
        json,
        "  \"pool_workers\": {},",
        ExecutorPool::global().num_workers()
    );
    let _ = writeln!(json, "  \"unit\": \"ns/op (min over samples)\"");
    json.push('}');
    json.push('\n');
    std::fs::write(&out_path, &json).expect("failed to write the report");
    println!("\nspeedup compiled vs reference @p=256: {speedup_256:.2}x");
    println!("wrote {out_path}");
}
