//! Records the execution-benchmark trajectory as `BENCH_exec.json`.
//!
//! Measures ns/op of the four executors on the BineLarge allreduce at
//! p ∈ {64, 256, 1024} (the same configurations as `benches/execution.rs`),
//! plus the post-seed collective surfaces at p = 256 — dual-root pipelined
//! allreduce and two irregular v-variant schedules, each with a gated
//! `/compiled/` entry — plus the synthesized data plane (multilevel
//! provider allreduce on the heterogeneous island view: gated `/compiled/`
//! and `/sim/` entries, ungated `/synthesize/` build cost) — plus the
//! discrete-event simulator — optimized fast path (`/sim/`, gated
//! by `perf_gate`) against the from-scratch reference (`/sim-reference/`,
//! context only) at p ∈ {64, 256} — plus the selection serving layer
//! at `available_parallelism` workers (gated `/serve/` aggregate
//! ns/request of the concurrent `ServiceSelector`; ungated
//! `/serve-latency/` p99 and p999 tails and single-threaded `/serial/`
//! baseline) —
//! plus the adaptive feedback loop (gated `/adaptive/` observe and
//! overridden-hit warm paths; ungated loop counters) — and writes a flat
//! JSON report, so future PRs can diff the perf trajectory of the data
//! plane without parsing criterion output.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin bench_exec [out.json] [--iters N]`
//!
//! `--iters N` fixes the number of timed samples per benchmark (after one
//! warm-up run), making the recorder's runtime deterministic and bounded —
//! exactly what the CI perf-record step needs. Without the flag the default
//! is 25 samples locally and 7 under CI (detected via the `CI` environment
//! variable GitHub Actions always sets).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bine_exec::state::Workload;
use bine_exec::{compiled, sequential, ExecutorPool};
use bine_net::cost::CostModel;
use bine_net::sim;
use bine_sched::collectives::{allreduce, AllreduceAlg};
use bine_sched::Schedule;

/// Minimum ns/op of `body` over exactly `iters` timed samples (plus one
/// untimed warm-up run). The minimum — not the median — is recorded because
/// the perf gate diffs these numbers across runs and machines: co-scheduled
/// load inflates medians but rarely the best-case sample, so the minimum is
/// the most reproducible statistic for a hard regression threshold.
fn measure(iters: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

struct Record {
    name: String,
    ns_per_op: f64,
}

fn bench_all_executors(records: &mut Vec<Record>, sched: &Schedule, p: usize, iters: usize) {
    let workload = Workload::for_schedule(sched, bine_bench::exec_bench_elems(p));
    // Built once; per-iteration clones are refcount bumps, so the timings
    // below measure execution, not input construction.
    let initial = workload.initial_state(sched);
    let compiled_sched = Arc::new(sched.compile());
    let pool = ExecutorPool::global();
    let record = |records: &mut Vec<Record>, executor: &str, ns: f64| {
        let name = format!("allreduce-bine-large/{executor}/{p}");
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    };
    let ns = measure(iters, || {
        sequential::run_reference(sched, initial.clone());
    });
    record(records, "reference", ns);
    let ns = measure(iters, || {
        sequential::run(sched, initial.clone());
    });
    record(records, "sequential", ns);
    let ns = measure(iters, || {
        compiled::run(&compiled_sched, initial.clone());
    });
    record(records, "compiled", ns);
    let ns = measure(iters, || {
        pool.run(&compiled_sched, initial.clone());
    });
    record(records, "pool", ns);
    // Compilation cost, paid once per schedule.
    let ns = measure(iters, || {
        sched.compile();
    });
    let name = format!("allreduce-bine-large/compile/{p}");
    println!("{name:<48} {ns:>14.0} ns/op");
    records.push(Record {
        name,
        ns_per_op: ns,
    });
}

/// The collective surfaces added after the seed four: the dual-root
/// pipelined allreduce and the counts-aware irregular schedules. Each gets
/// a gated `/compiled/` entry (plus an ungated `/sequential/` context line)
/// on its own workload — non-uniform block sizes drive different layout and
/// copy paths through the compiled executor than the uniform seed
/// collectives, so a regression there would be invisible to the
/// `allreduce-bine-large` entries above.
fn bench_new_paths(records: &mut Vec<Record>, p: usize, iters: usize) {
    let one_heavy = bine_sched::SizeDist::OneHeavy.counts(p, p / 2 + 1);
    let cases: [(&str, Schedule); 3] = [
        (
            "allreduce-dual-root",
            bine_sched::build(bine_sched::Collective::Allreduce, "dual-root", p, 0)
                .expect("dual-root builds at pow2"),
        ),
        (
            "gatherv-traff-one-heavy",
            bine_sched::build_irregular(bine_sched::Collective::Gather, "traff", p, 0, &one_heavy)
                .expect("traff gatherv builds"),
        ),
        (
            "allgatherv-bine-linear",
            bine_sched::build_irregular(
                bine_sched::Collective::Allgather,
                "bine",
                p,
                0,
                &bine_sched::SizeDist::Linear.counts(p, 0),
            )
            .expect("bine allgatherv builds at pow2"),
        ),
    ];
    for (label, sched) in &cases {
        let workload = Workload::for_schedule(sched, bine_bench::exec_bench_elems(p));
        let initial = workload.initial_state(sched);
        let compiled_sched = Arc::new(sched.compile());
        let record = |records: &mut Vec<Record>, executor: &str, ns: f64| {
            let name = format!("{label}/{executor}/{p}");
            println!("{name:<48} {ns:>14.0} ns/op");
            records.push(Record {
                name,
                ns_per_op: ns,
            });
        };
        let ns = measure(iters, || {
            sequential::run(sched, initial.clone());
        });
        record(records, "sequential", ns);
        let ns = measure(iters, || {
            compiled::run(&compiled_sched, initial.clone());
        });
        record(records, "compiled", ns);
    }
}

/// The synthesized data plane: the multilevel provider's allreduce on the
/// heterogeneous island fabric's serving-layer view. Synthesized schedules
/// reach production through exactly the compiled executor and the DES the
/// catalog schedules use, but their shape is different — tier-crossing
/// trees with island-local fan-out — so each surface gets its own gated
/// entry (`/compiled/`, `/sim/`) plus ungated context (`/sequential/`,
/// `/synthesize/` — the provider's build cost, which serving pays on every
/// cache miss of a `synth:` pick).
fn bench_synth(records: &mut Vec<Record>, p: usize, iters: usize) {
    let view = bine_net::view::system_view("heterofat", p).expect("heterofat view");
    let spec = bine_sched::SynthSpec::parse("synth:multilevel:tiers=2").expect("canonical name");
    let sched = spec
        .synthesize(bine_sched::Collective::Allreduce, &view, 0)
        .expect("multilevel allreduce synthesizes");
    let record = |records: &mut Vec<Record>, variant: &str, ns: f64| {
        let name = format!("allreduce-synth-multilevel/{variant}/{p}");
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    };
    let ns = measure(iters, || {
        spec.synthesize(bine_sched::Collective::Allreduce, &view, 0)
            .unwrap();
    });
    record(records, "synthesize", ns);
    let workload = Workload::for_schedule(&sched, bine_bench::exec_bench_elems(p));
    let initial = workload.initial_state(&sched);
    let compiled_sched = Arc::new(sched.compile());
    let ns = measure(iters, || {
        sequential::run(&sched, initial.clone());
    });
    record(records, "sequential", ns);
    let ns = measure(iters, || {
        compiled::run(&compiled_sched, initial.clone());
    });
    record(records, "compiled", ns);
    // The same schedule under the DES, on the fabric it was derived for.
    let model = CostModel::default();
    let system = bine_bench::systems::System::heterofat();
    let topo = system.topology(p);
    let alloc = bine_bench::runner::sample_allocation(&system, topo.as_ref(), p, 42);
    let mut arena = sim::SimArena::new();
    let ns = measure(iters, || {
        sim::SimRequest::new(&model, &compiled_sched, 1u64 << 20, topo.as_ref(), &alloc)
            .arena(&mut arena)
            .time_only()
            .run();
    });
    record(records, "sim", ns);
}

/// DES ns/op on the tuner's workload shape: the optimized arena-backed
/// simulator (`/sim/`, hard-gated by `perf_gate` like the compiled
/// executors) and the from-scratch reference (`/sim-reference/`, an ungated
/// baseline). The configuration — BineLarge allreduce on the LUMI dragonfly
/// under the tuning tables' pinned fragmented placement (seed 42) — is what
/// the DES refinement stage simulates thousands of times: asymmetric routes
/// make flow completions stagger, so the fair-share recomputation (the hot
/// path the incremental optimization targets) dominates.
fn bench_sim(records: &mut Vec<Record>, p: usize, iters: usize) {
    let model = CostModel::default();
    let system = bine_bench::systems::System::lumi();
    let topo = system.topology(p);
    let alloc = bine_bench::runner::sample_allocation(&system, topo.as_ref(), p, 42);
    let topo = topo.as_ref();
    let compiled_sched = allreduce(p, AllreduceAlg::BineLarge).compile();
    let n = 1u64 << 20;
    let record = |records: &mut Vec<Record>, variant: &str, ns: f64| {
        let name = format!("allreduce-bine-large/{variant}/{p}");
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    };
    let mut arena = sim::SimArena::new();
    let ns = measure(iters, || {
        sim::SimRequest::new(&model, &compiled_sched, n, topo, &alloc)
            .arena(&mut arena)
            .time_only()
            .run();
    });
    record(records, "sim", ns);
    let ns = measure(iters, || {
        sim::SimRequest::new(&model, &compiled_sched, n, topo, &alloc)
            .reference()
            .run();
    });
    record(records, "sim-reference", ns);
}

/// Serving-layer throughput and tail latency (see `bine_bench::serve`):
/// the gated `/serve/` throughput entry plus the ungated p99/p999 tails
/// and single-threaded selector baseline. Returns the measurement for the
/// summary fields.
fn bench_serve(records: &mut Vec<Record>, iters: usize) -> bine_bench::serve::ServeMeasurement {
    let opts = bine_bench::serve::ServeOptions {
        repeats: iters.clamp(3, 9),
        ..Default::default()
    };
    let m = bine_bench::serve::measure(&opts).expect("serving benchmark failed");
    for (name, ns) in bine_bench::serve::bench_entries(&m) {
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    }
    m
}

/// Adaptive-serving warm paths and loop counters (see
/// `bine_bench::adaptive`): the gated `/adaptive/` observe and
/// overridden-hit timings plus the ungated override/revert/re-eval
/// counters. The run itself re-checks the convergence contract.
fn bench_adaptive(records: &mut Vec<Record>, iters: usize) {
    let opts = bine_bench::adaptive::AdaptiveOptions {
        repeats: iters.clamp(3, 9),
        ..Default::default()
    };
    let m = bine_bench::adaptive::measure(&opts).expect("adaptive benchmark failed");
    for (name, ns) in bine_bench::adaptive::bench_entries(&m) {
        println!("{name:<48} {ns:>14.0} ns/op");
        records.push(Record {
            name,
            ns_per_op: ns,
        });
    }
}

fn lookup(records: &[Record], name: &str) -> f64 {
    records
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.ns_per_op)
        .expect(name)
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut iters: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--iters" {
            let n = args.next().expect("--iters needs a value");
            iters = Some(n.parse().expect("--iters must be a positive integer"));
        } else if arg.starts_with('-') {
            panic!("unknown flag {arg}; usage: bench_exec [out.json] [--iters N]");
        } else if out_path.is_some() {
            panic!("unexpected extra argument {arg}; usage: bench_exec [out.json] [--iters N]");
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_exec.json".to_string());
    // Deterministic, bounded runtime: a fixed sample count instead of a
    // wall-clock budget. Low under CI (whose runners are slow and whose
    // perf-record step must stay cheap), higher locally for stabler medians.
    let iters = iters
        .unwrap_or_else(|| {
            if std::env::var_os("CI").is_some() {
                7
            } else {
                25
            }
        })
        .max(1);
    println!("{iters} timed samples per benchmark\n");
    let mut records = Vec::new();
    for p in [64usize, 256, 1024] {
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        bench_all_executors(&mut records, &sched, p, iters);
    }
    bench_new_paths(&mut records, 256, iters);
    bench_synth(&mut records, 256, iters);
    for p in [64usize, 256] {
        bench_sim(&mut records, p, iters);
    }
    let serve = bench_serve(&mut records, iters);
    bench_adaptive(&mut records, iters);
    // The acceptance headline: compiled vs the seed interpreter at p = 256.
    let speedup_256 = lookup(&records, "allreduce-bine-large/reference/256")
        / lookup(&records, "allreduce-bine-large/compiled/256");
    // The DES headline: the incremental fair-share + arena fast path against
    // the from-scratch reference simulator at p = 256 (the acceptance bar is
    // ≥ 10x; this field is the recorded evidence).
    let speedup_sim_256 = lookup(&records, "allreduce-bine-large/sim-reference/256")
        / lookup(&records, "allreduce-bine-large/sim/256");
    let workers = ExecutorPool::global().num_workers();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut json = String::from("{\n  \"benches\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\": {:.1}{comma}", r.name, r.ns_per_op);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_compiled_vs_reference_p256\": {speedup_256:.2},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_sim_vs_reference_p256\": {speedup_sim_256:.2},"
    );
    let _ = writeln!(
        json,
        "  \"serve_threads\": {},\n  \"serve_requests_per_sec\": {:.0},\n  \
         \"speedup_serve_vs_serial\": {:.2},",
        serve.threads, serve.requests_per_sec, serve.speedup_vs_serial
    );
    if workers > 1 {
        let pool_speedup = lookup(&records, "allreduce-bine-large/sequential/256")
            / lookup(&records, "allreduce-bine-large/pool/256");
        let _ = writeln!(
            json,
            "  \"speedup_pool_vs_sequential_p256\": {pool_speedup:.2},"
        );
        println!("\nspeedup pool vs sequential @p=256: {pool_speedup:.2}x ({workers} workers)");
    } else {
        // A single-worker pool degenerates to the sequential executor plus
        // scheduling overhead; printing a "speedup" would just be noise, so
        // the line is skipped and the recorded parallelism explains why.
        println!(
            "\npool has a single worker (available parallelism {parallelism}); \
             pool-vs-sequential speedup omitted"
        );
    }
    let _ = writeln!(json, "  \"pool_workers\": {workers},");
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"unit\": \"ns/op (min over samples)\"");
    json.push('}');
    json.push('\n');
    std::fs::write(&out_path, &json).expect("failed to write the report");
    println!("speedup compiled vs reference @p=256: {speedup_256:.2}x");
    println!("speedup DES vs reference simulator @p=256: {speedup_sim_256:.2}x");
    println!(
        "serving layer: {:.0} req/s at {} workers ({:.2}x the serial selector)",
        serve.requests_per_sec, serve.threads, serve.speedup_vs_serial
    );
    println!("wrote {out_path}");
}
