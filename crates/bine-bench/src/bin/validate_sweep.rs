//! Validator sweep over the whole schedule catalog.
//!
//! Builds every (collective × algorithm × rank count × segmentation)
//! configuration the catalog supports — regular and irregular (v-variant),
//! power-of-two and non-power-of-two rank counts, non-zero roots for the
//! rooted collectives — and runs each schedule through
//! [`bine_sched::ScheduleValidator`]. Exits non-zero on the first schedule
//! the validator rejects: a failure here means the catalog emitted a
//! schedule that drops data, deadlocks, or miscounts bytes.
//!
//! Builders panic (rather than return `None`) on unsupported rank counts,
//! so every probe runs under `catch_unwind`; a skipped configuration is
//! counted, never silently dropped.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin validate_sweep -- [--max-ranks N]`
//!
//! The CI workflow runs this as the schedule-integrity step.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bine_sched::{
    algorithms, build, build_irregular, irregular_algorithms, validate_schedule, Collective,
    SizeDist, IRREGULAR_COLLECTIVES,
};

fn main() {
    let mut max_ranks = 64usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-ranks" => {
                max_ranks = args
                    .next()
                    .expect("--max-ranks needs a value")
                    .parse()
                    .expect("--max-ranks: integer")
            }
            other => panic!("unknown argument {other}; usage: validate_sweep [--max-ranks N]"),
        }
    }

    // Builder panics on unsupported rank counts are expected and counted;
    // keep their backtraces off stderr so a real failure stays visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut validated = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();

    // Regular catalog: every algorithm at every rank count up to the cap,
    // the rooted collectives additionally at a non-zero root, each at
    // three segmentations.
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            for p in 2..=max_ranks {
                let roots: &[usize] = if collective.is_rooted() && p > 1 {
                    &[0, 1]
                } else {
                    &[0]
                };
                for &root in roots {
                    let built = catch_unwind(AssertUnwindSafe(|| {
                        build(collective, alg.name(), p, root % p)
                    }))
                    .ok()
                    .flatten();
                    let Some(sched) = built else {
                        skipped += 1;
                        continue;
                    };
                    for chunks in [1usize, 2, 4] {
                        let sched = sched.clone().segmented(chunks);
                        validated += 1;
                        if let Err(e) = validate_schedule(&sched) {
                            failures.push(format!(
                                "{}/{} p={p} root={} chunks={chunks}: {e}",
                                collective.name(),
                                alg.name(),
                                root % p
                            ));
                        }
                    }
                }
            }
        }
    }

    // Irregular (v-variant) catalog: every distribution, including the
    // one-heavy layout whose zero-count segments stress the delivery
    // accounting.
    for collective in IRREGULAR_COLLECTIVES {
        for alg in irregular_algorithms(collective) {
            for p in 2..=max_ranks.min(32) {
                for dist in SizeDist::ALL {
                    let counts = dist.counts(p, 0);
                    let built = catch_unwind(AssertUnwindSafe(|| {
                        build_irregular(collective, alg.name(), p, 0, &counts)
                    }))
                    .ok()
                    .flatten();
                    let Some(sched) = built else {
                        skipped += 1;
                        continue;
                    };
                    validated += 1;
                    if let Err(e) = validate_schedule(&sched) {
                        failures.push(format!(
                            "{}v/{} p={p} dist={}: {e}",
                            collective.name(),
                            alg.name(),
                            dist.name()
                        ));
                    }
                }
            }
        }
    }

    std::panic::set_hook(default_hook);
    println!(
        "validate_sweep: {validated} schedules validated, {skipped} unsupported \
         configurations skipped (max {max_ranks} ranks)"
    );
    if !failures.is_empty() {
        eprintln!("\nvalidate_sweep: {} FAILURES", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("validate_sweep: the whole catalog validates");
}
