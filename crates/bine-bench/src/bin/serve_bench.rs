//! Multithreaded benchmark of the selection serving layer.
//!
//! Hammers a shared [`bine_tune::ServiceSelector`] with the standard query
//! mix from `available_parallelism` worker threads (override with
//! `--threads`), reports requests/sec, mean, p99 and p999 request latency, the
//! single-threaded [`bine_tune::Selector`] baseline, and the single-flight
//! compile statistics — then runs one tuned pick end to end on the shared
//! executor pool as a smoke of the full request path.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin serve_bench -- \
//!     [--threads N] [--requests N] [--repeats N] [--system NAME]`
//!
//! The same measurement is recorded into `BENCH_exec.json` by the
//! `bench_exec` bin (`select-mix/serve/...` entries), where the CI
//! `perf_gate` hard-gates it like `/compiled/` and `/sim/`.

use bine_bench::serve::{measure, ServeOptions};
use bine_exec::state::Workload;
use bine_sched::{build, Collective};
use bine_tune::ServiceSelector;

fn main() {
    let mut opts = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--threads" => opts.threads = value("--threads").parse().expect("--threads: integer"),
            "--requests" => {
                opts.requests_per_thread = value("--requests").parse().expect("--requests: integer")
            }
            "--repeats" => opts.repeats = value("--repeats").parse().expect("--repeats: integer"),
            "--system" => opts.system = value("--system"),
            other => panic!(
                "unknown argument {other}; usage: serve_bench \
                 [--threads N] [--requests N] [--repeats N] [--system NAME]"
            ),
        }
    }

    println!(
        "serving {} decision table: {} threads × {} requests × {} repeats\n",
        opts.system, opts.threads, opts.requests_per_thread, opts.repeats
    );
    let m = measure(&opts).expect("serving benchmark failed");
    println!("requests/sec          {:>14.0}", m.requests_per_sec);
    println!("aggregate ns/request  {:>14.1}", m.ns_per_req);
    println!(
        "worker ns/request     {:>14.1}  (x{} workers; the gated statistic)",
        m.worker_ns_per_req, m.threads
    );
    println!("p99 request latency   {:>14.0} ns", m.p99_ns);
    println!("p999 request latency  {:>14.0} ns", m.p999_ns);
    println!(
        "serial ns/request     {:>14.1}  (single-threaded Selector)",
        m.serial_ns_per_req
    );
    println!("speedup vs serial     {:>13.2}x", m.speedup_vs_serial);
    println!(
        "compilations          {:>14}  ({} distinct cache entries — single-flight)",
        m.compilations, m.distinct
    );

    // Full-request-path smoke: resolve + compile + execute one tuned
    // allreduce on the shared pool, verified against the direct build.
    let service = ServiceSelector::load_default().expect("committed tables");
    let pick = service
        .choose(&opts.system, Collective::Allreduce, 16, 1 << 20)
        .expect("tuned pick");
    let name = bine_tune::tuned_name(pick.algorithm, pick.segments);
    let sched = build(Collective::Allreduce, &name, 16, 0).expect("buildable pick");
    let w = Workload::for_schedule(&sched, 4);
    let finals = service
        .execute(
            &opts.system,
            Collective::Allreduce,
            16,
            1 << 20,
            w.initial_state(&sched),
        )
        .expect("execute");
    bine_exec::verify(&w, &finals).expect("tuned allreduce must verify");
    println!("\nexecute smoke: tuned pick {name} @16 ranks ran and verified on the shared pool");
}
