//! Fig. 1 — global-link traffic of a broadcast on an 8-node, 2:1
//! oversubscribed fat tree (two nodes per leaf switch).
//!
//! Paper result: the distance-doubling binomial broadcast (Open MPI) forwards
//! 6n bytes over global links, the distance-halving one (MPICH) 3n bytes.
//! This binary recomputes both, plus the Bine tree, per step.

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::sim::SimRequest;
use bine_net::topology::FatTree;
use bine_net::traffic::measure;
use bine_net::Topology;
use bine_sched::collectives::{broadcast, BroadcastAlg};
use bine_sched::Schedule;

fn per_step_global_bytes(
    sched: &Schedule,
    n: u64,
    topo: &dyn Topology,
    alloc: &Allocation,
) -> Vec<u64> {
    sched
        .steps
        .iter()
        .map(|step| {
            step.messages
                .iter()
                .filter(|m| {
                    !m.is_local() && topo.crosses_groups(alloc.node_of(m.src), alloc.node_of(m.dst))
                })
                .map(|m| m.bytes(n, sched.num_ranks))
                .sum()
        })
        .collect()
}

fn main() {
    let topo = FatTree::figure1();
    let alloc = Allocation::block(8);
    let n: u64 = 1000; // "n bytes" in the figure

    println!("Fig. 1 — broadcast on an 8-node 2:1 oversubscribed fat tree (n = {n} bytes)");
    println!("paper: distance-doubling = 6n, distance-halving = 3n over global links\n");

    for alg in [
        BroadcastAlg::BinomialDistanceDoubling,
        BroadcastAlg::BinomialDistanceHalving,
        BroadcastAlg::BineTree,
    ] {
        let sched = broadcast(8, 0, alg);
        let report = measure(&sched, n, &topo, &alloc);
        let per_step = per_step_global_bytes(&sched, n, &topo, &alloc);
        println!(
            "{:<32} global bytes = {:>5}  ({:.1} n)   per step: {:?}",
            alg.name(),
            report.global_bytes,
            report.global_bytes as f64 / n as f64,
            per_step
        );
    }

    // The same comparison under both time models, at a bandwidth-dominated
    // vector size: the DES tracks per-rank dependencies instead of global
    // barriers, so the traffic difference translates into a larger runtime
    // gap than the synchronous per-step maxima suggest.
    let model = CostModel::default();
    let big = 8 << 20;
    println!("\nmodelled broadcast time at 8 MiB (us): synchronous barrier model vs DES");
    for alg in [
        BroadcastAlg::BinomialDistanceDoubling,
        BroadcastAlg::BinomialDistanceHalving,
        BroadcastAlg::BineTree,
    ] {
        let sched = broadcast(8, 0, alg);
        let sync = model.time_us(&sched, big, &topo, &alloc);
        let des = SimRequest::new(&model, &sched.compile(), big, &topo, &alloc)
            .run()
            .makespan_us();
        println!("{:<32} sync = {sync:>9.1}   DES = {des:>9.1}", alg.name());
    }
}
