//! Eq. 2 / Sec. 2.4.1 — the ratio between the modular distance of
//! communicating ranks in Bine and binomial trees.
//!
//! Paper result: δ_bine(i) / δ_binomial(i) = 2/3 (up to ±1 block), i.e. a
//! 33% reduction in distance and hence an upper bound of 33% on the
//! global-link traffic reduction.

use bine_bench::report::render_table;
use bine_core::distance::{
    delta_bine, delta_binomial, total_distance_bine, total_distance_binomial,
};

fn main() {
    println!("Eq. 2 — distance ratio between Bine and binomial trees\n");
    let mut rows = Vec::new();
    for s in 3..=16u32 {
        let p = 1u64 << s;
        let per_step: Vec<String> = (0..s.min(6))
            .map(|i| {
                format!(
                    "{:.3}",
                    delta_bine(i, s) as f64 / delta_binomial(i, s) as f64
                )
            })
            .collect();
        let total_ratio = total_distance_bine(s) as f64 / total_distance_binomial(s) as f64;
        rows.push(vec![
            p.to_string(),
            s.to_string(),
            per_step.join(" "),
            format!("{total_ratio:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["p", "steps", "ratio at steps 0..5", "total-distance ratio"],
            &rows
        )
    );
    println!(
        "paper: the ratio converges to 2/3 ≈ 0.667 (Eq. 2), bounding the traffic reduction at 33%"
    );
}
