//! CI perf-regression gate: diffs a freshly recorded `BENCH_exec.ci.json`
//! against the committed `BENCH_exec.json` baseline and fails (exit code 1)
//! if any compiled-executor ns/op regressed by more than the threshold.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin perf_gate -- <baseline.json> <current.json> [threshold-%]`
//!
//! When `GITHUB_STEP_SUMMARY` is set (as it is inside GitHub Actions), the
//! markdown diff table is appended to it so the verdict shows up on the
//! workflow summary page.

use std::io::Write as _;
use std::process::ExitCode;

use bine_bench::perfgate::{gate, parse_bench_json, GateOutcome, DEFAULT_THRESHOLD};

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    parse_bench_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn publish_step_summary(outcome: &GateOutcome) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", outcome.markdown());
        }
        Err(e) => eprintln!("warning: cannot append to GITHUB_STEP_SUMMARY ({path}): {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: perf_gate <baseline.json> <current.json> [threshold-%]");
            return ExitCode::from(2);
        }
    };
    let threshold = args
        .get(2)
        .map(|t| {
            t.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad threshold {t}: {e}"))
                / 100.0
        })
        .unwrap_or(DEFAULT_THRESHOLD);

    let outcome = gate(&load(baseline_path), &load(current_path), threshold);
    println!("{}", outcome.markdown());
    publish_step_summary(&outcome);

    if outcome.passed() {
        println!("perf gate PASSED (threshold +{:.0}%)", threshold * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf gate FAILED: {:?} regressed beyond +{:.0}% vs {baseline_path}",
            outcome.failures(),
            threshold * 100.0
        );
        ExitCode::FAILURE
    }
}
