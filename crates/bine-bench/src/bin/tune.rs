//! Regenerates the committed `tuning/*.json` decision tables: one offline
//! tuning sweep per paper system over {allreduce, allgather,
//! reduce-scatter, bcast} (the four collectives the paper's algorithm-flip
//! analysis centres on), with the default `bine-tune` configuration.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin tune [-- --out DIR] [--system NAME] [--max-nodes N]`
//!
//! * `--out DIR` — write tables to `DIR` instead of the committed `tuning/`
//!   directory (what CI's drift gate does before diffing).
//! * `--system NAME` — tune only one system (display name or slug).
//! * `--max-nodes N` — largest node count tuned (default 2048). This trims
//!   only Fugaku's 4096/8192-node 2D tori, whose p²-block schedules are the
//!   repository's one impractically slow sweep; queries above the cap fall
//!   back to the largest tuned breakpoint via the selector's floor lookup.

use std::path::PathBuf;
use std::time::Instant;

use bine_bench::runner::{tune_target, tuned_collectives, MAX_TUNED_NODES};
use bine_bench::systems::System;
use bine_tune::{slug, Tuner, TunerConfig};

fn main() {
    let mut out_dir: Option<PathBuf> = None;
    let mut only_system: Option<String> = None;
    let mut max_nodes = MAX_TUNED_NODES;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(args.next().expect("--out needs a value"))),
            "--system" => {
                only_system = Some(args.next().expect("--system needs a value"));
            }
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .expect("--max-nodes needs a value")
                    .parse()
                    .expect("--max-nodes must be a positive integer");
            }
            other => panic!(
                "unknown argument {other}; usage: tune [--out DIR] [--system NAME] [--max-nodes N]"
            ),
        }
    }
    // The default output is a *write target*, not a load path, so it must
    // resolve even when the directory does not exist yet (`rm -rf tuning`
    // then regenerate is the documented clean-regeneration flow):
    // BINE_TUNING_DIR when set, otherwise the repository checkout —
    // deliberately not `default_tuning_dir()`, whose exe-adjacent probe
    // could silently redirect regenerated tables to e.g. target/release/.
    let out_dir = out_dir.unwrap_or_else(|| match std::env::var_os("BINE_TUNING_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tuning")),
    });
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));

    let systems: Vec<System> = System::all()
        .into_iter()
        .filter(|system| {
            only_system
                .as_deref()
                .is_none_or(|only| slug(system.name) == slug(only))
        })
        .collect();
    let tuned = systems.len();
    // The four systems' sweeps are independent (each tuner owns its
    // schedules, topologies and DES arena), so they run on one thread each:
    // wall time is the slowest system instead of the sum — which is what
    // keeps full regeneration inside the CI drift gate's 5-minute budget at
    // the 512-node DES cap. Results print in system order after joining.
    std::thread::scope(|scope| {
        let out_dir = &out_dir;
        let handles: Vec<_> = systems
            .into_iter()
            .map(|mut system| {
                scope.spawn(move || {
                    let start = Instant::now();
                    system.node_counts.retain(|&n| n <= max_nodes);
                    let target = tune_target(&system, tuned_collectives());
                    let mut tuner = Tuner::new(target, TunerConfig::default());
                    let table = tuner.tune();
                    let path = out_dir.join(format!("{}.json", slug(system.name)));
                    std::fs::write(&path, table.to_json())
                        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                    let des = table
                        .entries
                        .iter()
                        .filter(|e| e.model == bine_tune::ScoreModel::Des)
                        .count();
                    (
                        system.name,
                        table.entries.len(),
                        des,
                        start.elapsed().as_secs_f64(),
                        path,
                    )
                })
            })
            .collect();
        for handle in handles {
            let (name, points, des, secs, path) = handle.join().expect("tuner thread panicked");
            println!(
                "{name:<14} {points:>4} grid points ({des} DES-refined) in {secs:>6.1}s -> {}",
                path.display()
            );
        }
    });
    if tuned == 0 {
        let known: Vec<String> = System::all().iter().map(|s| slug(s.name)).collect();
        panic!(
            "--system {} matches no system; known: {}",
            only_system.as_deref().unwrap_or(""),
            known.join(", ")
        );
    }
}
