//! Regenerates the committed `tuning/*.json` decision tables: one offline
//! tuning sweep per paper system over {allreduce, allgather,
//! reduce-scatter, bcast, alltoall, gather, scatter} (see
//! `bine_bench::runner::tuned_collectives`), with the default `bine-tune`
//! configuration. The v-variant collectives additionally get irregular
//! grids keyed by size distribution (`"dist"` entries, synchronous-model
//! scored).
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin tune [-- --out DIR] [--system NAME] [--max-nodes N]`
//!
//! * `--out DIR` — write tables to `DIR` instead of the committed `tuning/`
//!   directory (what CI's drift gate does before diffing).
//! * `--system NAME` — tune only one system (display name or slug).
//! * `--max-nodes N` — largest node count tuned (default 2048). This trims
//!   only Fugaku's 4096/8192-node 2D tori, whose p²-block schedules are the
//!   repository's one impractically slow sweep; queries above the cap fall
//!   back to the largest tuned breakpoint via the selector's floor lookup.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use bine_bench::runner::{tune_target, tuned_collectives, MAX_TUNED_NODES};
use bine_bench::systems::System;
use bine_sched::Collective;
use bine_tune::{slug, DecisionTable, Entry, Tuner, TunerConfig};

fn main() {
    let mut out_dir: Option<PathBuf> = None;
    let mut only_system: Option<String> = None;
    let mut max_nodes = MAX_TUNED_NODES;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(args.next().expect("--out needs a value"))),
            "--system" => {
                only_system = Some(args.next().expect("--system needs a value"));
            }
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .expect("--max-nodes needs a value")
                    .parse()
                    .expect("--max-nodes must be a positive integer");
            }
            other => panic!(
                "unknown argument {other}; usage: tune [--out DIR] [--system NAME] [--max-nodes N]"
            ),
        }
    }
    // The default output is a *write target*, not a load path, so it must
    // resolve even when the directory does not exist yet (`rm -rf tuning`
    // then regenerate is the documented clean-regeneration flow):
    // BINE_TUNING_DIR when set, otherwise the repository checkout —
    // deliberately not `default_tuning_dir()`, whose exe-adjacent probe
    // could silently redirect regenerated tables to e.g. target/release/.
    let out_dir = out_dir.unwrap_or_else(|| match std::env::var_os("BINE_TUNING_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tuning")),
    });
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));

    let systems: Vec<System> = System::tuned()
        .into_iter()
        .filter(|system| {
            only_system
                .as_deref()
                .is_none_or(|only| slug(system.name) == slug(only))
        })
        .collect();
    let tuned = systems.len();
    let systems: Vec<System> = systems
        .into_iter()
        .map(|mut system| {
            system.node_counts.retain(|&n| n <= max_nodes);
            system
        })
        .collect();

    // Every (system, collective) sweep is independent: the tuner drops its
    // schedule caches between collectives anyway, and the per-collective
    // entry lists merge into a table whose `sort` is a total order over the
    // grid key — so splitting one system's sweep across workers is
    // byte-identical to tuning it on one thread. That split is what keeps
    // full regeneration inside the CI drift gate's 5-minute budget: one
    // system (Leonardo, 8 node counts × 7 collectives + 4 irregular grids)
    // costs more serial time than the budget allows, but its collectives
    // pack onto the worker pool alongside everyone else's. Items are queued
    // heaviest-system-first so the long poles start immediately.
    // `pop` drains from the back, so the heaviest system is pushed last.
    let mut items: Vec<(usize, Collective)> = Vec::new();
    let mut order: Vec<usize> = (0..systems.len()).collect();
    order.sort_by_key(|&i| systems[i].node_counts.iter().sum::<usize>());
    for &i in &order {
        for collective in tuned_collectives() {
            items.push((i, collective));
        }
    }
    let queue = Mutex::new(items);
    let results: Mutex<Vec<(usize, Vec<Entry>, f64)>> = Mutex::new(Vec::new());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(tuned * tuned_collectives().len()) {
            scope.spawn(|| loop {
                let item = queue.lock().unwrap().pop();
                let Some((idx, collective)) = item else { break };
                let start = Instant::now();
                let target = tune_target(&systems[idx], vec![collective]);
                let mut tuner = Tuner::new(target, TunerConfig::default());
                let table = tuner.tune();
                let secs = start.elapsed().as_secs_f64();
                results.lock().unwrap().push((idx, table.entries, secs));
            });
        }
    });
    let mut merged: Vec<(Vec<Entry>, f64)> = systems.iter().map(|_| (Vec::new(), 0.0)).collect();
    for (idx, entries, secs) in results.into_inner().unwrap() {
        merged[idx].0.extend(entries);
        merged[idx].1 += secs;
    }
    for (system, (entries, secs)) in systems.iter().zip(merged) {
        let mut table = DecisionTable {
            system: system.name.to_string(),
            entries,
        };
        table.sort();
        let path = out_dir.join(format!("{}.json", slug(system.name)));
        std::fs::write(&path, table.to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let des = table
            .entries
            .iter()
            .filter(|e| e.model == bine_tune::ScoreModel::Des)
            .count();
        println!(
            "{:<14} {:>4} grid points ({des} DES-refined) in {secs:>6.1}s of worker time -> {}",
            system.name,
            table.entries.len(),
            path.display()
        );
    }
    if tuned == 0 {
        let known: Vec<String> = System::tuned().iter().map(|s| slug(s.name)).collect();
        panic!(
            "--system {} matches no system; known: {}",
            only_system.as_deref().unwrap_or(""),
            known.join(", ")
        );
    }
}
