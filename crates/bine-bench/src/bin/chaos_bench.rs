//! Chaos smoke of the failure-aware serving stack.
//!
//! Hammers a shared [`bine_tune::ServiceSelector`] whose compile path is
//! rigged with seeded, deterministic panics, then simulates every answer
//! under a seeded DES fault plan ([`bine_net::fault::FaultSpec`]). The run
//! fails (non-zero exit) unless:
//!
//! * every request received a compiled schedule (100% answer availability),
//! * every answer was either the tuned pick or the binomial
//!   [`bine_tune::fallback_pick`] (nothing corrupted ever leaves the cache),
//! * every degraded answer simulates **bit-identically** to a
//!   directly-built binomial baseline under the fault plan, and every
//!   healthy answer pins the optimized DES to the reference DES.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin chaos_bench -- \
//!     [--seed N] [--threads N] [--requests N] [--fail-rate F] [--system NAME]`
//!
//! The CI workflow runs this as a smoke step; same seed, same chaos, same
//! report.

use bine_bench::chaos::{run, ChaosOptions};

fn main() {
    let mut opts = ChaosOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--threads" => opts.threads = value("--threads").parse().expect("--threads: integer"),
            "--requests" => {
                opts.requests_per_thread = value("--requests").parse().expect("--requests: integer")
            }
            "--fail-rate" => {
                opts.fail_rate = value("--fail-rate").parse().expect("--fail-rate: float")
            }
            "--system" => opts.system = value("--system"),
            other => panic!(
                "unknown argument {other}; usage: chaos_bench \
                 [--seed N] [--threads N] [--requests N] [--fail-rate F] [--system NAME]"
            ),
        }
    }

    // The injected panics are the whole point of the run; keep their
    // backtraces off stderr so real failures stay visible. Anything else
    // still reaches the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected compile failure"));
        if !injected {
            default_hook(info);
        }
    }));

    println!(
        "chaos: {} table, {} threads × {} requests, fail rate {:.0}%, seed {}\n",
        opts.system,
        opts.threads,
        opts.requests_per_thread,
        opts.fail_rate * 100.0,
        opts.seed
    );
    let report = run(&opts).unwrap_or_else(|e| {
        eprintln!("chaos_bench: {e}");
        std::process::exit(2);
    });

    println!(
        "requests answered     {:>10} / {}",
        report.answered, report.total_requests
    );
    println!(
        "availability          {:>9.1}%",
        report.availability() * 100.0
    );
    println!(
        "tuned answers         {:>10}  ({} degraded to the binomial fallback)",
        report.tuned_answers, report.fallback_answers
    );
    println!(
        "degraded-mode share   {:>9.1}%",
        report.degraded_share() * 100.0
    );
    println!("injected panics       {:>10}", report.injected_panics);
    println!(
        "service counters      {:>10} fallbacks, {} timeouts, {} retries, {} compilations",
        report.service_fallbacks,
        report.service_timeouts,
        report.service_retries,
        report.service_compilations
    );
    println!(
        "faulted DES           {:>10} schedules bit-identical (plan: {} faulted links, {} stragglers)",
        report.sim_checked, report.faulted_links, report.stragglers
    );

    if report.availability() < 1.0 || report.unexpected_answers > 0 {
        eprintln!(
            "\nchaos_bench: FAILED — availability {:.3}%, {} unexpected answers",
            report.availability() * 100.0,
            report.unexpected_answers
        );
        std::process::exit(1);
    }
    println!(
        "\nchaos_bench: 100% availability; {} broken entries served the binomial \
         fallback bit-identically to the baseline",
        report.degraded_entries
    );
}
