//! Adaptive-serving smoke: the online feedback loop against a wrong model.
//!
//! Commits a decision table with the healthy DES winner, then activates a
//! seeded fault plan the model knows nothing about and feeds the observed
//! (faulted-DES) costs back through [`bine_tune::ServiceSelector::observe`].
//! The run fails (non-zero exit) unless the convergence contract holds —
//! [`bine_bench::adaptive::measure`] checks every step structurally:
//!
//! * the diverging entry promotes exactly one override,
//! * the override is the independently computed DES-true winner and the
//!   warm request path serves it,
//! * clearing the faults reverts the overlay to empty and the committed
//!   pick is served again (the committed tables were never mutated).
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin adaptive_bench -- \
//!     [--seed N] [--nodes N] [--bytes N] [--system NAME]`
//!
//! The CI workflow runs this as a smoke step; same seed, same faults, same
//! convergence — every cost in the loop is simulated, so the run is
//! bit-reproducible across machines.

use bine_bench::adaptive::{measure, AdaptiveOptions};

fn main() {
    let mut opts = AdaptiveOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--nodes" => opts.nodes = value("--nodes").parse().expect("--nodes: integer"),
            "--bytes" => opts.bytes = value("--bytes").parse().expect("--bytes: integer"),
            "--system" => opts.system = value("--system"),
            other => panic!(
                "unknown argument {other}; usage: adaptive_bench \
                 [--seed N] [--nodes N] [--bytes N] [--system NAME]"
            ),
        }
    }

    println!(
        "adaptive: {} topology, {} at {} nodes × {} B, seed {}\n",
        opts.system,
        opts.collective.name(),
        opts.nodes,
        opts.bytes,
        opts.seed
    );
    let r = measure(&opts).unwrap_or_else(|e| {
        eprintln!("adaptive_bench: FAILED — {e}");
        std::process::exit(1);
    });

    println!(
        "committed pick        {:>24}  (healthy model: {:.0} us)",
        r.committed_pick, r.committed_healthy_us
    );
    println!(
        "under fault plan      {:>24}  ({:.0} us observed, {:.1}x the model)",
        "…the model is wrong",
        r.committed_faulted_us,
        r.committed_faulted_us / r.committed_healthy_us
    );
    println!(
        "DES-true winner       {:>24}  ({:.0} us under the same plan)",
        r.des_true_pick, r.challenger_faulted_us
    );
    println!(
        "fault plan            seed {}, {} faulted links, {} stragglers",
        r.plan_seed, r.faulted_links, r.stragglers
    );
    println!(
        "feedback loop         {} override, {} revert, {} re-evaluations",
        r.overrides, r.reverts, r.reevals
    );
    println!(
        "warm paths            observe {:.0} ns, overridden hit {:.0} ns",
        r.observe_ns, r.overridden_hit_ns
    );
    println!(
        "\nadaptive_bench: overlay converged to {} and reverted once the faults cleared",
        r.des_true_pick
    );
}
