//! Discrete-event sweep: message size × segment count × algorithm.
//!
//! For each paper topology this binary simulates the allreduce algorithm
//! family with the DES of `bine-net` across the paper's vector sizes and a
//! range of pipeline segment counts, then reports where pipelining moves the
//! algorithm crossover points: configurations where the best algorithm under
//! the segmented (pipelined) prediction differs from the best under the
//! unsegmented one — the effect the synchronous barrier model cannot see.
//!
//! Usage: `cargo run --release -p bine-bench --bin sim_sweep [nodes]`
//! (default 64 nodes per system).

use bine_bench::report::{format_bytes, render_table};
use bine_bench::runner::Evaluator;
use bine_bench::systems::System;
use bine_sched::Collective;

/// Segment counts swept (1 = the unsegmented schedule).
const CHUNKS: [usize; 5] = [1, 2, 4, 8, 16];

/// The allreduce algorithm family of the paper's Fig. 9–11 sweeps.
const ALGORITHMS: [&str; 4] = ["bine-large", "recursive-doubling", "rabenseifner", "ring"];

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("nodes must be an integer"))
        .unwrap_or(64);
    let collective = Collective::Allreduce;
    let mut total_shifts = 0usize;
    let mut total_configs = 0usize;

    for system in System::all() {
        if !system.node_counts.contains(&nodes) {
            continue;
        }
        let mut eval = Evaluator::new(system.clone());
        let sizes = system.vector_sizes.clone();
        println!(
            "=== {} ({nodes} nodes, {}) — simulated allreduce, times in us ===",
            system.name,
            eval.system().topology(nodes).name()
        );
        let mut rows = Vec::new();
        let mut shifts = Vec::new();
        for &n in &sizes {
            let mut row = vec![format_bytes(n)];
            let mut flat_best: Option<(&str, f64)> = None;
            let mut piped_best: Option<(&str, f64, usize)> = None;
            for alg in ALGORITHMS {
                if eval.skip_algorithm(alg, nodes) {
                    row.push("-".into());
                    continue;
                }
                let by_chunks: Vec<(usize, f64)> = CHUNKS
                    .iter()
                    .map(|&s| (s, eval.simulate(collective, alg, nodes, n, s)))
                    .collect();
                let flat = by_chunks[0].1; // CHUNKS[0] == 1
                let (best_s, best_t) = by_chunks
                    .into_iter()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap();
                row.push(if best_s == 1 {
                    format!("{flat:.1}")
                } else {
                    format!("{flat:.1}>{best_t:.1}(x{best_s})")
                });
                if flat_best.is_none_or(|(_, t)| flat < t) {
                    flat_best = Some((alg, flat));
                }
                if piped_best.is_none_or(|(_, t, _)| best_t < t) {
                    piped_best = Some((alg, best_t, best_s));
                }
            }
            let (flat_alg, _) = flat_best.expect("at least one algorithm");
            let (piped_alg, _, piped_s) = piped_best.expect("at least one algorithm");
            row.push(flat_alg.to_string());
            row.push(format!("{piped_alg} (x{piped_s})"));
            total_configs += 1;
            if flat_alg != piped_alg {
                shifts.push((n, flat_alg, piped_alg));
                total_shifts += 1;
                row.push("<< shift".into());
            } else {
                row.push(String::new());
            }
            rows.push(row);
        }
        let mut header = vec!["Vector"];
        header.extend(ALGORITHMS);
        header.extend(["best flat", "best pipelined", ""]);
        println!("{}", render_table(&header, &rows));
        if shifts.is_empty() {
            println!("no crossover shift on {}\n", system.name);
        } else {
            for (n, from, to) in shifts {
                println!(
                    "crossover shift at {}: {from} (unsegmented) -> {to} (pipelined)",
                    format_bytes(n)
                );
            }
            println!();
        }
    }
    println!(
        "{total_shifts} of {total_configs} (system x size) configurations change their best \
         algorithm when schedules are pipelined"
    );
}
