//! Fig. 14 (Appendix B) — which non-contiguous-data strategy wins for the
//! Bine allgather on LUMI, per (node count, vector size), and its gain over
//! the standard binomial butterfly.
//!
//! Paper result: `permute` wins for small vectors (up to 2.27×), `send`
//! takes over at larger node counts, `block-by-block` for large vectors at
//! moderate scale and `two transmissions` at the largest node counts.

use bine_bench::report::{format_bytes, render_table};
use bine_bench::systems::{paper_vector_sizes, System};
use bine_net::cost::CostModel;
use bine_net::trace::JobTraceGenerator;
use bine_sched::collectives::allgather::allgather_with_strategy;
use bine_sched::collectives::{allgather, AllgatherAlg};
use bine_sched::NonContigStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let system = System::lumi();
    let node_counts = vec![8usize, 16, 32, 64, 128, 256, 512, 1024];
    let sizes = paper_vector_sizes();
    let model = CostModel::default();

    println!("Fig. 14 — best non-contiguous-data strategy for the Bine allgather on LUMI");
    println!("(cell = strategy letter and gain over the standard binomial butterfly;");
    println!(" B = block-by-block, P = permute, S = send, T = two transmissions)\n");

    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![format_bytes(n)];
        for &nodes in &node_counts {
            let topo = system.topology(nodes);
            let mut rng = StdRng::seed_from_u64(0xF16 ^ nodes as u64);
            let alloc =
                JobTraceGenerator::with_occupancy(0.9).sample(topo.as_ref(), nodes, 1, &mut rng)[0]
                    .allocation();
            let baseline = model.time_us(
                &allgather(nodes, AllgatherAlg::RecursiveDoubling),
                n,
                topo.as_ref(),
                &alloc,
            );
            let mut best: Option<(char, f64)> = None;
            for strategy in NonContigStrategy::ALL {
                let sched = allgather_with_strategy(nodes, strategy);
                let t = model.time_us(&sched, n, topo.as_ref(), &alloc);
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((strategy.code(), t));
                }
            }
            let (code, t) = best.unwrap();
            row.push(format!("{code} {:.2}x", baseline / t));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["Vector".to_string()];
    header.extend(node_counts.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&header_refs, &rows));
}
