//! Fig. 9 — LUMI: (a) best-algorithm heatmap for allreduce across node
//! counts and vector sizes, (b) distribution of Bine's improvement over the
//! best state-of-the-art algorithm for all eight collectives.
//!
//! Paper result: Bine is the best allreduce in almost all configurations
//! (up to 1.62×), and the best algorithm in 21–85% of configurations for the
//! other collectives.

use bine_bench::systems::System;
use bine_bench::tables::{des_comparison_table, heatmap_table, improvement_summary};
use bine_sched::Collective;

fn main() {
    println!("{}", heatmap_table(System::lumi(), Collective::Allreduce));
    println!();
    println!("{}", improvement_summary(System::lumi()));
    println!();
    println!(
        "{}",
        des_comparison_table(System::lumi(), Collective::Allreduce, 64, 8)
    );
}
