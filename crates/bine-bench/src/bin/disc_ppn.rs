//! Sec. 6.1 — impact of the number of processes per node: 64 LUMI nodes with
//! one or four ranks per node.
//!
//! Paper result: results are largely consistent, but some collectives see
//! larger Bine gains with four processes per node because each node injects
//! more traffic, which emphasises the global-link reduction (e.g. the 1 MiB
//! reduce-scatter gain grows from 59% to 84%).

use bine_bench::report::{format_bytes, render_table};
use bine_bench::systems::{paper_vector_sizes, System, SMALL_VECTOR_THRESHOLD};
use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::trace::JobTraceGenerator;
use bine_sched::{bine_default, binomial_default, build, Collective};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let system = System::lumi();
    let nodes = 64usize;
    let model = CostModel::default();
    let topo = system.topology(nodes);

    // Same set of physical nodes for both runs.
    let mut rng = StdRng::seed_from_u64(0x66);
    let node_sample =
        JobTraceGenerator::with_occupancy(0.9).sample(topo.as_ref(), nodes, 1, &mut rng)[0]
            .nodes
            .clone();

    println!("Sec. 6.1 — Bine vs binomial speedup on 64 LUMI nodes, 1 vs 4 processes per node\n");

    let mut rows = Vec::new();
    for collective in [
        Collective::Allreduce,
        Collective::ReduceScatter,
        Collective::Allgather,
        Collective::Broadcast,
    ] {
        for &n in &paper_vector_sizes() {
            if n > 64 * 1024 * 1024 {
                continue;
            }
            let mut cells = vec![collective.name().to_string(), format_bytes(n)];
            for ppn in [1usize, 4] {
                let ranks = nodes * ppn;
                let rank_nodes: Vec<usize> = (0..ranks).map(|r| node_sample[r / ppn]).collect();
                let alloc = Allocation::from_nodes(rank_nodes);
                let small = n <= SMALL_VECTOR_THRESHOLD;
                let bine = build(collective, bine_default(collective, small), ranks, 0).unwrap();
                let base =
                    build(collective, binomial_default(collective, small), ranks, 0).unwrap();
                let speedup = model.time_us(&base, n, topo.as_ref(), &alloc)
                    / model.time_us(&bine, n, topo.as_ref(), &alloc);
                cells.push(format!("{speedup:.2}x"));
            }
            rows.push(cells);
        }
    }
    println!(
        "{}",
        render_table(
            &["collective", "vector", "speedup @1 ppn", "speedup @4 ppn"],
            &rows
        )
    );
}
