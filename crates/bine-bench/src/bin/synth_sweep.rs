//! Schedule-synthesis smoke sweep: synthesize, validate, race the catalog.
//!
//! For every tuned system ([`System::tuned`]: the paper's four plus the
//! heterogeneous island fat tree) this bin derives the serving-layer
//! topology view at each small node count, synthesizes every provider
//! candidate (`synth:forestcoll:*`, `synth:multilevel:*`), runs each
//! schedule through [`bine_sched::ScheduleValidator`], and compares its
//! DES makespan against the best fixed-catalog pick at the same grid
//! point.
//!
//! Homogeneous fabrics are allowed to prefer the hand-derived catalog —
//! those results are reported but never fatal. The heterogeneous fabric
//! is the topology the synthesizers were derived for: the sweep exits
//! non-zero unless a synthesized schedule strictly beats the best catalog
//! pick on at least one HeteroFat grid point, or if any synthesized
//! schedule fails validation anywhere.
//!
//! Usage:
//! `cargo run --release -p bine-bench --bin synth_sweep -- [--max-nodes N]`
//!
//! The CI workflow runs this as the synthesis-integrity step.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bine_bench::systems::System;
use bine_net::cost::CostModel;
use bine_net::sim::SimRequest;
use bine_net::view::{system_allocation, system_view, TUNING_PLACEMENT_SEED};
use bine_sched::{
    algorithms, build, synth_algorithms, validate_schedule, Collective, CompiledSchedule, SynthSpec,
};

/// The collectives the synthesizers support (tree-shaped dataflow).
const COLLECTIVES: [Collective; 3] = [
    Collective::Broadcast,
    Collective::Reduce,
    Collective::Allreduce,
];

/// Vector sizes raced under the DES: one latency-bound, one
/// bandwidth-bound point per grid cell keeps the sweep under a minute.
const SIZES: [u64; 2] = [64 * 1024, 16 * 1024 * 1024];

fn main() {
    let mut max_nodes = 32usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-nodes" => {
                max_nodes = args
                    .next()
                    .expect("--max-nodes needs a value")
                    .parse()
                    .expect("--max-nodes: integer")
            }
            other => panic!("unknown argument {other}; usage: synth_sweep [--max-nodes N]"),
        }
    }

    // Catalog builders panic on unsupported rank counts; keep those
    // expected backtraces off stderr so a real failure stays visible.
    std::panic::set_hook(Box::new(|_| {}));

    let model = CostModel::default();
    let mut validated = 0usize;
    let mut raced = 0usize;
    let mut hetero_wins = Vec::new();
    let mut failures = Vec::new();

    for system in System::tuned() {
        let slug = system.slug();
        let hetero = slug == "heterofat";
        for &nodes in system.node_counts.iter().filter(|&&n| n <= max_nodes) {
            let Some(view) = system_view(&slug, nodes) else {
                continue;
            };
            let topo = system.topology(nodes);
            let alloc = system_allocation(&slug, topo.as_ref(), nodes, TUNING_PLACEMENT_SEED);
            for collective in COLLECTIVES {
                // Synthesize and validate every provider candidate once.
                let mut synth: Vec<(String, CompiledSchedule)> = Vec::new();
                for id in synth_algorithms(collective, &view) {
                    let spec = SynthSpec::parse(id.name())
                        .unwrap_or_else(|| panic!("unparseable synth id {}", id.name()));
                    let Some(sched) = spec.synthesize(collective, &view, 0) else {
                        failures.push(format!(
                            "{slug}/{}/{} p={nodes}: synthesis returned nothing",
                            collective.name(),
                            id.name()
                        ));
                        continue;
                    };
                    validated += 1;
                    if let Err(e) = validate_schedule(&sched) {
                        failures.push(format!(
                            "{slug}/{}/{} p={nodes}: {e}",
                            collective.name(),
                            id.name()
                        ));
                        continue;
                    }
                    synth.push((id.name().to_string(), sched.compile()));
                }
                if synth.is_empty() {
                    continue;
                }

                // Best fixed-catalog pick at the same grid point.
                let catalog: Vec<(String, CompiledSchedule)> = algorithms(collective)
                    .iter()
                    .filter_map(|alg| {
                        let sched = catch_unwind(AssertUnwindSafe(|| {
                            build(collective, alg.name(), nodes, 0)
                        }))
                        .ok()
                        .flatten()?;
                        Some((alg.name().to_string(), sched.compile()))
                    })
                    .collect();

                for &n in &SIZES {
                    let race = |compiled: &CompiledSchedule| {
                        SimRequest::new(&model, compiled, n, topo.as_ref(), &alloc)
                            .time_only()
                            .run()
                            .makespan_us()
                    };
                    let best_synth = synth
                        .iter()
                        .map(|(name, c)| (name.as_str(), race(c)))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("non-empty synth set");
                    let best_cat = catalog
                        .iter()
                        .map(|(name, c)| (name.as_str(), race(c)))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("non-empty catalog");
                    raced += 1;
                    let verdict = if best_synth.1 < best_cat.1 {
                        "WIN "
                    } else {
                        "loss"
                    };
                    println!(
                        "{verdict} {slug:>12} {:>9} p={nodes:<4} n={n:<9} \
                         synth {} {:>10.2}us vs catalog {} {:>10.2}us",
                        collective.name(),
                        best_synth.0,
                        best_synth.1,
                        best_cat.0,
                        best_cat.1,
                    );
                    if hetero && best_synth.1 < best_cat.1 {
                        hetero_wins.push(format!(
                            "{}/p={nodes}/n={n}: {} {:.2}us beats {} {:.2}us",
                            collective.name(),
                            best_synth.0,
                            best_synth.1,
                            best_cat.0,
                            best_cat.1,
                        ));
                    }
                }
            }
        }
    }

    println!("\nvalidated {validated} synthesized schedules, raced {raced} grid points");
    if !failures.is_empty() {
        eprintln!("{} validation failures:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if hetero_wins.is_empty() {
        eprintln!(
            "synthesis never beat the catalog on the heterogeneous fabric it was derived for"
        );
        std::process::exit(1);
    }
    println!(
        "{} HeteroFat wins, e.g. {}",
        hetero_wins.len(),
        hetero_wins[0]
    );
}
