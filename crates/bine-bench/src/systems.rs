//! Models of the four systems used in the paper's evaluation (Table 2).

use bine_net::topology::{Dragonfly, FatTree, Topology, Torus};

/// Which of the paper's four systems a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// LUMI: 24-group Slingshot Dragonfly, 124 nodes per group (Sec. 5.1).
    Lumi,
    /// Leonardo: 23-group Dragonfly+, 180 nodes per group (Sec. 5.2).
    Leonardo,
    /// MareNostrum 5: 2:1 oversubscribed fat tree, 160-node subtrees (Sec. 5.3).
    MareNostrum5,
    /// Fugaku: 6D torus, evaluated on 3D sub-tori (Sec. 5.4).
    Fugaku,
}

/// An evaluation target: node counts, vector sizes and a topology factory.
#[derive(Debug, Clone)]
pub struct System {
    /// Display name.
    pub name: &'static str,
    /// Which machine this models.
    pub kind: SystemKind,
    /// Node counts to sweep (power-of-two, as reported in the paper).
    pub node_counts: Vec<usize>,
    /// Vector sizes in bytes to sweep.
    pub vector_sizes: Vec<u64>,
}

/// The vector sizes used throughout Sec. 5: 32 B to 512 MiB.
pub fn paper_vector_sizes() -> Vec<u64> {
    vec![
        32,
        256,
        2 * 1024,
        16 * 1024,
        128 * 1024,
        1024 * 1024,
        8 * 1024 * 1024,
        64 * 1024 * 1024,
        512 * 1024 * 1024,
    ]
}

/// Vector sizes at or below this value use the small-vector algorithm
/// variants (tree broadcast/reduce, recursive-doubling allreduce), larger
/// ones the large-vector compositions — mirroring the switch points of
/// production MPI libraries.
pub const SMALL_VECTOR_THRESHOLD: u64 = 32 * 1024;

impl System {
    /// The LUMI configuration of Sec. 5.1 (16–1024 nodes).
    pub fn lumi() -> Self {
        Self {
            name: "LUMI",
            kind: SystemKind::Lumi,
            node_counts: vec![16, 32, 64, 128, 256, 512, 1024],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The Leonardo configuration of Sec. 5.2 (16–2048 nodes).
    pub fn leonardo() -> Self {
        Self {
            name: "Leonardo",
            kind: SystemKind::Leonardo,
            node_counts: vec![16, 32, 64, 128, 256, 512, 1024, 2048],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The MareNostrum 5 configuration of Sec. 5.3 (4–64 nodes).
    pub fn marenostrum5() -> Self {
        Self {
            name: "MareNostrum 5",
            kind: SystemKind::MareNostrum5,
            node_counts: vec![4, 8, 16, 32, 64],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The Fugaku configuration of Sec. 5.4: 2x2x2, 4x4x4, 8x8x8, 64x64 and
    /// 32x256-node 3D/2D sub-tori.
    pub fn fugaku() -> Self {
        Self {
            name: "Fugaku",
            kind: SystemKind::Fugaku,
            node_counts: vec![8, 64, 512, 4096, 8192],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// All four systems.
    pub fn all() -> Vec<System> {
        vec![
            Self::lumi(),
            Self::leonardo(),
            Self::marenostrum5(),
            Self::fugaku(),
        ]
    }

    /// The torus shape used for a Fugaku job of `nodes` nodes.
    pub fn fugaku_dims(nodes: usize) -> Vec<usize> {
        match nodes {
            8 => vec![2, 2, 2],
            64 => vec![4, 4, 4],
            512 => vec![8, 8, 8],
            4096 => vec![64, 64],
            8192 => vec![32, 256],
            _ => {
                // Fall back to a balanced 3D factorisation for other counts.
                let mut dims = vec![1usize; 3];
                let mut rest = nodes;
                let mut d = 0;
                while rest > 1 {
                    dims[d % 3] *= 2;
                    rest /= 2;
                    d += 1;
                }
                dims
            }
        }
    }

    /// Builds the topology model hosting a job of `nodes` nodes.
    ///
    /// For the group-based systems the topology is the full machine (the job
    /// occupies its first `nodes` nodes under a block allocation); for the
    /// torus the job gets its own sub-torus, as on the real machine.
    pub fn topology(&self, nodes: usize) -> Box<dyn Topology + Send + Sync> {
        match self.kind {
            SystemKind::Lumi => Box::new(Dragonfly::lumi()),
            SystemKind::Leonardo => Box::new(Dragonfly::leonardo()),
            SystemKind::MareNostrum5 => {
                // The ACC partition is modelled as 8 full-bandwidth 160-node
                // subtrees: the paper's 4–64-node jobs spanned between one
                // and eight subtrees (Sec. 5.3.1).
                Box::new(FatTree::marenostrum5(1280.max(nodes.next_multiple_of(160))))
            }
            SystemKind::Fugaku => Box::new(Torus::new(Self::fugaku_dims(nodes))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_are_large_enough_for_every_node_count() {
        for system in System::all() {
            for &nodes in &system.node_counts {
                let topo = system.topology(nodes);
                assert!(
                    topo.num_nodes() >= nodes,
                    "{}: topology {} too small for {nodes} nodes",
                    system.name,
                    topo.name()
                );
            }
        }
    }

    #[test]
    fn fugaku_dims_match_the_paper() {
        assert_eq!(System::fugaku_dims(8), vec![2, 2, 2]);
        assert_eq!(System::fugaku_dims(512), vec![8, 8, 8]);
        assert_eq!(System::fugaku_dims(8192), vec![32, 256]);
        assert_eq!(System::fugaku_dims(128).iter().product::<usize>(), 128);
    }

    #[test]
    fn vector_sizes_span_32b_to_512mib() {
        let sizes = paper_vector_sizes();
        assert_eq!(sizes.first(), Some(&32));
        assert_eq!(sizes.last(), Some(&(512 * 1024 * 1024)));
        assert_eq!(sizes.len(), 9);
    }
}
