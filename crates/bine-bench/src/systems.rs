//! Models of the four systems used in the paper's evaluation (Table 2),
//! plus the heterogeneous island fat tree the schedule-synthesis layer is
//! exercised on.

use bine_net::topology::Topology;

/// Which modelled system a configuration targets: the paper's four plus
/// the synthetic heterogeneous island fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// LUMI: 24-group Slingshot Dragonfly, 124 nodes per group (Sec. 5.1).
    Lumi,
    /// Leonardo: 23-group Dragonfly+, 180 nodes per group (Sec. 5.2).
    Leonardo,
    /// MareNostrum 5: 2:1 oversubscribed fat tree, 160-node subtrees (Sec. 5.3).
    MareNostrum5,
    /// Fugaku: 6D torus, evaluated on 3D sub-tori (Sec. 5.4).
    Fugaku,
    /// HeteroFat: 16-node islands with thin shared uplinks
    /// ([`bine_net::topology::FatTree::hetero_island`]) — the committed
    /// heterogeneous target of the schedule synthesizers.
    HeteroFat,
}

/// An evaluation target: node counts, vector sizes and a topology factory.
#[derive(Debug, Clone)]
pub struct System {
    /// Display name.
    pub name: &'static str,
    /// Which machine this models.
    pub kind: SystemKind,
    /// Node counts to sweep (power-of-two, as reported in the paper).
    pub node_counts: Vec<usize>,
    /// Vector sizes in bytes to sweep.
    pub vector_sizes: Vec<u64>,
}

/// The vector sizes used throughout Sec. 5: 32 B to 512 MiB.
pub fn paper_vector_sizes() -> Vec<u64> {
    vec![
        32,
        256,
        2 * 1024,
        16 * 1024,
        128 * 1024,
        1024 * 1024,
        8 * 1024 * 1024,
        64 * 1024 * 1024,
        512 * 1024 * 1024,
    ]
}

/// Vector sizes at or below this value use the small-vector algorithm
/// variants (tree broadcast/reduce, recursive-doubling allreduce), larger
/// ones the large-vector compositions — mirroring the switch points of
/// production MPI libraries.
pub const SMALL_VECTOR_THRESHOLD: u64 = 32 * 1024;

impl System {
    /// The LUMI configuration of Sec. 5.1 (16–1024 nodes).
    pub fn lumi() -> Self {
        Self {
            name: "LUMI",
            kind: SystemKind::Lumi,
            node_counts: vec![16, 32, 64, 128, 256, 512, 1024],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The Leonardo configuration of Sec. 5.2 (16–2048 nodes).
    pub fn leonardo() -> Self {
        Self {
            name: "Leonardo",
            kind: SystemKind::Leonardo,
            node_counts: vec![16, 32, 64, 128, 256, 512, 1024, 2048],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The MareNostrum 5 configuration of Sec. 5.3 (4–64 nodes).
    pub fn marenostrum5() -> Self {
        Self {
            name: "MareNostrum 5",
            kind: SystemKind::MareNostrum5,
            node_counts: vec![4, 8, 16, 32, 64],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The Fugaku configuration of Sec. 5.4: 2x2x2, 4x4x4, 8x8x8, 64x64 and
    /// 32x256-node 3D/2D sub-tori.
    pub fn fugaku() -> Self {
        Self {
            name: "Fugaku",
            kind: SystemKind::Fugaku,
            node_counts: vec![8, 64, 512, 4096, 8192],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The heterogeneous island fat tree the schedule synthesizers target:
    /// small jobs on a fabric whose 20:1 local/global bandwidth gap the
    /// fixed catalog cannot see. Kept out of [`System::all`] (the paper
    /// sweeps iterate that); tuning and the synthesis smoke sweep use
    /// [`System::tuned`].
    pub fn heterofat() -> Self {
        Self {
            name: "HeteroFat",
            kind: SystemKind::HeteroFat,
            node_counts: vec![16, 32, 64],
            vector_sizes: paper_vector_sizes(),
        }
    }

    /// The paper's four evaluation systems.
    pub fn all() -> Vec<System> {
        vec![
            Self::lumi(),
            Self::leonardo(),
            Self::marenostrum5(),
            Self::fugaku(),
        ]
    }

    /// Every system with a committed decision table: the paper's four plus
    /// the heterogeneous synthesis target. This is the list the tuner and
    /// the drift gate sweep.
    pub fn tuned() -> Vec<System> {
        let mut systems = Self::all();
        systems.push(Self::heterofat());
        systems
    }

    /// The torus shape used for a Fugaku job of `nodes` nodes.
    pub fn fugaku_dims(nodes: usize) -> Vec<usize> {
        bine_net::view::fugaku_dims(nodes)
    }

    /// File-name slug of this system (`"MareNostrum 5"` → `"marenostrum5"`),
    /// the key of [`bine_net::view::system_topology`] and of the committed
    /// `tuning/{slug}.json` table.
    pub fn slug(&self) -> String {
        self.name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }

    /// Builds the topology model hosting a job of `nodes` nodes.
    ///
    /// Delegates to [`bine_net::view::system_topology`] — the same factory
    /// the serving layer's view derivation uses, so benches and the tuner
    /// can never disagree with serving about what a system looks like.
    pub fn topology(&self, nodes: usize) -> Box<dyn Topology + Send + Sync> {
        bine_net::view::system_topology(&self.slug(), nodes)
            .unwrap_or_else(|| panic!("no topology factory for {}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_are_large_enough_for_every_node_count() {
        for system in System::all() {
            for &nodes in &system.node_counts {
                let topo = system.topology(nodes);
                assert!(
                    topo.num_nodes() >= nodes,
                    "{}: topology {} too small for {nodes} nodes",
                    system.name,
                    topo.name()
                );
            }
        }
    }

    #[test]
    fn fugaku_dims_match_the_paper() {
        assert_eq!(System::fugaku_dims(8), vec![2, 2, 2]);
        assert_eq!(System::fugaku_dims(512), vec![8, 8, 8]);
        assert_eq!(System::fugaku_dims(8192), vec![32, 256]);
        assert_eq!(System::fugaku_dims(128).iter().product::<usize>(), 128);
    }

    #[test]
    fn heterofat_rides_along_for_tuning_but_not_the_paper_sweeps() {
        assert!(System::all()
            .iter()
            .all(|s| s.kind != SystemKind::HeteroFat));
        let tuned = System::tuned();
        assert!(tuned.iter().any(|s| s.kind == SystemKind::HeteroFat));
        assert_eq!(tuned.len(), System::all().len() + 1);
        let hf = System::heterofat();
        assert_eq!(hf.slug(), "heterofat");
        for &nodes in &hf.node_counts {
            assert!(hf.topology(nodes).num_nodes() >= nodes);
        }
        // The fabric is genuinely heterogeneous: distinct link bandwidths.
        let topo = hf.topology(32);
        let bws: std::collections::BTreeSet<u64> = (0..topo.num_links())
            .map(|l| topo.link(l).bandwidth_gib_s.to_bits())
            .collect();
        assert!(bws.len() >= 2, "expected >1 distinct link bandwidth");
    }

    #[test]
    fn vector_sizes_span_32b_to_512mib() {
        let sizes = paper_vector_sizes();
        assert_eq!(sizes.first(), Some(&32));
        assert_eq!(sizes.last(), Some(&(512 * 1024 * 1024)));
        assert_eq!(sizes.len(), 9);
    }
}
