//! Crash-chaos harness for the shrink-and-retry recovery path: hammers
//! [`bine_tune::ServiceSelector::try_execute_recovering`] with seeded
//! dead-rank plans and verifies every answer against a directly-built
//! reference.
//!
//! Where the [`crate::chaos`] harness injects *compile* failures and pins
//! degraded answers under a faulted DES, this harness injects *crash*
//! faults at execution time and asserts the recovery contracts of the
//! serving layer:
//!
//! 1. **100% answer availability** — every request gets a typed outcome:
//!    a completed run over the full communicator, a recovery over the
//!    survivors, or a typed [`bine_exec::ExecError::RankDead`] when the
//!    dead rank's payload is genuinely unrecoverable (a broadcast root).
//!    Nothing hangs, nothing panics, nothing is answered with a wrong
//!    outcome class.
//! 2. **Recovered answers are bit-identical to a direct shrunk run** —
//!    for every recovery, the final block stores equal a reference
//!    interpreter run of the same pick built directly on the survivor
//!    communicator, the recovery schedule passes the
//!    [`bine_sched::ScheduleValidator`], and its [`TrafficReport`] equals
//!    the directly-built schedule's report on the host topology.
//!
//! [`run`] is shared by the `crash_chaos` bin (the CI smoke step) and the
//! unit tests below.
//!
//! [`TrafficReport`]: bine_net::traffic::TrafficReport

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use bine_exec::{ExecError, Workload};
use bine_net::allocation::Allocation;
use bine_net::traffic;
use bine_sched::{validate_schedule, Collective, ProviderSet, Schedule};
use bine_tune::{fallback_pick, slug, tuned_name, Served, ServiceSelector};

use crate::systems::System;

/// Configuration of one crash-chaos run.
#[derive(Debug, Clone)]
pub struct CrashOptions {
    /// System whose committed decision table is served (and whose topology
    /// hosts the traffic accounting of the recovery schedules).
    pub system: String,
    /// Concurrent requester threads in the storm phase.
    pub threads: usize,
    /// Requests issued per thread during the storm (floored at one full
    /// pass over the scenario list).
    pub requests_per_thread: usize,
    /// Seed of the dead-rank draws: same seed, same victims, same run.
    pub seed: u64,
    /// Elements per block of the executed workloads (kept small: the
    /// harness checks bits, not throughput).
    pub elems_per_block: usize,
}

impl Default for CrashOptions {
    fn default() -> Self {
        CrashOptions {
            system: "LUMI".into(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            requests_per_thread: 96,
            seed: 42,
            elems_per_block: 2,
        }
    }
}

/// Outcome of one crash-chaos run. `availability` must be 1.0 and
/// `unexpected_outcomes` 0 for the run to count as passed (the
/// `crash_chaos` bin exits non-zero otherwise); bit-identity of the
/// recovered answers is verified inside [`run`], which errors on any
/// mismatch.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Requests issued during the storm phase.
    pub total_requests: u64,
    /// Storm requests that received a typed outcome.
    pub answered: u64,
    /// Storm answers that completed over the full communicator.
    pub full_answers: u64,
    /// Storm answers recovered over the survivor communicator.
    pub recovered_answers: u64,
    /// Storm answers that were the expected typed unrecoverable error
    /// (a dead rank whose payload exists nowhere else).
    pub unrecoverable_answers: u64,
    /// Storm answers whose outcome class did not match the scenario —
    /// always 0 unless the recovery ladder misjudged a crash plan.
    pub unexpected_outcomes: u64,
    /// Distinct scenarios in the mix (query × kill plan).
    pub scenarios: usize,
    /// Recoveries verified bit-identical to a direct shrunk-communicator
    /// reference run (a mismatch aborts [`run`] instead).
    pub recoveries_checked: usize,
    /// Recovery schedules whose [`bine_net::traffic::TrafficReport`]
    /// matched the directly-built schedule's report.
    pub traffic_checked: usize,
    /// Full-communicator answers verified against the healthy reference
    /// interpreter (per surviving rank when the plan had a harmless death).
    pub full_checked: usize,
    /// Typed unrecoverable errors verified to name the seeded victim.
    pub unrecoverable_checked: usize,
    /// Service counter: executions that stalled on a dead rank.
    pub service_stalls: u64,
    /// Service counter: stalls recovered by shrink-and-retry.
    pub service_recoveries: u64,
}

impl CrashReport {
    /// Fraction of storm requests that received a typed outcome. The
    /// contract is exactly 1.0.
    pub fn availability(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            self.answered as f64 / self.total_requests as f64
        }
    }
}

/// The crash query mix: the four tuned collectives at two node counts and
/// two vector sizes, so both recovery cache size classes and the
/// below-grid clamp are exercised. Node counts stay small — every request
/// executes real schedules, twice when it recovers.
pub fn queries() -> Vec<(Collective, usize, u64)> {
    let mut q = Vec::new();
    for &collective in &[
        Collective::Allreduce,
        Collective::Allgather,
        Collective::ReduceScatter,
        Collective::Broadcast,
    ] {
        for &nodes in &[8usize, 16] {
            for &bytes in &[64u64, 1 << 20] {
                q.push((collective, nodes, bytes));
            }
        }
    }
    q
}

/// Stateless splitmix64 mix (the same construction the sibling chaos
/// harness and the DES fault plans use for their seeded draws).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The outcome class a scenario's kill plan must produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// No load-bearing rank died: the run completes over the full
    /// communicator.
    Full,
    /// A load-bearing rank died and the survivors can rebuild: the service
    /// shrinks and retries.
    Recovered,
    /// The dead rank's payload exists nowhere else (or no algorithm builds
    /// on the survivors): the stall surfaces as a typed error.
    Unrecoverable,
}

/// One storm scenario: a serving query plus a seeded kill plan and the
/// outcome class it must produce.
#[derive(Debug, Clone)]
struct Scenario {
    collective: Collective,
    nodes: usize,
    bytes: u64,
    dead: Vec<usize>,
    expect: Expect,
}

/// True when `rank` never sends in `sched` — its death stalls nobody.
fn is_leaf(sched: &Schedule, rank: usize) -> bool {
    sched.messages().all(|(_, m)| m.src != rank)
}

/// Derives the deterministic scenario list: for every query, a healthy
/// plan, a seeded non-root kill and a rank-0 kill.
///
/// The expected class encodes the recovery ladder's reach: the reduction
/// and gather families re-contribute from every survivor and always have a
/// linear algorithm at the shrunk (non-power-of-two) rank count, so any
/// single death recovers. Rooted dissemination (broadcast) recovers never:
/// a dead root's payload is lost, a dead leaf stalls nobody, and a dead
/// interior rank leaves a survivor count no tree builder supports — the
/// contract there is a *typed* error, not a hang.
/// The provider set of one loaded system's index — tuned picks can be
/// synthesized (`synth:` names), which the bare catalog cannot build.
fn providers_of(service: &ServiceSelector, sys: usize) -> ProviderSet {
    service
        .index(sys)
        .map(|i| i.providers().clone())
        .unwrap_or_default()
}

fn scenarios(service: &ServiceSelector, sys: usize, seed: u64) -> Result<Vec<Scenario>, String> {
    // Tuned picks can be synthesized (`synth:` names), so they are built
    // through the index's provider set, never the bare catalog.
    let providers = providers_of(service, sys);
    let mut out = Vec::new();
    for (j, &(collective, nodes, bytes)) in queries().iter().enumerate() {
        let tuned = service
            .choose_at(sys, collective, nodes, bytes)
            .ok_or_else(|| {
                format!(
                    "no table entry for ({}, {nodes}, {bytes})",
                    collective.name()
                )
            })?;
        let pick = tuned_name(tuned.algorithm, tuned.segments);
        let sched = providers
            .build(collective, &pick, nodes, 0)
            .ok_or_else(|| format!("tuned pick {pick} unbuildable at {nodes} ranks"))?;
        out.push(Scenario {
            collective,
            nodes,
            bytes,
            dead: vec![],
            expect: Expect::Full,
        });
        let victim = 1 + (splitmix64(seed ^ j as u64) as usize) % (nodes - 1);
        let expect = match collective {
            Collective::Broadcast if is_leaf(&sched, victim) => Expect::Full,
            Collective::Broadcast => {
                // Mirrors shrink_and_retry's candidate probe — the slot
                // pick, then the binomial fallback, on the survivor
                // communicator. A synthesized pick builds at any rank
                // count its view covers, so an interior-victim broadcast
                // that used to be unrecoverable (no non-pow2 catalog
                // builder) now shrinks and recovers.
                let survivors = nodes - 1;
                let recoverable = [pick.as_str(), fallback_pick(collective, bytes)]
                    .iter()
                    .any(|cand| {
                        catch_unwind(AssertUnwindSafe(|| {
                            providers.build(collective, cand, survivors, 0)
                        }))
                        .ok()
                        .flatten()
                        .is_some()
                    });
                if recoverable {
                    Expect::Recovered
                } else {
                    Expect::Unrecoverable
                }
            }
            _ => Expect::Recovered,
        };
        out.push(Scenario {
            collective,
            nodes,
            bytes,
            dead: vec![victim],
            expect,
        });
        out.push(Scenario {
            collective,
            nodes,
            bytes,
            dead: vec![0],
            expect: match collective {
                Collective::Broadcast => Expect::Unrecoverable,
                _ => Expect::Recovered,
            },
        });
    }
    Ok(out)
}

/// Runs the crash-chaos harness: a multi-threaded storm of
/// `try_execute_recovering` requests under seeded kill plans, then a
/// serial verification pass that re-runs every scenario and checks each
/// outcome in depth — recovered finals against a direct shrunk-communicator
/// reference run, recovery schedules through the validator and the traffic
/// accountant, typed errors against the seeded victim.
///
/// `Err` means a structural contract broke (an unanswered request in the
/// verification pass, a bit mismatch, a traffic mismatch, an invalid
/// recovery schedule); storm-phase availability lands in the report for
/// the caller to judge.
pub fn run(opts: &CrashOptions) -> Result<CrashReport, String> {
    let system = System::all()
        .into_iter()
        .find(|s| slug(s.name) == slug(&opts.system))
        .ok_or_else(|| format!("no benchmark system named {:?}", opts.system))?;
    let service = ServiceSelector::load_default()?;
    let sys = service.resolve_system(&opts.system)?;
    let scenarios = scenarios(&service, sys, opts.seed)?;
    let elems = opts.elems_per_block.max(1);

    // --- storm phase: concurrent requests with seeded kill plans ---
    let threads = opts.threads.max(1);
    let requests_per_thread = opts.requests_per_thread.max(scenarios.len());
    let answered = AtomicU64::new(0);
    let full = AtomicU64::new(0);
    let recovered = AtomicU64::new(0);
    let unrecoverable = AtomicU64::new(0);
    let unexpected = AtomicU64::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (service, scenarios, barrier, system) =
                (&service, &scenarios, &barrier, &opts.system);
            let (answered, full, recovered, unrecoverable, unexpected) =
                (&answered, &full, &recovered, &unrecoverable, &unexpected);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..requests_per_thread {
                    let s = &scenarios[(i + t * 7) % scenarios.len()];
                    match service.try_execute_recovering(
                        system,
                        s.collective,
                        s.nodes,
                        s.bytes,
                        elems,
                        &s.dead,
                    ) {
                        None => {} // unanswered: availability drops below 1
                        Some(outcome) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                            let class = match (&outcome, s.expect) {
                                (Ok(Served::Full(_)), Expect::Full) => Some(&full),
                                (Ok(Served::Recovered(_)), Expect::Recovered) => Some(&recovered),
                                (Err(ExecError::RankDead { .. }), Expect::Unrecoverable) => {
                                    Some(&unrecoverable)
                                }
                                _ => None,
                            };
                            match class {
                                Some(counter) => {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                }
                                None => {
                                    unexpected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    // --- verification pass: every scenario re-run and checked in depth ---
    let mut recoveries_checked = 0usize;
    let mut traffic_checked = 0usize;
    let mut full_checked = 0usize;
    let mut unrecoverable_checked = 0usize;
    for s in &scenarios {
        let label = format!(
            "({}, {}, {}) dead {:?}",
            s.collective.name(),
            s.nodes,
            s.bytes,
            s.dead
        );
        let outcome = service
            .try_execute_recovering(&opts.system, s.collective, s.nodes, s.bytes, elems, &s.dead)
            .ok_or_else(|| format!("verification request {label} unanswered"))?;
        match (outcome, s.expect) {
            (Ok(Served::Full(finals)), Expect::Full) => {
                // Pin against the healthy reference interpreter; a dead
                // leaf's own store stays untouched initial state, so only
                // survivors are compared.
                let tuned = service
                    .choose_at(sys, s.collective, s.nodes, s.bytes)
                    .ok_or_else(|| format!("{label}: tuned pick vanished"))?;
                let pick = tuned_name(tuned.algorithm, tuned.segments);
                let sched = providers_of(&service, sys)
                    .build(s.collective, &pick, s.nodes, 0)
                    .ok_or_else(|| format!("{label}: {pick} unbuildable"))?;
                let w = Workload::for_schedule(&sched, elems);
                let expected =
                    bine_exec::sequential::run_reference(&sched, w.initial_state(&sched));
                for rank in 0..s.nodes {
                    if !s.dead.contains(&rank) && finals[rank] != expected[rank] {
                        return Err(format!(
                            "{label}: full-communicator finals of rank {rank} differ \
                             from the reference interpreter"
                        ));
                    }
                }
                full_checked += 1;
            }
            (Ok(Served::Recovered(rec)), Expect::Recovered) => {
                let victim = s.dead[0];
                if !matches!(rec.error, ExecError::RankDead { src, .. } if src == victim) {
                    return Err(format!(
                        "{label}: recovery blamed {:?}, not the seeded victim",
                        rec.error
                    ));
                }
                let survivors = s.nodes - s.dead.len();
                if rec.map.num_survivors() != survivors || rec.map.new_rank(victim).is_some() {
                    return Err(format!("{label}: survivor map does not drop the victim"));
                }
                if let Err(e) = validate_schedule(&rec.schedule) {
                    return Err(format!("{label}: recovery schedule invalid: {e}"));
                }
                // Bit-identity against a direct run of the recovery pick
                // built straight on the survivor communicator.
                let direct = providers_of(&service, sys)
                    .build(s.collective, &rec.pick, survivors, 0)
                    .ok_or_else(|| {
                        format!(
                            "{label}: recovery pick {} unbuildable at {survivors}",
                            rec.pick
                        )
                    })?;
                let w = Workload::for_schedule(&direct, elems);
                let expected =
                    bine_exec::sequential::run_reference(&direct, w.initial_state(&direct));
                if rec.finals != expected {
                    return Err(format!(
                        "{label}: recovered finals differ from a direct {} run at \
                         {survivors} ranks",
                        rec.pick
                    ));
                }
                recoveries_checked += 1;
                // The recovery schedule must offer the same bytes to the
                // same links as the directly-built one.
                let topo = system.topology(s.nodes);
                let alloc = Allocation::block(survivors);
                let served_traffic =
                    traffic::measure(&rec.schedule, s.bytes, topo.as_ref(), &alloc);
                let direct_traffic = traffic::measure(&direct, s.bytes, topo.as_ref(), &alloc);
                if served_traffic != direct_traffic {
                    return Err(format!(
                        "{label}: recovery traffic {served_traffic:?} differs from the \
                         direct schedule's {direct_traffic:?}"
                    ));
                }
                traffic_checked += 1;
            }
            (Err(e @ ExecError::RankDead { .. }), Expect::Unrecoverable) => {
                let victim = s.dead[0];
                if !matches!(e, ExecError::RankDead { src, .. } if src == victim) {
                    return Err(format!("{label}: typed error blamed the wrong rank: {e}"));
                }
                unrecoverable_checked += 1;
            }
            (outcome, expect) => {
                return Err(format!("{label}: expected {expect:?}, got {outcome:?}"));
            }
        }
    }

    Ok(CrashReport {
        total_requests: (threads * requests_per_thread) as u64,
        answered: answered.into_inner(),
        full_answers: full.into_inner(),
        recovered_answers: recovered.into_inner(),
        unrecoverable_answers: unrecoverable.into_inner(),
        unexpected_outcomes: unexpected.into_inner(),
        scenarios: scenarios.len(),
        recoveries_checked,
        traffic_checked,
        full_checked,
        unrecoverable_checked,
        service_stalls: service.stalls(),
        service_recoveries: service.recoveries(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_scenario_mix_covers_all_three_outcome_classes() {
        let service = ServiceSelector::load_default().expect("committed tables");
        let sys = service.resolve_system("LUMI").expect("LUMI table");
        let list = scenarios(&service, sys, 42).expect("scenarios");
        assert_eq!(list.len(), 3 * queries().len());
        for expect in [Expect::Full, Expect::Recovered, Expect::Unrecoverable] {
            assert!(
                list.iter().any(|s| s.expect == expect),
                "no scenario expects {expect:?}"
            );
        }
        // Every seeded victim is a live rank of its communicator.
        for s in &list {
            for &d in &s.dead {
                assert!(d < s.nodes);
            }
        }
    }

    /// The acceptance scenario at test scale: seeded crashes must keep
    /// availability at exactly 100%, every recoverable stall must recover
    /// bit-identically to a direct shrunk run (finals and traffic), and
    /// every unrecoverable stall must surface as the typed error naming
    /// the victim.
    #[test]
    fn crash_run_recovers_every_recoverable_stall_bit_identically() {
        let opts = CrashOptions {
            threads: 2,
            requests_per_thread: 1, // floored to one full pass over the scenarios
            seed: 7,
            ..CrashOptions::default()
        };
        let report = run(&opts).expect("crash run");
        assert_eq!(report.availability(), 1.0, "{report:?}");
        assert_eq!(report.unexpected_outcomes, 0, "{report:?}");
        assert_eq!(report.answered, report.total_requests);
        assert!(report.full_answers > 0);
        assert!(report.recovered_answers > 0, "some answers must recover");
        assert!(report.unrecoverable_answers > 0);
        assert!(report.recoveries_checked > 0);
        assert_eq!(report.traffic_checked, report.recoveries_checked);
        assert!(report.full_checked > 0 && report.unrecoverable_checked > 0);
        // Every stall is either recovered or typed-unrecoverable; both
        // phases re-trigger them, so the counters line up exactly.
        assert!(report.service_stalls > report.service_recoveries);
        assert!(report.service_recoveries > 0);
    }

    /// A kill plan of nobody is exactly the healthy path: every answer
    /// completes over the full communicator and no stall is counted.
    #[test]
    fn empty_kill_plans_never_stall() {
        let service = ServiceSelector::load_default().expect("committed tables");
        for (c, n, b) in queries() {
            let served = service
                .try_execute_recovering("LUMI", c, n, b, 2, &[])
                .expect("query resolves")
                .expect("healthy runs complete");
            assert!(!served.is_recovered());
            assert_eq!(served.finals().len(), n);
        }
        assert_eq!(service.stalls(), 0);
        assert_eq!(service.recoveries(), 0);
    }
}
