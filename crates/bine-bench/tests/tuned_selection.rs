//! Tests of the committed `tuning/` decision tables and the selection layer
//! against the systems they were tuned on:
//!
//! * the pinned acceptance scenario — the tuned pick reproduces the paper's
//!   ring → bine-large crossover *shift* (Sec. 5.2.2) at ≥ 64 MiB on all
//!   four systems: the synchronous model alone would pick the ring, the
//!   pipelining-aware tuned tables pick bine-large;
//! * property tests pinning that the selector's pick is never worse than
//!   the binomial baseline under the repository's cost models, and that the
//!   committed tables agree with a pruning-disabled brute-force argmin at
//!   the swept grid points (i.e. lower-bound pruning never changes a
//!   decision).

use proptest::prelude::*;

use bine_bench::runner::{tune_target, tuned_collectives, MAX_TUNED_NODES};
use bine_bench::systems::System;
use bine_sched::{
    binomial_default, irregular_algorithms, Collective, SizeDist, IRREGULAR_COLLECTIVES,
};
use bine_tune::{DecisionTable, ScoreModel, Selector, Tuner, TunerConfig};

fn committed_table(system: &System) -> DecisionTable {
    let path = bine_tune::default_tuning_dir()
        .expect("tuning dir")
        .join(format!("{}.json", bine_tune::slug(system.name)));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed table {}: {e}", path.display()));
    DecisionTable::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The committed tables stop at [`MAX_TUNED_NODES`] (`tune --max-nodes`);
/// queries beyond fall back by floor lookup.
fn tuned_node_counts(system: &System) -> Vec<usize> {
    system
        .node_counts
        .iter()
        .copied()
        .filter(|&n| n <= MAX_TUNED_NODES)
        .collect()
}

#[test]
fn committed_tables_cover_all_four_systems_and_collectives() {
    for system in System::all() {
        let selector =
            Selector::load(system.name).unwrap_or_else(|e| panic!("{}: {e}", system.name));
        assert_eq!(selector.system(), system.name);
        let table = committed_table(&system);
        for collective in tuned_collectives() {
            for &nodes in &tuned_node_counts(&system) {
                for &bytes in &system.vector_sizes {
                    assert!(
                        table.at(collective, None, nodes, bytes).is_some(),
                        "{}: missing grid point {collective:?}/{nodes}/{bytes}",
                        system.name
                    );
                    assert!(selector.choose(collective, nodes, bytes).is_some());
                }
            }
        }
    }
}

#[test]
fn committed_tables_cover_the_irregular_grids() {
    // Every v-variant collective carries a full dist-keyed grid on every
    // system: each (dist, nodes, bytes) point exists, its pick is a valid
    // irregular algorithm for that collective, and the selector's
    // dist-aware lookup resolves to it.
    for system in System::all() {
        let table = committed_table(&system);
        let selector = Selector::load(system.name).unwrap();
        for collective in IRREGULAR_COLLECTIVES {
            for dist in SizeDist::ALL {
                for &nodes in &tuned_node_counts(&system) {
                    for &bytes in &system.vector_sizes {
                        let entry = table
                            .at(collective, Some(dist), nodes, bytes)
                            .unwrap_or_else(|| {
                                panic!(
                                    "{}: missing irregular point {collective:?}@{}/{nodes}/{bytes}",
                                    system.name,
                                    dist.name()
                                )
                            });
                        assert!(
                            irregular_algorithms(collective)
                                .iter()
                                .any(|a| a.name() == entry.algorithm()),
                            "{}: {collective:?}@{} pick {} is not a v-variant algorithm",
                            system.name,
                            dist.name(),
                            entry.pick
                        );
                        let tuned = selector
                            .choose_irregular(collective, dist, nodes, bytes)
                            .unwrap();
                        assert_eq!(tuned.algorithm, entry.algorithm());
                        assert_eq!(tuned.segments, entry.segments());
                    }
                }
            }
        }
    }
}

#[test]
fn tuned_pick_reproduces_the_ring_to_bine_large_crossover_shift() {
    // The acceptance scenario. At 64 nodes and ≥ 64 MiB the synchronous
    // barrier model says the ring allreduce wins on every paper system —
    // and indeed production libraries pick linear algorithms there. The
    // committed decision tables, whose DES stage sees pipelining, pick the
    // segmented bine-large instead: the crossover has moved, exactly the
    // Sec. 5.2.2 effect the paper measures.
    for system in System::all() {
        let target = tune_target(&system, vec![Collective::Allreduce]);
        let mut tuner = Tuner::new(target, TunerConfig::default());
        let cell = tuner.sync_cell(Collective::Allreduce, 64, 64 << 20);
        assert_eq!(
            cell.best.0.name(),
            "ring",
            "{}: expected the sync model to pick the ring at 64 MiB",
            system.name
        );

        let table = committed_table(&system);
        let entry = table.at(Collective::Allreduce, None, 64, 64 << 20).unwrap();
        assert_eq!(
            entry.algorithm(),
            "bine-large",
            "{}: tuned pick at 64 nodes/64 MiB is {} — the crossover did not shift",
            system.name,
            entry.pick
        );
        assert!(
            entry.segments() > 1,
            "{}: the shift comes from pipelining, but the pick is unsegmented",
            system.name
        );
        assert_eq!(entry.model, ScoreModel::Des);

        // At 512 MiB the tuned pick stays a pipelined (segmented)
        // algorithm on every system.
        let entry = table
            .at(Collective::Allreduce, None, 64, 512 << 20)
            .unwrap();
        assert!(
            entry.segments() > 1,
            "{}: 512 MiB pick {} is unsegmented",
            system.name,
            entry.pick
        );
    }
}

/// Deterministic per-case grid sampling shared by the property tests: a
/// flat index over (system, collective, node index, size index), decoded
/// modulo the actual grid lengths inside each test.
fn grid_point() -> impl Strategy<Value = usize> {
    0usize..(4 * 7 * 8 * 9)
}

fn decode(point: usize) -> (usize, usize, usize, usize) {
    (point % 4, (point / 4) % 7, (point / 28) % 8, point / 224)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The selector's pick is never worse than the binomial baseline under
    // the cost model that produced the table entry (the DES for refined
    // points, the synchronous model beyond the DES budget) — on any of the
    // four paper systems. Both baseline flavours are force-included in the
    // tuner's candidate set, so this holds by construction; the test pins
    // it against regressions in the candidate generation.
    #[test]
    fn selector_pick_never_worse_than_the_binomial_baseline(point in grid_point()) {
        let (si, ci, ni, vi) = decode(point);
        let system = System::all().into_iter().nth(si).unwrap();
        let collective = tuned_collectives()[ci];
        let nodes = {
            let counts = tuned_node_counts(&system);
            counts[ni % counts.len()]
        };
        let bytes = system.vector_sizes[vi % system.vector_sizes.len()];

        let table = committed_table(&system);
        let entry = table.at(collective, None, nodes, bytes).unwrap().clone();
        let mut tuner = Tuner::new(
            tune_target(&system, vec![collective]),
            TunerConfig::default(),
        );
        for flavour in [
            binomial_default(collective, true),
            binomial_default(collective, false),
        ] {
            let baseline = tuner.score(collective, flavour, nodes, bytes, entry.model);
            // +1e-6 absolute: the committed time_us is serialised with six
            // decimals, so it can sit half an ULP above the fresh score.
            prop_assert!(
                entry.time_us <= baseline * (1.0 + 1e-9) + 1e-6,
                "{}/{:?}/{}/{}: tuned {} ({:.3} us) worse than baseline {flavour} ({baseline:.3} us)",
                system.name, collective, nodes, bytes, entry.pick, entry.time_us
            );
        }
    }

    // The committed decision tables agree with a pruning-disabled
    // brute-force argmin over the tuner's full candidate set at the swept
    // grid points: the lower-bound pruning provably changes no decision,
    // and the committed files are fresh.
    //
    // Sampling covers both stage shapes — DES-refined points (≤ 64 nodes)
    // and sync-only points (> `des_max_nodes`) — but skips the 128–512-node
    // DES band: an unpruned DES re-tune there simulates every catalog
    // algorithm × segment count at up to 512 nodes, minutes per point in a
    // debug build, while exercising exactly the same pruning code path as
    // the ≤ 64-node points. Those points are still regenerated from scratch
    // (pruned, release mode) by the CI drift gate on every push.
    #[test]
    fn decision_table_agrees_with_the_brute_force_argmin(point in grid_point()) {
        let (si, ci, ni, vi) = decode(point);
        let system = System::all().into_iter().nth(si).unwrap();
        let collective = tuned_collectives()[ci];
        let nodes = {
            let counts: Vec<usize> = tuned_node_counts(&system)
                .into_iter()
                .filter(|&n| n <= 64 || n > TunerConfig::default().des_max_nodes)
                .collect();
            counts[ni % counts.len()]
        };
        let bytes = system.vector_sizes[vi % system.vector_sizes.len()];

        let committed = committed_table(&system);
        let entry = committed.at(collective, None, nodes, bytes).unwrap().clone();
        let mut brute = Tuner::new(
            tune_target(&system, vec![collective]),
            TunerConfig {
                prune: false,
                ..TunerConfig::default()
            },
        );
        let fresh = brute.tune_point(collective, nodes, bytes);
        prop_assert_eq!(&fresh.pick, &entry.pick);
        prop_assert_eq!(fresh.model, entry.model);
        let tol = 1e-9 * entry.time_us.abs() + 1e-6;
        prop_assert!(
            (fresh.time_us - entry.time_us).abs() <= tol,
            "{}/{:?}/{}/{}: committed {:.6} vs brute-force {:.6}",
            system.name, collective, nodes, bytes, entry.time_us, fresh.time_us
        );
        // And the selector lookup at the grid point returns exactly this
        // entry.
        let selector = Selector::load(system.name).unwrap();
        let tuned = selector.choose(collective, nodes, bytes).unwrap();
        prop_assert_eq!(tuned.algorithm, entry.algorithm());
        prop_assert_eq!(tuned.segments, entry.segments());
    }

    // The irregular grids agree with a from-scratch re-score: the
    // irregular sweep is unpruned and sync-only by design, so every
    // committed dist point is reproducible everywhere — no node band needs
    // skipping. The dist-aware selector lookup returns exactly the
    // committed entry.
    #[test]
    fn irregular_table_agrees_with_the_brute_force_argmin(
        point in 0usize..(4 * 4 * 3 * 8 * 9),
    ) {
        let si = point % 4;
        let ci = (point / 4) % 4;
        let di = (point / 16) % 3;
        let ni = (point / 48) % 8;
        let vi = point / 384;
        let system = System::all().into_iter().nth(si).unwrap();
        let collective = IRREGULAR_COLLECTIVES[ci];
        let dist = SizeDist::ALL[di];
        let nodes = {
            let counts = tuned_node_counts(&system);
            counts[ni % counts.len()]
        };
        let bytes = system.vector_sizes[vi % system.vector_sizes.len()];

        let committed = committed_table(&system);
        let entry = committed.at(collective, Some(dist), nodes, bytes).unwrap().clone();
        let mut tuner = Tuner::new(
            tune_target(&system, vec![collective]),
            TunerConfig::default(),
        );
        let fresh = tuner.tune_irregular_point(collective, dist, nodes, bytes);
        prop_assert_eq!(&fresh.pick, &entry.pick,
            "{}/{:?}@{}/{}/{}", system.name, collective, dist.name(), nodes, bytes);
        prop_assert_eq!(fresh.model, entry.model);
        let tol = 1e-9 * entry.time_us.abs() + 1e-6;
        prop_assert!(
            (fresh.time_us - entry.time_us).abs() <= tol,
            "{}/{:?}@{}/{}/{}: committed {:.6} vs brute-force {:.6}",
            system.name, collective, dist.name(), nodes, bytes, entry.time_us, fresh.time_us
        );
        let selector = Selector::load(system.name).unwrap();
        let tuned = selector.choose_irregular(collective, dist, nodes, bytes).unwrap();
        prop_assert_eq!(tuned.algorithm, entry.algorithm());
        prop_assert_eq!(tuned.segments, entry.segments());
    }
}
