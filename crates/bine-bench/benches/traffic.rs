//! Criterion micro-benchmarks: traffic accounting and cost-model evaluation
//! of a schedule on the topology models (the inner loop of every table and
//! figure binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bine_net::allocation::Allocation;
use bine_net::cost::CostModel;
use bine_net::topology::{Dragonfly, FatTree, Torus};
use bine_net::traffic::measure;
use bine_net::Topology;
use bine_sched::collectives::{allreduce, AllreduceAlg};

/// Short measurement configuration so a full `cargo bench --workspace` stays
/// inexpensive on a single-core CI machine.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

fn bench_traffic_and_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic-and-cost");
    let topologies: Vec<(&str, Box<dyn Topology>)> = vec![
        ("dragonfly-lumi", Box::new(Dragonfly::lumi())),
        ("dragonfly+-leonardo", Box::new(Dragonfly::leonardo())),
        ("fat-tree-mn5", Box::new(FatTree::marenostrum5(1280))),
        ("torus-8x8x8", Box::new(Torus::new(vec![8, 8, 8]))),
    ];
    let p = 512;
    let sched = allreduce(p, AllreduceAlg::BineLarge);
    let alloc = Allocation::block(p);
    let model = CostModel::default();
    for (name, topo) in &topologies {
        group.bench_with_input(BenchmarkId::new("measure", name), name, |b, _| {
            b.iter(|| measure(&sched, 1 << 20, topo.as_ref(), &alloc))
        });
        group.bench_with_input(BenchmarkId::new("cost-model", name), name, |b, _| {
            b.iter(|| model.time_us(&sched, 1 << 20, topo.as_ref(), &alloc))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_traffic_and_cost
}
criterion_main!(benches);
