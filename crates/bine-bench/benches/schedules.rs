//! Criterion micro-benchmarks: schedule generation cost for every collective
//! (the analogue of the algorithm set-up cost an MPI library would pay).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bine_sched::{algorithms, bine_default, build, Collective};

/// Short measurement configuration so a full `cargo bench --workspace` stays
/// inexpensive on a single-core CI machine.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

fn bench_schedule_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule-generation");
    for collective in Collective::ALL {
        for p in [64usize, 512] {
            let name = bine_default(collective, false);
            group.bench_with_input(
                BenchmarkId::new(format!("{}-{}", collective.name(), name), p),
                &p,
                |b, &p| b.iter(|| build(collective, name, p, 0).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_bine_vs_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce-generation-by-algorithm");
    let p = 256;
    for alg in algorithms(Collective::Allreduce) {
        group.bench_function(alg.name(), |b| {
            b.iter(|| build(Collective::Allreduce, alg.name(), p, 0).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_schedule_generation, bench_bine_vs_baselines
}
criterion_main!(benches);
