//! Criterion micro-benchmarks: executing schedules over real data with the
//! sequential and threaded executors (the in-process substitute for running
//! the collectives on a cluster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bine_exec::state::Workload;
use bine_exec::{sequential, threaded};
use bine_sched::collectives::{allreduce, AllreduceAlg};


/// Short measurement configuration so a full `cargo bench --workspace` stays
/// inexpensive on a single-core CI machine.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce-execution");
    for p in [16usize, 64] {
        for alg in [AllreduceAlg::BineLarge, AllreduceAlg::RecursiveDoubling, AllreduceAlg::Ring] {
            let sched = allreduce(p, alg);
            let workload = Workload::for_schedule(&sched, 64);
            group.bench_with_input(
                BenchmarkId::new(format!("sequential-{}", sched.algorithm), p),
                &p,
                |b, _| b.iter(|| sequential::run(&sched, workload.initial_state(&sched))),
            );
        }
    }
    let sched = allreduce(16, AllreduceAlg::BineLarge);
    let workload = Workload::for_schedule(&sched, 64);
    group.bench_function("threaded-bine-large-16", |b| {
        b.iter(|| threaded::run(&sched, workload.initial_state(&sched)))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = short();
    targets = bench_executors
}
criterion_main!(benches);
