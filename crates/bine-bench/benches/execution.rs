//! Criterion micro-benchmarks: executing schedules over real data (the
//! in-process substitute for running the collectives on a cluster).
//!
//! The headline comparison is compiled-vs-naive on the BineLarge allreduce
//! at p ∈ {64, 256, 1024}:
//!
//! * `reference` — the seed interpreter (deep per-step snapshot of all rank
//!   states, O(ranks × elements) per step),
//! * `sequential` — the zero-copy interpreter (shared payloads, no
//!   snapshot),
//! * `compiled` — dense execution of a pre-compiled schedule (no hashing,
//!   no message-list scans),
//! * `pool` — the persistent-thread-pool executor.
//!
//! Compilation cost is measured separately (`compile-schedule`) — it is
//! paid once per schedule, not per run.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bine_exec::state::Workload;
use bine_exec::{compiled, sequential, threaded, ExecutorPool};
use bine_sched::collectives::{allreduce, AllreduceAlg};

/// Short measurement configuration so a full `cargo bench --workspace` stays
/// inexpensive on a single-core CI machine.
fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

fn bench_compiled_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce-execution");
    let pool = ExecutorPool::global();
    for p in [64usize, 256, 1024] {
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        let workload = Workload::for_schedule(&sched, bine_bench::exec_bench_elems(p));
        // Built once; per-iteration clones are refcount bumps, so the
        // benches measure execution, not input construction.
        let initial = workload.initial_state(&sched);
        let compiled_sched = Arc::new(sched.compile());
        group.bench_with_input(BenchmarkId::new("reference-bine-large", p), &p, |b, _| {
            b.iter(|| sequential::run_reference(&sched, initial.clone()))
        });
        group.bench_with_input(BenchmarkId::new("sequential-bine-large", p), &p, |b, _| {
            b.iter(|| sequential::run(&sched, initial.clone()))
        });
        group.bench_with_input(BenchmarkId::new("compiled-bine-large", p), &p, |b, _| {
            b.iter(|| compiled::run(&compiled_sched, initial.clone()))
        });
        group.bench_with_input(BenchmarkId::new("pool-bine-large", p), &p, |b, _| {
            b.iter(|| pool.run(&compiled_sched, initial.clone()))
        });
    }
    group.finish();
}

fn bench_other_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce-execution-by-algorithm");
    let p = 64;
    for alg in [AllreduceAlg::RecursiveDoubling, AllreduceAlg::Ring] {
        let sched = allreduce(p, alg);
        let workload = Workload::for_schedule(&sched, 64);
        let initial = workload.initial_state(&sched);
        let compiled_sched = Arc::new(sched.compile());
        group.bench_function(format!("compiled-{}", sched.algorithm), |b| {
            b.iter(|| compiled::run(&compiled_sched, initial.clone()))
        });
    }
    group.finish();
}

fn bench_schedule_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-schedule");
    for p in [64usize, 1024] {
        let sched = allreduce(p, AllreduceAlg::BineLarge);
        group.bench_with_input(BenchmarkId::new("bine-large", p), &p, |b, _| {
            b.iter(|| sched.compile())
        });
    }
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded-execution");
    let sched = allreduce(64, AllreduceAlg::BineLarge);
    let workload = Workload::for_schedule(&sched, 64);
    let initial = workload.initial_state(&sched);
    group.bench_function("pool-bine-large-64", |b| {
        b.iter(|| threaded::run(&sched, initial.clone()))
    });
    group.bench_function("thread-per-rank-bine-large-64", |b| {
        b.iter(|| threaded::run_thread_per_rank(&sched, initial.clone()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_compiled_vs_naive, bench_other_algorithms, bench_schedule_compilation, bench_threaded
}
criterion_main!(benches);
