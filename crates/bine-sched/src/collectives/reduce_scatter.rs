//! Reduce-scatter schedules (Sec. 4.3).

use bine_core::butterfly::{Butterfly, ButterflyKind};

use super::builders::{butterfly_reduce_scatter, mark_noncontiguous, ring_reduce_scatter};
use crate::noncontig::NonContigStrategy;
use crate::schedule::Schedule;

/// Reduce-scatter algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceScatterAlg {
    /// Bine distance-doubling butterfly with a non-contiguous-data strategy
    /// (Sec. 4.3.1). The default strategy is `Permute`.
    Bine(NonContigStrategy),
    /// Standard recursive-halving butterfly reduce-scatter.
    RecursiveHalving,
    /// Ring reduce-scatter (`p − 1` nearest-neighbour steps).
    Ring,
    /// Swing reduce-scatter: same peer sequence as the Bine butterfly but
    /// with the original non-contiguous block layout.
    Swing,
}

impl ReduceScatterAlg {
    /// The algorithms compared in the paper's evaluation (Bine uses the
    /// default `Permute` strategy here; Fig. 14 sweeps the other strategies).
    pub const ALL: [ReduceScatterAlg; 4] = [
        ReduceScatterAlg::Bine(NonContigStrategy::Permute),
        ReduceScatterAlg::RecursiveHalving,
        ReduceScatterAlg::Ring,
        ReduceScatterAlg::Swing,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceScatterAlg::Bine(NonContigStrategy::Permute) => "bine-permute",
            ReduceScatterAlg::Bine(NonContigStrategy::BlockByBlock) => "bine-block-by-block",
            ReduceScatterAlg::Bine(NonContigStrategy::Send) => "bine-send",
            ReduceScatterAlg::Bine(NonContigStrategy::TwoTransmissions) => "bine-two-transmissions",
            ReduceScatterAlg::RecursiveHalving => "recursive-halving",
            ReduceScatterAlg::Ring => "ring",
            ReduceScatterAlg::Swing => "swing",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(self, ReduceScatterAlg::Bine(_))
    }
}

/// Builds the reduce-scatter schedule for `p` ranks.
pub fn reduce_scatter(p: usize, alg: ReduceScatterAlg) -> Schedule {
    match alg {
        ReduceScatterAlg::Bine(strategy) => {
            // The "two transmissions" strategy switches to a distance-halving
            // butterfly, whose exchanged block sets stay circularly
            // contiguous (Sec. 4.3.1).
            let kind = if strategy == NonContigStrategy::TwoTransmissions {
                ButterflyKind::BineDistanceHalving
            } else {
                ButterflyKind::BineDistanceDoubling
            };
            butterfly_reduce_scatter(&Butterfly::new(kind, p), strategy, alg.name())
        }
        ReduceScatterAlg::RecursiveHalving => butterfly_reduce_scatter(
            &Butterfly::new(ButterflyKind::RecursiveHalving, p),
            NonContigStrategy::TwoTransmissions,
            alg.name(),
        ),
        ReduceScatterAlg::Ring => ring_reduce_scatter(p, alg.name()),
        ReduceScatterAlg::Swing => mark_noncontiguous(butterfly_reduce_scatter(
            &Butterfly::new(ButterflyKind::BineDistanceDoubling, p),
            NonContigStrategy::Send,
            alg.name(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Collective;
    use crate::schedule::{BlockId, TransferKind};
    use std::collections::HashMap;

    fn algorithms_under_test() -> Vec<ReduceScatterAlg> {
        let mut algs = vec![
            ReduceScatterAlg::RecursiveHalving,
            ReduceScatterAlg::Ring,
            ReduceScatterAlg::Swing,
        ];
        for s in NonContigStrategy::ALL {
            algs.push(ReduceScatterAlg::Bine(s));
        }
        algs
    }

    /// Simulates the reduction dataflow: each rank's contribution to block
    /// `b` must reach the rank that finally owns `b` exactly once.
    fn check_reduction_coverage(sched: &Schedule, p: usize) {
        // contributions[r][b] = set of ranks whose input is already folded
        // into rank r's partial value of block b.
        let mut contrib: Vec<HashMap<u32, Vec<bool>>> = (0..p)
            .map(|r| {
                (0..p as u32)
                    .map(|b| {
                        let mut v = vec![false; p];
                        v[r] = true;
                        (b, v)
                    })
                    .collect()
            })
            .collect();
        for step in &sched.steps {
            let snapshot = contrib.clone();
            for m in &step.messages {
                if m.is_local() {
                    continue;
                }
                for blk in &m.blocks {
                    if let BlockId::Segment(b) = blk {
                        let incoming = snapshot[m.src][b].clone();
                        let entry = contrib[m.dst].get_mut(b).unwrap();
                        for (i, had) in incoming.iter().enumerate() {
                            if *had {
                                if m.kind == TransferKind::Reduce {
                                    assert!(
                                        !entry[i] || snapshot[m.dst][b][i],
                                        "{}: contribution of rank {i} applied twice to block {b}",
                                        sched.algorithm
                                    );
                                }
                                entry[i] = true;
                            }
                        }
                    }
                }
            }
        }
        for r in 0..p {
            let own = &contrib[r][&(r as u32)];
            assert!(
                own.iter().all(|&x| x),
                "{}: rank {r} is missing contributions for its block",
                sched.algorithm
            );
        }
    }

    #[test]
    fn all_reduce_scatter_algorithms_cover_every_contribution() {
        for alg in algorithms_under_test() {
            for p in [4, 16, 64] {
                let sched = reduce_scatter(p, alg);
                assert!(sched.validate().is_ok(), "{}", sched.algorithm);
                assert_eq!(sched.collective, Collective::ReduceScatter);
                check_reduction_coverage(&sched, p);
            }
        }
    }

    #[test]
    fn strategy_affects_contiguity_not_volume() {
        let p = 64;
        let n = 1 << 22u64;
        let base = reduce_scatter(p, ReduceScatterAlg::Bine(NonContigStrategy::Permute));
        let bbb = reduce_scatter(p, ReduceScatterAlg::Bine(NonContigStrategy::BlockByBlock));
        assert_eq!(base.total_network_bytes(n), bbb.total_network_bytes(n));
        let max_seg = |s: &Schedule| s.messages().map(|(_, m)| m.segments).max().unwrap();
        assert_eq!(max_seg(&base), 1);
        assert!(max_seg(&bbb) > 1);
    }

    #[test]
    fn two_transmissions_uses_at_most_two_segments() {
        let sched = reduce_scatter(
            128,
            ReduceScatterAlg::Bine(NonContigStrategy::TwoTransmissions),
        );
        for (_, m) in sched.messages() {
            assert!(m.segments <= 2, "{} segments", m.segments);
        }
    }

    #[test]
    fn send_strategy_moves_slightly_more_data_than_permute() {
        let p = 32;
        let n = 1 << 20u64;
        let permute = reduce_scatter(p, ReduceScatterAlg::Bine(NonContigStrategy::Permute));
        let send = reduce_scatter(p, ReduceScatterAlg::Bine(NonContigStrategy::Send));
        assert!(send.total_network_bytes(n) > permute.total_network_bytes(n));
        // ... by exactly one extra block per rank that needs reordering.
        assert!(send.total_network_bytes(n) <= permute.total_network_bytes(n) + n);
    }
}
