//! Allreduce schedules (Sec. 4.4).

use bine_core::butterfly::{Butterfly, ButterflyKind};

use super::builders::{
    butterfly_allgather, butterfly_allgather_permute, butterfly_allreduce_small,
    butterfly_reduce_scatter_composed, compose, dual_root_allreduce, mark_noncontiguous,
    ring_allgather, ring_reduce_scatter,
};
use crate::schedule::{Collective, Schedule};

/// Allreduce algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllreduceAlg {
    /// Small-vector Bine allreduce: recursive doubling over the Bine
    /// distance-halving butterfly.
    BineSmall,
    /// Large-vector Bine allreduce: Bine distance-doubling reduce-scatter
    /// followed by a Bine distance-halving allgather.
    BineLarge,
    /// Standard recursive-doubling allreduce.
    RecursiveDoubling,
    /// Rabenseifner allreduce: recursive-halving reduce-scatter followed by
    /// a recursive-doubling allgather.
    Rabenseifner,
    /// Ring allreduce (ring reduce-scatter + ring allgather).
    Ring,
    /// Swing allreduce: the Bine-large peer sequence with Swing's
    /// non-contiguous block handling.
    Swing,
    /// Träff's dual-root reduction-to-all: two interleaved binomial trees
    /// rooted at ranks `0` and `p/2`, each reducing and re-broadcasting one
    /// half of the vector. Pipelines via the `+segS` transform ("doubly
    /// pipelined" in the paper's terms).
    DualRootPipelined,
}

impl AllreduceAlg {
    /// All allreduce algorithms.
    pub const ALL: [AllreduceAlg; 7] = [
        AllreduceAlg::BineSmall,
        AllreduceAlg::BineLarge,
        AllreduceAlg::RecursiveDoubling,
        AllreduceAlg::Rabenseifner,
        AllreduceAlg::Ring,
        AllreduceAlg::Swing,
        AllreduceAlg::DualRootPipelined,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            AllreduceAlg::BineSmall => "bine-small",
            AllreduceAlg::BineLarge => "bine-large",
            AllreduceAlg::RecursiveDoubling => "recursive-doubling",
            AllreduceAlg::Rabenseifner => "rabenseifner",
            AllreduceAlg::Ring => "ring",
            AllreduceAlg::Swing => "swing",
            AllreduceAlg::DualRootPipelined => "dual-root",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(self, AllreduceAlg::BineSmall | AllreduceAlg::BineLarge)
    }
}

/// Builds the allreduce schedule for `p` ranks.
pub fn allreduce(p: usize, alg: AllreduceAlg) -> Schedule {
    match alg {
        AllreduceAlg::BineSmall => butterfly_allreduce_small(
            &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
            alg.name(),
        ),
        AllreduceAlg::RecursiveDoubling => butterfly_allreduce_small(
            &Butterfly::new(ButterflyKind::RecursiveDoubling, p),
            alg.name(),
        ),
        AllreduceAlg::BineLarge => {
            // Sec. 4.4: reduce-scatter on the distance-doubling butterfly,
            // allgather on the distance-halving one. The allgather implicitly
            // restores the block order, so no explicit permutation is paid.
            let rs = butterfly_reduce_scatter_composed(
                &Butterfly::new(ButterflyKind::BineDistanceDoubling, p),
                alg.name(),
            );
            let ag = butterfly_allgather_permute(
                &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
                false,
                alg.name(),
            );
            compose(Collective::Allreduce, alg.name(), 0, rs, ag)
        }
        AllreduceAlg::Rabenseifner => {
            let rs = butterfly_reduce_scatter_composed(
                &Butterfly::new(ButterflyKind::RecursiveHalving, p),
                alg.name(),
            );
            let ag = butterfly_allgather(
                &Butterfly::new(ButterflyKind::RecursiveDoubling, p),
                alg.name(),
            );
            compose(Collective::Allreduce, alg.name(), 0, rs, ag)
        }
        AllreduceAlg::Ring => {
            let rs = ring_reduce_scatter(p, alg.name());
            let ag = ring_allgather(p, alg.name());
            compose(Collective::Allreduce, alg.name(), 0, rs, ag)
        }
        AllreduceAlg::Swing => {
            let rs = mark_noncontiguous(butterfly_reduce_scatter_composed(
                &Butterfly::new(ButterflyKind::BineDistanceDoubling, p),
                alg.name(),
            ));
            let ag = mark_noncontiguous(butterfly_allgather(
                &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
                alg.name(),
            ));
            compose(Collective::Allreduce, alg.name(), 0, rs, ag)
        }
        AllreduceAlg::DualRootPipelined => dual_root_allreduce(p, alg.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_allreduce_algorithms_validate() {
        for &alg in &AllreduceAlg::ALL {
            for p in [2, 16, 128] {
                let sched = allreduce(p, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Allreduce);
            }
        }
    }

    #[test]
    fn step_counts_match_the_textbook_values() {
        let p = 256;
        assert_eq!(allreduce(p, AllreduceAlg::BineSmall).num_steps(), 8);
        assert_eq!(allreduce(p, AllreduceAlg::RecursiveDoubling).num_steps(), 8);
        assert_eq!(allreduce(p, AllreduceAlg::BineLarge).num_steps(), 16);
        assert_eq!(allreduce(p, AllreduceAlg::Rabenseifner).num_steps(), 16);
        assert_eq!(allreduce(p, AllreduceAlg::Ring).num_steps(), 2 * (p - 1));
        // Dual-root: log2(p) tree levels per phase, two interleaved trees.
        assert_eq!(
            allreduce(p, AllreduceAlg::DualRootPipelined).num_steps(),
            4 * 8
        );
    }

    #[test]
    fn dual_root_halves_the_full_vector_tree_traffic() {
        let p = 64;
        let n = 1 << 20u64;
        let dual = allreduce(p, AllreduceAlg::DualRootPipelined);
        // Each phase crosses every edge of both trees once with a half
        // vector: 2 trees * (p - 1) edges * n/2 per phase, two phases.
        assert_eq!(dual.total_network_bytes(n), 2 * (p as u64 - 1) * n);
        // A single-tree reduce + broadcast at full vector size moves the
        // same volume but with every message twice as large — the dual-root
        // variant's advantage is concurrency, not volume.
        // The halves pipeline: each half is a multi-block message, so the
        // segmentation transform genuinely splits it.
        let seg = dual.segmented(4);
        assert!(seg.messages().count() > dual.messages().count());
        assert!(seg.validate().is_ok());
    }

    #[test]
    fn large_vector_algorithms_move_less_per_rank_than_recursive_doubling() {
        let p = 64;
        let n = 1 << 24u64;
        let rd = allreduce(p, AllreduceAlg::RecursiveDoubling);
        let large = allreduce(p, AllreduceAlg::BineLarge);
        let ring = allreduce(p, AllreduceAlg::Ring);
        // Recursive doubling sends n·log2(p) per rank; RS+AG sends ~2n.
        assert!(large.max_bytes_sent_by_rank(n) < rd.max_bytes_sent_by_rank(n) / 2);
        // The ring and the butterfly RS+AG move the same optimal volume.
        assert_eq!(
            ring.max_bytes_sent_by_rank(n),
            large.max_bytes_sent_by_rank(n)
        );
    }

    #[test]
    fn bine_and_swing_share_volume_but_not_contiguity() {
        let p = 128;
        let n = 1 << 20u64;
        let bine = allreduce(p, AllreduceAlg::BineLarge);
        let swing = allreduce(p, AllreduceAlg::Swing);
        assert_eq!(bine.total_network_bytes(n), swing.total_network_bytes(n));
        let max_seg = |s: &Schedule| s.messages().map(|(_, m)| m.segments).max().unwrap();
        assert_eq!(max_seg(&bine), 1);
        assert!(max_seg(&swing) > 1);
    }
}
