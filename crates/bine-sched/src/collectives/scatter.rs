//! Scatter schedules (Sec. 4.2).

use bine_core::tree::{BineTreeDh, BinomialTreeDd, BinomialTreeDh};

use super::builders::tree_scatter;
use crate::schedule::Schedule;

/// Scatter algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScatterAlg {
    /// Distance-halving Bine tree scatter (the reverse of the Bine gather).
    Bine,
    /// Open MPI-style distance-doubling binomial tree scatter.
    BinomialDistanceDoubling,
    /// MPICH-style distance-halving binomial tree scatter.
    BinomialDistanceHalving,
}

impl ScatterAlg {
    /// All scatter algorithms.
    pub const ALL: [ScatterAlg; 3] = [
        ScatterAlg::Bine,
        ScatterAlg::BinomialDistanceDoubling,
        ScatterAlg::BinomialDistanceHalving,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            ScatterAlg::Bine => "bine",
            ScatterAlg::BinomialDistanceDoubling => "binomial-dd",
            ScatterAlg::BinomialDistanceHalving => "binomial-dh",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(self, ScatterAlg::Bine)
    }
}

/// Builds the scatter schedule for `p` ranks rooted at `root`.
pub fn scatter(p: usize, root: usize, alg: ScatterAlg) -> Schedule {
    match alg {
        ScatterAlg::Bine => tree_scatter(&BineTreeDh::new(p, root), alg.name()),
        ScatterAlg::BinomialDistanceDoubling => {
            tree_scatter(&BinomialTreeDd::new(p, root), alg.name())
        }
        ScatterAlg::BinomialDistanceHalving => {
            tree_scatter(&BinomialTreeDh::new(p, root), alg.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::BlockId;
    use crate::schedule::Collective;
    use std::collections::HashSet;

    #[test]
    fn all_scatter_algorithms_deliver_each_block_to_its_rank() {
        for &alg in &ScatterAlg::ALL {
            for p in [4, 32, 128] {
                let root = p - 1;
                let sched = scatter(p, root, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Scatter);
                // Simulate: the root starts with all blocks; at the end every
                // rank must hold its own block.
                let mut held: Vec<HashSet<u32>> = (0..p).map(|_| HashSet::new()).collect();
                held[root] = (0..p as u32).collect();
                for step in &sched.steps {
                    let snap = held.clone();
                    for m in &step.messages {
                        for b in &m.blocks {
                            if let BlockId::Segment(i) = b {
                                assert!(
                                    snap[m.src].contains(i),
                                    "{}: sender misses block",
                                    alg.name()
                                );
                                held[m.dst].insert(*i);
                            }
                        }
                    }
                }
                for (r, set) in held.iter().enumerate() {
                    assert!(
                        set.contains(&(r as u32)),
                        "{}: rank {r} missing its block",
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_is_the_mirror_of_gather_in_volume() {
        let n = 1 << 20;
        for p in [16, 64] {
            let s = scatter(p, 0, ScatterAlg::Bine);
            let g = super::super::gather::gather(p, 0, super::super::gather::GatherAlg::Bine);
            assert_eq!(s.total_network_bytes(n), g.total_network_bytes(n));
        }
    }

    #[test]
    fn scatter_root_sends_the_whole_vector_once() {
        let n = 1 << 20u64;
        let sched = scatter(64, 0, ScatterAlg::Bine);
        let root_bytes: u64 = sched
            .messages()
            .filter(|(_, m)| m.src == 0 && !m.is_local())
            .map(|(_, m)| m.bytes(n, 64))
            .sum();
        // The root sends every block except its own exactly once.
        assert_eq!(root_bytes, n - n / 64);
    }
}
