//! Generic schedule builders parameterised by a tree or butterfly pattern.
//!
//! Every collective of the paper is obtained by instantiating one of these
//! builders with either a Bine pattern or a baseline pattern (binomial tree,
//! recursive doubling/halving, ring, Bruck, …). Keeping the builders generic
//! guarantees that Bine and baseline schedules share exactly the same data
//! semantics and differ only in *who talks to whom* — which is precisely the
//! paper's claim.

use bine_core::block::nu_bit_reversal_permutation;
use bine_core::butterfly::Butterfly;
use bine_core::tree::CommTree;

use crate::noncontig::NonContigStrategy;
use crate::schedule::{BlockId, Collective, Message, Schedule, Step, TransferKind};

/// Broadcast of the whole vector down a tree: at every tree step each active
/// rank forwards the full vector to the child joining at that step.
pub fn tree_broadcast(tree: &dyn CommTree, algorithm: &str) -> Schedule {
    let p = tree.num_ranks();
    let mut sched = Schedule::new(p, Collective::Broadcast, algorithm, tree.root());
    for step in 0..tree.num_steps() {
        let mut st = Step::new();
        for r in 0..p {
            if step >= tree.first_send_step(r) && is_active(tree, r, step) {
                if let Some(c) = tree.partner(r, step) {
                    st.push(Message::new(
                        r,
                        c,
                        vec![BlockId::Full],
                        TransferKind::Copy,
                        p,
                    ));
                }
            }
        }
        sched.push_step(st);
    }
    sched
}

/// Reduction of the whole vector up a tree: the mirror image of
/// [`tree_broadcast`], with children sending their partial reductions to
/// their parents in reverse step order.
pub fn tree_reduce(tree: &dyn CommTree, algorithm: &str) -> Schedule {
    let p = tree.num_ranks();
    let s = tree.num_steps();
    let mut sched = Schedule::new(p, Collective::Reduce, algorithm, tree.root());
    for gather_step in 0..s {
        let tree_step = s - 1 - gather_step;
        let mut st = Step::new();
        for r in 0..p {
            if tree.recv_step(r) == Some(tree_step) {
                let parent = tree.parent(r).expect("non-root rank has a parent");
                st.push(Message::new(
                    r,
                    parent,
                    vec![BlockId::Full],
                    TransferKind::Reduce,
                    p,
                ));
            }
        }
        sched.push_step(st);
    }
    sched
}

/// Gather up a tree: each rank, when its turn comes (reverse tree order),
/// sends the blocks of its whole subtree to its parent.
pub fn tree_gather(tree: &dyn CommTree, algorithm: &str) -> Schedule {
    let p = tree.num_ranks();
    let s = tree.num_steps();
    let mut sched = Schedule::new(p, Collective::Gather, algorithm, tree.root());
    for gather_step in 0..s {
        let tree_step = s - 1 - gather_step;
        let mut st = Step::new();
        for r in 0..p {
            if tree.recv_step(r) == Some(tree_step) {
                let parent = tree.parent(r).expect("non-root rank has a parent");
                let blocks: Vec<BlockId> = tree
                    .subtree(r)
                    .into_iter()
                    .map(|b| BlockId::Segment(b as u32))
                    .collect();
                st.push(Message::new(r, parent, blocks, TransferKind::Copy, p));
            }
        }
        sched.push_step(st);
    }
    sched
}

/// Scatter down a tree: each rank, when forwarding, sends the child the
/// blocks of the child's subtree (Sec. 4.2).
pub fn tree_scatter(tree: &dyn CommTree, algorithm: &str) -> Schedule {
    let p = tree.num_ranks();
    let mut sched = Schedule::new(p, Collective::Scatter, algorithm, tree.root());
    for step in 0..tree.num_steps() {
        let mut st = Step::new();
        for r in 0..p {
            if step >= tree.first_send_step(r) && is_active(tree, r, step) {
                if let Some(c) = tree.partner(r, step) {
                    let blocks: Vec<BlockId> = tree
                        .subtree(c)
                        .into_iter()
                        .map(|b| BlockId::Segment(b as u32))
                        .collect();
                    st.push(Message::new(r, c, blocks, TransferKind::Copy, p));
                }
            }
        }
        sched.push_step(st);
    }
    sched
}

/// Whether rank `r` already holds the data at `step` (i.e. it is the root or
/// it received the data at an earlier step).
fn is_active(tree: &dyn CommTree, r: usize, step: u32) -> bool {
    match tree.recv_step(r) {
        None => true,
        Some(i) => step > i,
    }
}

/// Allgather over a butterfly: at every step each rank sends everything it
/// currently holds to its partner, so holdings double until every rank has
/// the whole vector.
pub fn butterfly_allgather(bf: &Butterfly, algorithm: &str) -> Schedule {
    let p = bf.num_ranks();
    let mut sched = Schedule::new(p, Collective::Allgather, algorithm, 0);
    let mut have: Vec<Vec<u32>> = (0..p).map(|r| vec![r as u32]).collect();
    for step in 0..bf.num_steps() {
        let mut st = Step::new();
        let snapshot = have.clone();
        for (r, held) in snapshot.iter().enumerate() {
            let q = bf.partner(r, step);
            let blocks: Vec<BlockId> = held.iter().map(|&b| BlockId::Segment(b)).collect();
            st.push(Message::new(r, q, blocks, TransferKind::Copy, p));
            have[q].extend(held.iter().copied());
        }
        for set in &mut have {
            set.sort_unstable();
            set.dedup();
        }
        sched.push_step(st);
    }
    sched
}

/// Reduce-scatter over a butterfly with vector halving: at step `i` each rank
/// sends its partner the blocks the partner is responsible for from step `i`
/// on, and keeps its own responsibility set (Sec. 4.3).
///
/// The `strategy` controls how non-contiguous block sets are handled
/// (Sec. 4.3.1); it affects the segment counts and any extra local-permute or
/// reorder steps, but never the logical block routing.
pub fn butterfly_reduce_scatter(
    bf: &Butterfly,
    strategy: NonContigStrategy,
    algorithm: &str,
) -> Schedule {
    let p = bf.num_ranks();
    let s = bf.num_steps();
    let mut sched = Schedule::new(p, Collective::ReduceScatter, algorithm, 0);
    if s == 0 {
        return sched;
    }

    // Optional up-front local permutation pass (Permute strategy).
    if strategy == NonContigStrategy::Permute {
        let mut st = Step::new();
        for r in 0..p {
            let blocks: Vec<BlockId> = (0..p as u32).map(BlockId::Segment).collect();
            st.push(Message::with_segments(r, r, blocks, TransferKind::Copy, 1));
        }
        sched.push_step(st);
    }

    let resp = bf.responsibilities();
    for step in 0..s {
        let mut st = Step::new();
        for r in 0..p {
            let q = bf.partner(r, step);
            let blocks: Vec<BlockId> = resp[step as usize][q]
                .iter()
                .map(|&b| BlockId::Segment(b))
                .collect();
            let msg = match strategy {
                NonContigStrategy::BlockByBlock => {
                    let n_blocks = blocks.len() as u32;
                    Message::with_segments(r, q, blocks, TransferKind::Reduce, n_blocks)
                }
                NonContigStrategy::Permute | NonContigStrategy::Send => {
                    // Buffer is (virtually) permuted: one contiguous range.
                    Message::with_segments(r, q, blocks, TransferKind::Reduce, 1)
                }
                NonContigStrategy::TwoTransmissions => {
                    // Natural layout: at most two contiguous pieces for
                    // distance-halving patterns, measured from the indices.
                    Message::new(r, q, blocks, TransferKind::Reduce, p)
                }
            };
            st.push(msg);
        }
        sched.push_step(st);
    }

    // The Send strategy pays one extra exchange at the end to move every
    // block back to its true owner (unless a following collective undoes the
    // permutation implicitly — composition helpers drop this step).
    if strategy == NonContigStrategy::Send {
        let perm = nu_bit_reversal_permutation(p);
        let mut st = Step::new();
        for (r, &q) in perm.iter().enumerate() {
            if q != r {
                st.push(Message::with_segments(
                    r,
                    q,
                    vec![BlockId::Segment(r as u32)],
                    TransferKind::Copy,
                    1,
                ));
            }
        }
        if !st.is_empty() {
            sched.push_step(st);
        }
    }
    sched
}

/// Reduce-scatter for use inside a composed collective (allreduce, reduce,
/// …): identical to the `Permute` strategy but without the local permute
/// pass, because the following phase implicitly restores the block order
/// (Sec. 4.3.1, "Send").
pub fn butterfly_reduce_scatter_composed(bf: &Butterfly, algorithm: &str) -> Schedule {
    let mut sched = butterfly_reduce_scatter(bf, NonContigStrategy::Permute, algorithm);
    if !sched.steps.is_empty() {
        sched.steps.remove(0);
    }
    sched
}

/// Forces every network message of a schedule to be treated as a single
/// contiguous transmission (used when a permutation — explicit or implicit —
/// guarantees contiguity).
pub fn force_contiguous(mut sched: Schedule) -> Schedule {
    for step in &mut sched.steps {
        for m in &mut step.messages {
            if !m.is_local() {
                m.segments = 1;
            }
        }
    }
    sched
}

/// Marks every network message of a schedule as maximally non-contiguous
/// (one memory segment per block), modelling algorithms such as Swing that
/// exchange the right blocks in a scattered layout (Sec. 4.4).
pub fn mark_noncontiguous(mut sched: Schedule) -> Schedule {
    for step in &mut sched.steps {
        for m in &mut step.messages {
            if !m.is_local() {
                m.segments = m.blocks.len() as u32;
            }
        }
    }
    sched
}

/// Allgather whose transmissions are kept contiguous by a block permutation:
/// the network messages are single contiguous ranges and, when `standalone`
/// is true, a final local pass restores the natural block order
/// (the allgather counterpart of the `permute` strategy, Sec. 4.3.1).
pub fn butterfly_allgather_permute(bf: &Butterfly, standalone: bool, algorithm: &str) -> Schedule {
    let p = bf.num_ranks();
    let mut sched = force_contiguous(butterfly_allgather(bf, algorithm));
    if standalone && p > 1 {
        let mut st = Step::new();
        for r in 0..p {
            let blocks: Vec<BlockId> = (0..p as u32).map(BlockId::Segment).collect();
            st.push(Message::with_segments(r, r, blocks, TransferKind::Copy, 1));
        }
        sched.push_step(st);
    }
    sched
}

/// Small-vector allreduce over a butterfly (recursive doubling style): the
/// whole vector is exchanged and reduced at every step.
pub fn butterfly_allreduce_small(bf: &Butterfly, algorithm: &str) -> Schedule {
    let p = bf.num_ranks();
    let mut sched = Schedule::new(p, Collective::Allreduce, algorithm, 0);
    for step in 0..bf.num_steps() {
        let mut st = Step::new();
        for r in 0..p {
            let q = bf.partner(r, step);
            st.push(Message::new(
                r,
                q,
                vec![BlockId::Full],
                TransferKind::Reduce,
                p,
            ));
        }
        sched.push_step(st);
    }
    sched
}

/// Alltoall over a butterfly: at every step each rank forwards to its partner
/// all held blocks whose *destination* lies in the partner's responsibility
/// set, exactly like a reduce-scatter on destinations (Sec. 4.4).
pub fn butterfly_alltoall(bf: &Butterfly, algorithm: &str) -> Schedule {
    let p = bf.num_ranks();
    let s = bf.num_steps();
    let mut sched = Schedule::new(p, Collective::Alltoall, algorithm, 0);
    if s == 0 {
        return sched;
    }
    let resp = bf.responsibilities();
    // held[r] = blocks (origin, dest) currently stored on rank r.
    let mut held: Vec<Vec<(u32, u32)>> = (0..p)
        .map(|r| (0..p as u32).map(|d| (r as u32, d)).collect())
        .collect();
    for step in 0..s {
        let mut st = Step::new();
        let snapshot = held.clone();
        for r in 0..p {
            let q = bf.partner(r, step);
            let dest_set = &resp[step as usize][q];
            let moving: Vec<(u32, u32)> = snapshot[r]
                .iter()
                .copied()
                .filter(|&(_, d)| dest_set.binary_search(&d).is_ok())
                .collect();
            if moving.is_empty() {
                continue;
            }
            let blocks: Vec<BlockId> = moving
                .iter()
                .map(|&(o, d)| BlockId::Pairwise { origin: o, dest: d })
                .collect();
            st.push(Message::new(r, q, blocks, TransferKind::Copy, p));
            held[r].retain(|b| !moving.contains(b));
            held[q].extend(moving.iter().copied());
        }
        sched.push_step(st);
    }
    sched
}

/// Bruck's logarithmic alltoall: at step `k` every rank forwards to the rank
/// `2^k` positions ahead all blocks whose remaining destination offset has
/// bit `k` set.
pub fn bruck_alltoall(p: usize, algorithm: &str) -> Schedule {
    let mut sched = Schedule::new(p, Collective::Alltoall, algorithm, 0);
    let steps = (usize::BITS - (p - 1).leading_zeros()) as usize;
    let mut held: Vec<Vec<(u32, u32)>> = (0..p)
        .map(|r| (0..p as u32).map(|d| (r as u32, d)).collect())
        .collect();
    for k in 0..steps {
        let mut st = Step::new();
        let snapshot = held.clone();
        for r in 0..p {
            let q = (r + (1 << k)) % p;
            let moving: Vec<(u32, u32)> = snapshot[r]
                .iter()
                .copied()
                .filter(|&(_, d)| ((d as usize + p - r) % p) >> k & 1 == 1)
                .collect();
            if moving.is_empty() {
                continue;
            }
            let blocks: Vec<BlockId> = moving
                .iter()
                .map(|&(o, d)| BlockId::Pairwise { origin: o, dest: d })
                .collect();
            st.push(Message::new(r, q, blocks, TransferKind::Copy, p));
            held[r].retain(|b| !moving.contains(b));
            held[q].extend(moving.iter().copied());
        }
        sched.push_step(st);
    }
    sched
}

/// Linear (pairwise shifted) alltoall: `p − 1` steps, at step `k` every rank
/// sends one block directly to the rank `k` positions ahead.
pub fn pairwise_alltoall(p: usize, algorithm: &str) -> Schedule {
    let mut sched = Schedule::new(p, Collective::Alltoall, algorithm, 0);
    for k in 1..p {
        let mut st = Step::new();
        for r in 0..p {
            let q = (r + k) % p;
            st.push(Message::new(
                r,
                q,
                vec![BlockId::Pairwise {
                    origin: r as u32,
                    dest: q as u32,
                }],
                TransferKind::Copy,
                p,
            ));
        }
        sched.push_step(st);
    }
    sched
}

/// Ring reduce-scatter: `p − 1` steps around the ring; at step `t` rank `r`
/// forwards the partially-reduced segment `(r − t − 1) mod p` to its right
/// neighbour. Rank `r` ends up owning segment `r`.
pub fn ring_reduce_scatter(p: usize, algorithm: &str) -> Schedule {
    let mut sched = Schedule::new(p, Collective::ReduceScatter, algorithm, 0);
    for t in 0..p.saturating_sub(1) {
        let mut st = Step::new();
        for r in 0..p {
            let seg = ((r + 2 * p) - t - 1) % p;
            st.push(Message::new(
                r,
                (r + 1) % p,
                vec![BlockId::Segment(seg as u32)],
                TransferKind::Reduce,
                p,
            ));
        }
        sched.push_step(st);
    }
    sched
}

/// Ring allgather: `p − 1` steps around the ring; at step `t` rank `r`
/// forwards segment `(r − t) mod p` to its right neighbour.
pub fn ring_allgather(p: usize, algorithm: &str) -> Schedule {
    let mut sched = Schedule::new(p, Collective::Allgather, algorithm, 0);
    for t in 0..p.saturating_sub(1) {
        let mut st = Step::new();
        for r in 0..p {
            let seg = ((r + p) - t) % p;
            st.push(Message::new(
                r,
                (r + 1) % p,
                vec![BlockId::Segment(seg as u32)],
                TransferKind::Copy,
                p,
            ));
        }
        sched.push_step(st);
    }
    sched
}

/// Träff's dual-root reduction-to-all ("A Doubly-pipelined, Dual-root
/// Reduction-to-all Algorithm and Implementation"): the vector is split in
/// two halves, each reduced up and broadcast down its own tree — tree 0
/// rooted at rank 0 owns segments `[0, p/2)`, tree 1 rooted at rank `p/2`
/// owns `[p/2, p)`. The two trees are step-interleaved (tree 0 on even
/// steps, tree 1 on odd) so every rank stays single-ported per step while
/// each half-vector travels concurrently with the other. The *doubly
/// pipelined* behaviour of the paper is recovered by applying the standard
/// `+segS` segmentation transform on top — each half is itself a multi-block
/// message the pipeline can split.
pub fn dual_root_allreduce(p: usize, algorithm: &str) -> Schedule {
    use bine_core::tree::BinomialTreeDd;
    assert!(
        p >= 2 && p.is_power_of_two(),
        "dual-root allreduce needs a power-of-two rank count >= 2, got {p}"
    );
    let trees = [BinomialTreeDd::new(p, 0), BinomialTreeDd::new(p, p / 2)];
    let halves: [Vec<BlockId>; 2] = [
        (0..p as u32 / 2).map(BlockId::Segment).collect(),
        (p as u32 / 2..p as u32).map(BlockId::Segment).collect(),
    ];
    let s = trees[0].num_steps();
    let mut sched = Schedule::new(p, Collective::Allreduce, algorithm, 0);
    // Phase 1: reduce each half up its tree, in reverse tree-step order.
    for gather_step in 0..s {
        let tree_step = s - 1 - gather_step;
        for (tree, half) in trees.iter().zip(&halves) {
            let mut st = Step::new();
            for r in 0..p {
                if tree.recv_step(r) == Some(tree_step) {
                    let parent = tree.parent(r).expect("non-root rank has a parent");
                    st.push(Message::new(
                        r,
                        parent,
                        half.clone(),
                        TransferKind::Reduce,
                        p,
                    ));
                }
            }
            sched.push_step(st);
        }
    }
    // Phase 2: broadcast each reduced half back down its tree.
    for step in 0..s {
        for (tree, half) in trees.iter().zip(&halves) {
            let mut st = Step::new();
            for r in 0..p {
                if step >= tree.first_send_step(r) && is_active(tree, r, step) {
                    if let Some(c) = tree.partner(r, step) {
                        st.push(Message::new(r, c, half.clone(), TransferKind::Copy, p));
                    }
                }
            }
            sched.push_step(st);
        }
    }
    sched
}

/// Composes two schedules into a new one for `collective`, concatenating the
/// steps (e.g. reduce-scatter + allgather = allreduce).
pub fn compose(
    collective: Collective,
    algorithm: &str,
    root: usize,
    first: Schedule,
    second: Schedule,
) -> Schedule {
    assert_eq!(first.num_ranks, second.num_ranks);
    let mut sched = Schedule::new(first.num_ranks, collective, algorithm, root);
    sched.extend_with(first);
    sched.extend_with(second);
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use bine_core::butterfly::ButterflyKind;
    use bine_core::tree::{build_tree, TreeKind};
    use std::collections::HashSet;

    #[test]
    fn tree_broadcast_has_p_minus_1_messages() {
        for &kind in &TreeKind::ALL {
            let tree = build_tree(kind, 64, 5);
            let sched = tree_broadcast(tree.as_ref(), kind.name());
            assert_eq!(sched.messages().count(), 63);
            assert!(sched.validate().is_ok());
            // Every rank except the root receives exactly once.
            let mut recv = vec![0usize; 64];
            for (_, m) in sched.messages() {
                recv[m.dst] += 1;
            }
            assert_eq!(recv[5], 0);
            assert!(recv.iter().enumerate().all(|(r, &c)| r == 5 || c == 1));
        }
    }

    #[test]
    fn tree_gather_and_scatter_move_whole_subtrees() {
        let tree = build_tree(TreeKind::BineDistanceHalving, 32, 0);
        let gather = tree_gather(tree.as_ref(), "bine");
        let scatter = tree_scatter(tree.as_ref(), "bine");
        assert!(gather.validate().is_ok());
        assert!(scatter.validate().is_ok());
        // Total blocks moved: each rank's block crosses one edge per tree
        // level on its path to/from the root.
        let gather_blocks: usize = gather.messages().map(|(_, m)| m.blocks.len()).sum();
        let scatter_blocks: usize = scatter.messages().map(|(_, m)| m.blocks.len()).sum();
        assert_eq!(gather_blocks, scatter_blocks);
        // The root never sends in a gather and never receives in a scatter.
        assert!(gather.messages().all(|(_, m)| m.src != 0 || m.is_local()));
        assert!(scatter.messages().all(|(_, m)| m.dst != 0 || m.is_local()));
    }

    #[test]
    fn butterfly_allgather_reaches_everyone() {
        for &kind in &ButterflyKind::ALL {
            let bf = Butterfly::new(kind, 32);
            let sched = butterfly_allgather(&bf, kind.name());
            assert!(sched.validate().is_ok());
            // Simulate holdings to confirm the schedule is self-consistent.
            let mut have: Vec<HashSet<u32>> = (0..32).map(|r| HashSet::from([r as u32])).collect();
            for step in &sched.steps {
                let snap = have.clone();
                for m in &step.messages {
                    for b in &m.blocks {
                        if let BlockId::Segment(i) = b {
                            assert!(
                                snap[m.src].contains(i),
                                "rank {} sent a block it does not hold",
                                m.src
                            );
                            have[m.dst].insert(*i);
                        }
                    }
                }
            }
            assert!(have.iter().all(|s| s.len() == 32));
        }
    }

    #[test]
    fn butterfly_reduce_scatter_sends_the_right_volume() {
        // Every rank sends n(p−1)/p bytes in total (Sec. 4.3).
        let p = 64;
        let n = 64 * 1024u64;
        for strategy in [NonContigStrategy::Permute, NonContigStrategy::BlockByBlock] {
            let bf = Butterfly::new(ButterflyKind::BineDistanceDoubling, p);
            let sched = butterfly_reduce_scatter(&bf, strategy, "bine");
            let mut sent = vec![0u64; p];
            for (_, m) in sched.messages() {
                if !m.is_local() {
                    sent[m.src] += m.bytes(n, p);
                }
            }
            for &b in &sent {
                assert_eq!(b, n * (p as u64 - 1) / p as u64);
            }
        }
    }

    #[test]
    fn send_strategy_adds_final_exchange() {
        let bf = Butterfly::new(ButterflyKind::BineDistanceDoubling, 16);
        let permute = butterfly_reduce_scatter(&bf, NonContigStrategy::Permute, "bine");
        let send = butterfly_reduce_scatter(&bf, NonContigStrategy::Send, "bine");
        // Permute: one extra local step at the front. Send: one extra network
        // step at the back.
        assert_eq!(permute.num_steps(), send.num_steps());
        assert!(permute.steps[0].messages.iter().all(|m| m.is_local()));
        assert!(send
            .steps
            .last()
            .unwrap()
            .messages
            .iter()
            .all(|m| !m.is_local()));
    }

    #[test]
    fn alltoall_algorithms_route_every_block_to_its_destination() {
        let p = 16;
        let schedules = vec![
            butterfly_alltoall(
                &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
                "bine",
            ),
            bruck_alltoall(p, "bruck"),
            pairwise_alltoall(p, "pairwise"),
        ];
        for sched in schedules {
            assert!(sched.validate().is_ok(), "{}", sched.algorithm);
            // Simulate block movement.
            let mut held: Vec<HashSet<(u32, u32)>> = (0..p)
                .map(|r| (0..p as u32).map(|d| (r as u32, d)).collect())
                .collect();
            for step in &sched.steps {
                let snap = held.clone();
                for m in &step.messages {
                    for b in &m.blocks {
                        if let BlockId::Pairwise { origin, dest } = b {
                            assert!(
                                snap[m.src].contains(&(*origin, *dest)),
                                "{}: rank {} forwarded a block it does not hold",
                                sched.algorithm,
                                m.src
                            );
                            held[m.src].remove(&(*origin, *dest));
                            held[m.dst].insert((*origin, *dest));
                        }
                    }
                }
            }
            for (r, set) in held.iter().enumerate() {
                assert_eq!(set.len(), p, "{}: rank {r}", sched.algorithm);
                assert!(
                    set.iter().all(|&(_, d)| d as usize == r),
                    "{}: rank {r} holds foreign blocks",
                    sched.algorithm
                );
            }
        }
    }

    #[test]
    fn ring_schedules_have_linear_step_counts() {
        let p = 12;
        assert_eq!(ring_reduce_scatter(p, "ring").num_steps(), p - 1);
        assert_eq!(ring_allgather(p, "ring").num_steps(), p - 1);
        assert!(ring_reduce_scatter(p, "ring").validate().is_ok());
        assert!(ring_allgather(p, "ring").validate().is_ok());
    }
}
