//! Schedule generators for the eight collectives of the paper, each with the
//! Bine algorithm of Sec. 4 and the baselines it is compared against in
//! Sec. 5.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod builders;
pub mod gather;
pub mod irregular;
pub mod reduce;
pub mod reduce_scatter;
pub mod scatter;

pub use allgather::{allgather, AllgatherAlg};
pub use allreduce::{allreduce, AllreduceAlg};
pub use alltoall::{alltoall, AlltoallAlg};
pub use bcast::{broadcast, BroadcastAlg};
pub use gather::{gather, GatherAlg};
pub use irregular::{
    allgatherv, build_irregular, gatherv, irregular_algorithms, reduce_scatterv, scatterv,
    IrregularAlg, SizeDist, TraffTree, IRREGULAR_COLLECTIVES,
};
pub use reduce::{reduce, ReduceAlg};
pub use reduce_scatter::{reduce_scatter, ReduceScatterAlg};
pub use scatter::{scatter, ScatterAlg};
