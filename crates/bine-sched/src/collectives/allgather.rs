//! Allgather schedules (Sec. 4.3).

use bine_core::butterfly::{Butterfly, ButterflyKind};

use super::builders::{
    butterfly_allgather, butterfly_allgather_permute, force_contiguous, mark_noncontiguous,
    ring_allgather,
};
use crate::noncontig::NonContigStrategy;
use crate::schedule::Schedule;
use crate::schedule::{BlockId, Collective, Message, Step, TransferKind};

/// Allgather algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllgatherAlg {
    /// Bine distance-halving butterfly allgather: the largest transfers of
    /// the final steps travel the shortest modular distances.
    Bine,
    /// Standard recursive-doubling butterfly allgather.
    RecursiveDoubling,
    /// Ring allgather (`p − 1` nearest-neighbour steps).
    Ring,
    /// Swing allgather: same peer sequence as the Bine butterfly but with
    /// the non-contiguous block layout of the original Swing algorithm.
    Swing,
}

impl AllgatherAlg {
    /// All allgather algorithms.
    pub const ALL: [AllgatherAlg; 4] = [
        AllgatherAlg::Bine,
        AllgatherAlg::RecursiveDoubling,
        AllgatherAlg::Ring,
        AllgatherAlg::Swing,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            AllgatherAlg::Bine => "bine",
            AllgatherAlg::RecursiveDoubling => "recursive-doubling",
            AllgatherAlg::Ring => "ring",
            AllgatherAlg::Swing => "swing",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(self, AllgatherAlg::Bine)
    }
}

/// Builds the allgather schedule for `p` ranks.
pub fn allgather(p: usize, alg: AllgatherAlg) -> Schedule {
    match alg {
        AllgatherAlg::Bine => butterfly_allgather_permute(
            &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
            true,
            alg.name(),
        ),
        AllgatherAlg::RecursiveDoubling => butterfly_allgather(
            &Butterfly::new(ButterflyKind::RecursiveDoubling, p),
            alg.name(),
        ),
        AllgatherAlg::Ring => ring_allgather(p, alg.name()),
        AllgatherAlg::Swing => mark_noncontiguous(butterfly_allgather(
            &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
            alg.name(),
        )),
    }
}

/// Bine allgather with an explicit non-contiguous-data strategy (Appendix B,
/// Fig. 14). All four variants exchange exactly the same blocks with the
/// same peers; they differ in segment counts, local permutation passes and —
/// for the `Send` strategy — one extra reordering exchange up front.
pub fn allgather_with_strategy(p: usize, strategy: NonContigStrategy) -> Schedule {
    let name = format!("bine-{}", strategy.name());
    let bf = Butterfly::new(ButterflyKind::BineDistanceHalving, p);
    match strategy {
        NonContigStrategy::BlockByBlock => {
            let mut sched = mark_noncontiguous(butterfly_allgather(&bf, &name));
            sched.algorithm = name;
            sched
        }
        NonContigStrategy::Permute => butterfly_allgather_permute(&bf, true, &name),
        NonContigStrategy::TwoTransmissions => butterfly_allgather(&bf, &name),
        NonContigStrategy::Send => {
            // One extra exchange before the collective moves each rank's
            // contribution to the position the permuted layout expects
            // (Sec. 4.3.1: "the transmission to reorder the blocks is done
            // before the actual steps").
            let perm = bine_core::block::nu_bit_reversal_permutation(p);
            let mut sched = Schedule::new(p, Collective::Allgather, name.clone(), 0);
            let mut st = Step::new();
            for (r, &dst) in perm.iter().enumerate() {
                if dst != r {
                    st.push(Message::with_segments(
                        r,
                        dst,
                        vec![BlockId::Segment(r as u32)],
                        TransferKind::Copy,
                        1,
                    ));
                }
            }
            if !st.is_empty() {
                sched.push_step(st);
            }
            sched.extend_with(force_contiguous(butterfly_allgather(&bf, &name)));
            sched
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Collective;
    use std::collections::HashSet;

    #[test]
    fn all_allgather_algorithms_deliver_every_block_everywhere() {
        for &alg in &AllgatherAlg::ALL {
            for p in [4, 16, 64] {
                let sched = allgather(p, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Allgather);
                let mut held: Vec<HashSet<u32>> =
                    (0..p).map(|r| HashSet::from([r as u32])).collect();
                for step in &sched.steps {
                    let snap = held.clone();
                    for m in &step.messages {
                        for b in &m.blocks {
                            if let BlockId::Segment(i) = b {
                                assert!(snap[m.src].contains(i), "{}", alg.name());
                                held[m.dst].insert(*i);
                            }
                        }
                    }
                }
                assert!(held.iter().all(|s| s.len() == p), "{}", alg.name());
            }
        }
    }

    #[test]
    fn logarithmic_allgathers_use_log_p_steps() {
        // Bine pays one extra *local* reordering pass on top of the log2(p)
        // network steps (the `permute` strategy applied at the end).
        let bine = allgather(256, AllgatherAlg::Bine);
        assert_eq!(bine.num_steps(), 9);
        let network_steps = bine
            .steps
            .iter()
            .filter(|s| s.messages.iter().any(|m| !m.is_local()))
            .count();
        assert_eq!(network_steps, 8);
        assert_eq!(
            allgather(256, AllgatherAlg::RecursiveDoubling).num_steps(),
            8
        );
        assert_eq!(allgather(256, AllgatherAlg::Ring).num_steps(), 255);
    }

    #[test]
    fn every_rank_sends_the_same_volume() {
        let p = 32;
        let n = 1 << 20u64;
        for &alg in &AllgatherAlg::ALL {
            let sched = allgather(p, alg);
            let expected = n * (p as u64 - 1) / p as u64;
            for r in 0..p {
                let sent: u64 = sched
                    .messages()
                    .filter(|(_, m)| m.src == r && !m.is_local())
                    .map(|(_, m)| m.bytes(n, p))
                    .sum();
                assert_eq!(sent, expected, "{} rank {r}", alg.name());
            }
        }
    }

    #[test]
    fn strategy_variants_deliver_every_block_everywhere() {
        for strategy in NonContigStrategy::ALL {
            for p in [4usize, 32] {
                let sched = allgather_with_strategy(p, strategy);
                assert!(sched.validate().is_ok(), "{}", sched.algorithm);
                let mut held: Vec<HashSet<u32>> =
                    (0..p).map(|r| HashSet::from([r as u32])).collect();
                for step in &sched.steps {
                    let snap = held.clone();
                    for m in &step.messages {
                        for b in &m.blocks {
                            if let BlockId::Segment(i) = b {
                                assert!(snap[m.src].contains(i), "{}", sched.algorithm);
                                held[m.dst].insert(*i);
                            }
                        }
                    }
                }
                assert!(held.iter().all(|s| s.len() == p), "{}", sched.algorithm);
            }
        }
    }

    #[test]
    fn swing_is_non_contiguous_while_bine_is_not() {
        let p = 64;
        let bine = allgather(p, AllgatherAlg::Bine);
        let swing = allgather(p, AllgatherAlg::Swing);
        let max_segments = |s: &Schedule| s.messages().map(|(_, m)| m.segments).max().unwrap();
        assert!(max_segments(&swing) > max_segments(&bine));
    }
}
