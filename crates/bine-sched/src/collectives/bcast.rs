//! Broadcast schedules (Sec. 4.5).

use bine_core::butterfly::{Butterfly, ButterflyKind};
use bine_core::tree::{BineTreeDd, BineTreeDh, BinomialTreeDd, BinomialTreeDh};

use super::builders::{butterfly_allgather, compose, tree_broadcast, tree_scatter};
use crate::schedule::{Collective, Schedule};

/// Broadcast algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BroadcastAlg {
    /// Small-vector Bine broadcast: distance-halving Bine tree.
    BineTree,
    /// Large-vector Bine broadcast: distance-doubling Bine scatter followed
    /// by a distance-halving Bine allgather.
    BineScatterAllgather,
    /// Open MPI-style distance-doubling binomial tree.
    BinomialDistanceDoubling,
    /// MPICH-style distance-halving binomial tree.
    BinomialDistanceHalving,
    /// MPICH/Open MPI large-vector broadcast: binomial scatter followed by a
    /// recursive-doubling allgather.
    ScatterAllgather,
}

impl BroadcastAlg {
    /// All broadcast algorithms.
    pub const ALL: [BroadcastAlg; 5] = [
        BroadcastAlg::BineTree,
        BroadcastAlg::BineScatterAllgather,
        BroadcastAlg::BinomialDistanceDoubling,
        BroadcastAlg::BinomialDistanceHalving,
        BroadcastAlg::ScatterAllgather,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            BroadcastAlg::BineTree => "bine-tree",
            BroadcastAlg::BineScatterAllgather => "bine-scatter-allgather",
            BroadcastAlg::BinomialDistanceDoubling => "binomial-dd",
            BroadcastAlg::BinomialDistanceHalving => "binomial-dh",
            BroadcastAlg::ScatterAllgather => "scatter-allgather",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(
            self,
            BroadcastAlg::BineTree | BroadcastAlg::BineScatterAllgather
        )
    }
}

/// Builds the broadcast schedule for `p` ranks rooted at `root`.
///
/// # Panics
/// Panics if `p` is not a power of two (the benchmark harness folds
/// non-power-of-two counts before calling this).
pub fn broadcast(p: usize, root: usize, alg: BroadcastAlg) -> Schedule {
    match alg {
        BroadcastAlg::BineTree => tree_broadcast(&BineTreeDh::new(p, root), alg.name()),
        BroadcastAlg::BinomialDistanceDoubling => {
            tree_broadcast(&BinomialTreeDd::new(p, root), alg.name())
        }
        BroadcastAlg::BinomialDistanceHalving => {
            tree_broadcast(&BinomialTreeDh::new(p, root), alg.name())
        }
        BroadcastAlg::BineScatterAllgather => {
            let scatter = tree_scatter(&BineTreeDd::new(p, root), alg.name());
            let allgather = butterfly_allgather(
                &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
                alg.name(),
            );
            compose(Collective::Broadcast, alg.name(), root, scatter, allgather)
        }
        BroadcastAlg::ScatterAllgather => {
            let scatter = tree_scatter(&BinomialTreeDh::new(p, root), alg.name());
            let allgather = butterfly_allgather(
                &Butterfly::new(ButterflyKind::RecursiveDoubling, p),
                alg.name(),
            );
            compose(Collective::Broadcast, alg.name(), root, scatter, allgather)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_broadcast_algorithms_validate() {
        for &alg in &BroadcastAlg::ALL {
            for p in [2, 8, 64, 256] {
                let sched = broadcast(p, 3 % p, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Broadcast);
            }
        }
    }

    #[test]
    fn tree_broadcasts_move_full_vectors() {
        let sched = broadcast(16, 0, BroadcastAlg::BineTree);
        assert_eq!(sched.total_network_bytes(1 << 20), 15 << 20);
    }

    #[test]
    fn scatter_allgather_has_lower_per_rank_load_than_tree_for_large_vectors() {
        // The scatter+allgather broadcast sends ~2n from the busiest rank
        // instead of n·log2(p) from the root of a binomial tree.
        let n = 1 << 20;
        let tree = broadcast(64, 0, BroadcastAlg::BinomialDistanceDoubling);
        let sag = broadcast(64, 0, BroadcastAlg::BineScatterAllgather);
        assert!(sag.max_bytes_sent_by_rank(n) < tree.max_bytes_sent_by_rank(n));
        assert!(tree.max_bytes_sent_by_rank(n) >= 6 * n);
        assert!(sag.max_bytes_sent_by_rank(n) <= 3 * n);
    }
}
