//! Alltoall schedules (Sec. 4.4).

use bine_core::butterfly::{Butterfly, ButterflyKind};

use super::builders::{bruck_alltoall, butterfly_alltoall, pairwise_alltoall};
use crate::schedule::Schedule;

/// Alltoall algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlltoallAlg {
    /// Bine alltoall: logarithmic exchange over the Bine distance-halving
    /// butterfly, with block routing analogous to Bruck's rotations.
    Bine,
    /// Bruck's logarithmic alltoall.
    Bruck,
    /// Pairwise (linear) alltoall: `p − 1` direct exchanges.
    Pairwise,
}

impl AlltoallAlg {
    /// All alltoall algorithms.
    pub const ALL: [AlltoallAlg; 3] =
        [AlltoallAlg::Bine, AlltoallAlg::Bruck, AlltoallAlg::Pairwise];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            AlltoallAlg::Bine => "bine",
            AlltoallAlg::Bruck => "bruck",
            AlltoallAlg::Pairwise => "pairwise",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(self, AlltoallAlg::Bine)
    }
}

/// Builds the alltoall schedule for `p` ranks.
pub fn alltoall(p: usize, alg: AlltoallAlg) -> Schedule {
    match alg {
        AlltoallAlg::Bine => butterfly_alltoall(
            &Butterfly::new(ButterflyKind::BineDistanceHalving, p),
            alg.name(),
        ),
        AlltoallAlg::Bruck => bruck_alltoall(p, alg.name()),
        AlltoallAlg::Pairwise => pairwise_alltoall(p, alg.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Collective;

    #[test]
    fn all_alltoall_algorithms_validate() {
        for &alg in &AlltoallAlg::ALL {
            for p in [2, 8, 64] {
                let sched = alltoall(p, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Alltoall);
            }
        }
    }

    #[test]
    fn logarithmic_alltoalls_trade_volume_for_steps() {
        let p = 64;
        let n = (64 * 1024) as u64; // per-rank send buffer
        let bine = alltoall(p, AlltoallAlg::Bine);
        let bruck = alltoall(p, AlltoallAlg::Bruck);
        let pairwise = alltoall(p, AlltoallAlg::Pairwise);
        // Logarithmic step counts vs linear.
        assert_eq!(bine.num_steps(), 6);
        assert_eq!(bruck.num_steps(), 6);
        assert_eq!(pairwise.num_steps(), p - 1);
        // Pairwise moves the minimum volume; the logarithmic algorithms move
        // roughly (log2 p)/2 times more because blocks travel multiple hops.
        let direct = pairwise.total_network_bytes(n);
        assert!(bine.total_network_bytes(n) > direct);
        assert!(bruck.total_network_bytes(n) > direct);
        assert!(bine.total_network_bytes(n) <= direct * 4);
    }

    #[test]
    fn bine_and_bruck_send_the_same_volume_per_step() {
        // Both send n/2 bytes per rank per step (Sec. 4.4).
        let p = 32;
        let n = 32 * 1024u64;
        let bine = alltoall(p, AlltoallAlg::Bine);
        for step in &bine.steps {
            for m in &step.messages {
                assert_eq!(m.bytes(n, p), n / 2);
            }
        }
    }
}
