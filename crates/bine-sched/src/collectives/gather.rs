//! Gather schedules (Sec. 4.1).

use bine_core::tree::{BineTreeDh, BinomialTreeDd, BinomialTreeDh};

use super::builders::tree_gather;
use crate::schedule::Schedule;

/// Gather algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatherAlg {
    /// Distance-halving Bine tree gather: buffers extend alternately upward
    /// and downward on the rank circle, keeping transfers (circularly)
    /// contiguous.
    Bine,
    /// Open MPI-style distance-doubling binomial tree gather.
    BinomialDistanceDoubling,
    /// MPICH-style distance-halving binomial tree gather.
    BinomialDistanceHalving,
}

impl GatherAlg {
    /// All gather algorithms.
    pub const ALL: [GatherAlg; 3] = [
        GatherAlg::Bine,
        GatherAlg::BinomialDistanceDoubling,
        GatherAlg::BinomialDistanceHalving,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            GatherAlg::Bine => "bine",
            GatherAlg::BinomialDistanceDoubling => "binomial-dd",
            GatherAlg::BinomialDistanceHalving => "binomial-dh",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(self, GatherAlg::Bine)
    }
}

/// Builds the gather schedule for `p` ranks rooted at `root`.
pub fn gather(p: usize, root: usize, alg: GatherAlg) -> Schedule {
    match alg {
        GatherAlg::Bine => tree_gather(&BineTreeDh::new(p, root), alg.name()),
        GatherAlg::BinomialDistanceDoubling => {
            tree_gather(&BinomialTreeDd::new(p, root), alg.name())
        }
        GatherAlg::BinomialDistanceHalving => {
            tree_gather(&BinomialTreeDh::new(p, root), alg.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::BlockId;
    use crate::schedule::Collective;
    use std::collections::HashSet;

    #[test]
    fn all_gather_tree_algorithms_validate_and_deliver_every_block() {
        for &alg in &GatherAlg::ALL {
            for p in [4, 32, 128] {
                let root = p / 3;
                let sched = gather(p, root, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Gather);
                // Simulate: every rank starts with its own block; the root
                // must end up holding all p blocks.
                let mut held: Vec<HashSet<u32>> =
                    (0..p).map(|r| HashSet::from([r as u32])).collect();
                for step in &sched.steps {
                    let snap = held.clone();
                    for m in &step.messages {
                        for b in &m.blocks {
                            if let BlockId::Segment(i) = b {
                                assert!(
                                    snap[m.src].contains(i),
                                    "{}: sender misses block",
                                    alg.name()
                                );
                                held[m.dst].insert(*i);
                            }
                        }
                    }
                }
                assert_eq!(held[root].len(), p, "{}", alg.name());
            }
        }
    }

    #[test]
    fn gather_message_count_matches_tree_edges() {
        let sched = gather(64, 0, GatherAlg::Bine);
        assert_eq!(sched.messages().count(), 63);
    }

    #[test]
    fn bine_gather_transfers_at_most_two_linear_segments() {
        // Sec. 4.1: Bine gather buffers are circular ranges, so a transfer
        // touches at most two linear memory segments.
        let sched = gather(128, 0, GatherAlg::Bine);
        for (_, m) in sched.messages() {
            assert!(m.segments <= 2, "message with {} segments", m.segments);
        }
    }
}
