//! Reduce schedules (Sec. 4.5).

use bine_core::butterfly::{Butterfly, ButterflyKind};
use bine_core::tree::{BineTreeDh, BinomialTreeDd, BinomialTreeDh};

use super::builders::{butterfly_reduce_scatter, compose, tree_gather, tree_reduce};
use crate::noncontig::NonContigStrategy;
use crate::schedule::{Collective, Schedule};

/// Reduce algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceAlg {
    /// Small-vector Bine reduce: distance-halving Bine tree, leaves to root.
    BineTree,
    /// Large-vector Bine reduce: distance-doubling Bine butterfly
    /// reduce-scatter followed by a distance-halving Bine tree gather.
    BineReduceScatterGather,
    /// Open MPI-style distance-doubling binomial tree.
    BinomialDistanceDoubling,
    /// MPICH-style distance-halving binomial tree.
    BinomialDistanceHalving,
    /// Rabenseifner-style large-vector reduce: recursive-halving
    /// reduce-scatter followed by a binomial gather.
    ReduceScatterGather,
}

impl ReduceAlg {
    /// All reduce algorithms.
    pub const ALL: [ReduceAlg; 5] = [
        ReduceAlg::BineTree,
        ReduceAlg::BineReduceScatterGather,
        ReduceAlg::BinomialDistanceDoubling,
        ReduceAlg::BinomialDistanceHalving,
        ReduceAlg::ReduceScatterGather,
    ];

    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceAlg::BineTree => "bine-tree",
            ReduceAlg::BineReduceScatterGather => "bine-rs-gather",
            ReduceAlg::BinomialDistanceDoubling => "binomial-dd",
            ReduceAlg::BinomialDistanceHalving => "binomial-dh",
            ReduceAlg::ReduceScatterGather => "rs-gather",
        }
    }

    /// Whether this is a Bine algorithm.
    pub fn is_bine(&self) -> bool {
        matches!(
            self,
            ReduceAlg::BineTree | ReduceAlg::BineReduceScatterGather
        )
    }
}

/// Builds the reduce schedule for `p` ranks rooted at `root`.
pub fn reduce(p: usize, root: usize, alg: ReduceAlg) -> Schedule {
    match alg {
        ReduceAlg::BineTree => tree_reduce(&BineTreeDh::new(p, root), alg.name()),
        ReduceAlg::BinomialDistanceDoubling => {
            tree_reduce(&BinomialTreeDd::new(p, root), alg.name())
        }
        ReduceAlg::BinomialDistanceHalving => {
            tree_reduce(&BinomialTreeDh::new(p, root), alg.name())
        }
        ReduceAlg::BineReduceScatterGather => {
            let rs = butterfly_reduce_scatter(
                &Butterfly::new(ButterflyKind::BineDistanceDoubling, p),
                NonContigStrategy::Permute,
                alg.name(),
            );
            let gather = tree_gather(&BineTreeDh::new(p, root), alg.name());
            compose(Collective::Reduce, alg.name(), root, rs, gather)
        }
        ReduceAlg::ReduceScatterGather => {
            let rs = butterfly_reduce_scatter(
                &Butterfly::new(ButterflyKind::RecursiveHalving, p),
                NonContigStrategy::Permute,
                alg.name(),
            );
            let gather = tree_gather(&BinomialTreeDh::new(p, root), alg.name());
            compose(Collective::Reduce, alg.name(), root, rs, gather)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_algorithms_validate() {
        for &alg in &ReduceAlg::ALL {
            for p in [2, 16, 128] {
                let sched = reduce(p, p / 2, alg);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert_eq!(sched.collective, Collective::Reduce);
            }
        }
    }

    #[test]
    fn tree_reduce_mirrors_broadcast() {
        // Tree reduce has the same edges as the broadcast tree, reversed.
        let sched = reduce(32, 0, ReduceAlg::BineTree);
        assert_eq!(sched.messages().count(), 31);
        // The root never sends, only receives.
        assert!(sched.messages().all(|(_, m)| m.src != 0));
        let recvs_by_root = sched.messages().filter(|(_, m)| m.dst == 0).count();
        assert_eq!(recvs_by_root, 5); // one per step: log2(32)
    }

    #[test]
    fn large_vector_reduce_has_lower_per_rank_load() {
        // In a binomial tree reduce the root receives (and reduces) n·log2(p)
        // bytes; the reduce-scatter + gather composition spreads that work.
        let n = 1 << 22;
        let tree = reduce(64, 0, ReduceAlg::BinomialDistanceDoubling);
        let rsg = reduce(64, 0, ReduceAlg::BineReduceScatterGather);
        assert!(rsg.max_bytes_received_by_rank(n) < tree.max_bytes_received_by_rank(n));
    }
}
