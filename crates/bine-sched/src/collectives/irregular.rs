//! Irregular (v-variant) collectives: `gatherv`, `scatterv`, `allgatherv`
//! and `reduce_scatterv`, where rank `i` owns a share of the vector
//! proportional to a per-rank count `cᵢ` instead of the uniform `n / p`
//! split (MPI's `MPI_Gatherv` family).
//!
//! Routing is count-independent: an irregular schedule moves exactly the
//! same [`BlockId::Segment`] blocks as its regular counterpart and only the
//! *sizing* changes, via [`Counts`] attached to the [`Schedule`]. That is
//! what makes the equal-counts case reproduce the regular byte accounting
//! bit-exactly (pinned by the regression tests in `bine-net`).
//!
//! The count-*aware* algorithm is the `traff` tree for the rooted
//! gatherv/scatterv, after Träff, "On Optimal Trees for Irregular Gather
//! and Scatter Collectives": ranks with heavier counts are placed closer to
//! the root, so the bulk of the data crosses few tree edges. The tree is a
//! binomial skeleton over the count-sorted rank order — along every
//! root-to-leaf path the counts are non-increasing — scheduled by a greedy
//! round scheduler that respects the single-ported step model.

use crate::schedule::{BlockId, Collective, Counts, Message, Schedule, Step, TransferKind};

use super::allgather::{allgather, AllgatherAlg};
use super::gather::{gather, GatherAlg};
use super::reduce_scatter::{reduce_scatter, ReduceScatterAlg};
use super::scatter::{scatter, ScatterAlg};

/// The size-distribution descriptors the irregular tuning grid is keyed by.
///
/// An irregular grid point cannot be keyed by a single `bytes` value the
/// way the regular grid is — the *shape* of the per-rank counts changes
/// which algorithm wins. These three shapes span the space the tuner
/// sweeps: the regular special case, a linear skew, and the degenerate
/// one-rank-holds-everything case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeDist {
    /// Every rank contributes the same count (the regular special case).
    Uniform,
    /// Rank `i` contributes `i + 1` units: a linear skew.
    Linear,
    /// One rank (the root for rooted collectives, rank 0 otherwise) holds
    /// everything; all other counts are zero.
    OneHeavy,
}

impl SizeDist {
    /// All distribution descriptors, in a stable order.
    pub const ALL: [SizeDist; 3] = [SizeDist::Uniform, SizeDist::Linear, SizeDist::OneHeavy];

    /// Short name as used in decision tables.
    pub fn name(&self) -> &'static str {
        match self {
            SizeDist::Uniform => "uniform",
            SizeDist::Linear => "linear",
            SizeDist::OneHeavy => "one-heavy",
        }
    }

    /// Parses the table name back into a descriptor.
    pub fn from_name(name: &str) -> Option<SizeDist> {
        SizeDist::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Materialises the per-rank counts for `p` ranks, with the heavy rank
    /// of [`SizeDist::OneHeavy`] at `heavy` (the root for rooted
    /// collectives).
    pub fn counts(&self, p: usize, heavy: usize) -> Counts {
        assert!(heavy < p, "heavy rank {heavy} out of range for p = {p}");
        match self {
            SizeDist::Uniform => Counts::new(vec![1; p]),
            SizeDist::Linear => Counts::new((1..=p as u64).collect()),
            SizeDist::OneHeavy => {
                let mut c = vec![0u64; p];
                c[heavy] = 1;
                Counts::new(c)
            }
        }
    }
}

/// A count-aware gather/scatter tree after Träff: a binomial skeleton whose
/// positions are filled in count order, so heavier ranks sit closer to the
/// root and counts are non-increasing along every root-to-leaf path.
///
/// Unlike the pow2 [`bine_core::tree::CommTree`] patterns this tree exists
/// for every rank count, which is what lets the `traff` v-variants cover
/// non-power-of-two configurations.
#[derive(Debug)]
pub struct TraffTree {
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Segments of the subtree rooted at each rank, ascending.
    subtree: Vec<Vec<u32>>,
}

impl TraffTree {
    /// Builds the tree for `p` ranks rooted at `root` from per-rank counts.
    pub fn new(p: usize, root: usize, counts: &Counts) -> Self {
        assert!(root < p, "root {root} out of range for p = {p}");
        assert_eq!(counts.num_ranks(), p, "counts must cover every rank");
        // Binomial skeleton positions 1..p, shallowest first: position l
        // has depth popcount(l) and parent l with its highest bit cleared.
        let mut positions: Vec<usize> = (1..p).collect();
        positions.sort_by_key(|&l| (l.count_ones(), l));
        // Non-root ranks, heaviest first (ties by rank for determinism).
        let mut ranks: Vec<usize> = (0..p).filter(|&r| r != root).collect();
        ranks.sort_by_key(|&r| (std::cmp::Reverse(counts.count(r)), r));

        let mut rank_at = vec![usize::MAX; p]; // position -> physical rank
        rank_at[0] = root;
        for (&l, &r) in positions.iter().zip(&ranks) {
            rank_at[l] = r;
        }
        let mut parent = vec![None; p];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); p];
        for l in 1..p {
            let pl = l & !(1usize << (usize::BITS - 1 - l.leading_zeros()));
            parent[rank_at[l]] = Some(rank_at[pl]);
            children[rank_at[pl]].push(rank_at[l]);
        }
        for c in &mut children {
            c.sort_unstable();
        }
        // Subtree segment sets, computed leaves-up over the positions.
        let mut subtree: Vec<Vec<u32>> = (0..p).map(|r| vec![r as u32]).collect();
        for &l in positions.iter().rev() {
            let r = rank_at[l];
            let p_of = parent[r].expect("non-root position has a parent");
            let sub = subtree[r].clone();
            subtree[p_of].extend(sub);
        }
        for s in &mut subtree {
            s.sort_unstable();
        }
        Self {
            root,
            parent,
            children,
            subtree,
        }
    }

    /// The root rank.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `r`, `None` for the root.
    pub fn parent(&self, r: usize) -> Option<usize> {
        self.parent[r]
    }

    /// Children of `r`, ascending.
    pub fn children(&self, r: usize) -> &[usize] {
        &self.children[r]
    }

    /// Segments of the subtree rooted at `r` (including `r`), ascending.
    pub fn subtree_segments(&self, r: usize) -> &[u32] {
        &self.subtree[r]
    }
}

/// Gather up a [`TraffTree`] under the single-ported step model: a rank
/// sends its subtree's segments to its parent once every child has arrived,
/// and a parent accepts at most one child per step (heaviest-pending first,
/// ties by rank, for a deterministic schedule).
fn traff_gather_schedule(p: usize, root: usize, counts: &Counts, algorithm: &str) -> Schedule {
    let tree = TraffTree::new(p, root, counts);
    let mut sched = Schedule::new(p, Collective::Gather, algorithm, root);
    let mut pending_children: Vec<usize> = (0..p).map(|r| tree.children(r).len()).collect();
    let mut sent = vec![false; p];
    sent[root] = true; // the root never sends
                       // Weight of each rank's subtree, for the heaviest-first tie-break.
    let weight: Vec<u64> = (0..p)
        .map(|r| {
            tree.subtree_segments(r)
                .iter()
                .map(|&s| counts.count(s as usize))
                .sum()
        })
        .collect();
    while sent.iter().any(|&s| !s) {
        let mut ready: Vec<usize> = (0..p)
            .filter(|&r| !sent[r] && pending_children[r] == 0)
            .collect();
        ready.sort_by_key(|&r| (std::cmp::Reverse(weight[r]), r));
        let mut recv_busy = vec![false; p];
        let mut st = Step::new();
        let mut completed = Vec::new();
        for r in ready {
            let parent = tree.parent(r).expect("non-root rank has a parent");
            if recv_busy[parent] {
                continue; // the parent's receive port is taken this step
            }
            recv_busy[parent] = true;
            let blocks: Vec<BlockId> = tree
                .subtree_segments(r)
                .iter()
                .map(|&s| BlockId::Segment(s))
                .collect();
            st.push(Message::new(r, parent, blocks, TransferKind::Copy, p));
            completed.push(r);
        }
        assert!(
            !st.is_empty(),
            "traff gather scheduler stalled at p = {p}, root = {root}"
        );
        // Completions take effect only after the step: a parent may forward
        // its subtree no earlier than the step after its last child arrived.
        for r in completed {
            sent[r] = true;
            let parent = tree.parent(r).expect("non-root rank has a parent");
            pending_children[parent] -= 1;
        }
        sched.push_step(st);
    }
    sched
}

/// Reverses a rooted schedule in time, swapping message directions — turns
/// a gather into the mirror scatter (the standard gather/scatter duality).
fn time_reverse(mut sched: Schedule, collective: Collective) -> Schedule {
    sched.collective = collective;
    sched.steps.reverse();
    for step in &mut sched.steps {
        for m in &mut step.messages {
            std::mem::swap(&mut m.src, &mut m.dst);
        }
    }
    sched
}

/// Irregular gather: the root ends up holding every rank's
/// `counts[i]`-weighted segment.
///
/// Algorithms: `"traff"` (count-aware tree, any rank count), plus the
/// count-oblivious `"bine"` / `"binomial-dd"` / `"binomial-dh"` tree
/// gathers of the regular catalog with irregular sizing attached.
pub fn gatherv(p: usize, root: usize, counts: Counts, alg: IrregularAlg) -> Schedule {
    assert_eq!(counts.num_ranks(), p);
    match alg {
        IrregularAlg::Traff => {
            traff_gather_schedule(p, root, &counts, alg.name()).with_counts(counts)
        }
        IrregularAlg::Bine => gather(p, root, GatherAlg::Bine).with_counts(counts),
        IrregularAlg::BinomialDd => {
            gather(p, root, GatherAlg::BinomialDistanceDoubling).with_counts(counts)
        }
        IrregularAlg::Ring => panic!("ring is not a gatherv algorithm"),
    }
}

/// Irregular scatter: the mirror of [`gatherv`] — the root starts with
/// every segment and rank `i` ends up with its own.
pub fn scatterv(p: usize, root: usize, counts: Counts, alg: IrregularAlg) -> Schedule {
    assert_eq!(counts.num_ranks(), p);
    match alg {
        IrregularAlg::Traff => {
            let g = traff_gather_schedule(p, root, &counts, alg.name());
            time_reverse(g, Collective::Scatter).with_counts(counts)
        }
        IrregularAlg::Bine => scatter(p, root, ScatterAlg::Bine).with_counts(counts),
        IrregularAlg::BinomialDd => {
            scatter(p, root, ScatterAlg::BinomialDistanceDoubling).with_counts(counts)
        }
        IrregularAlg::Ring => panic!("ring is not a scatterv algorithm"),
    }
}

/// Irregular allgather: every rank ends up holding every rank's weighted
/// segment. Routing reuses the regular butterfly (`"bine"`, pow2 only) or
/// ring (`"ring"`, any rank count) allgather.
pub fn allgatherv(p: usize, counts: Counts, alg: IrregularAlg) -> Schedule {
    assert_eq!(counts.num_ranks(), p);
    match alg {
        IrregularAlg::Bine => allgather(p, AllgatherAlg::Bine).with_counts(counts),
        IrregularAlg::Ring => allgather(p, AllgatherAlg::Ring).with_counts(counts),
        other => panic!("{} is not an allgatherv algorithm", other.name()),
    }
}

/// Irregular reduce-scatter: rank `i` ends up with the reduction of the
/// `counts[i]`-weighted segment `i`.
pub fn reduce_scatterv(p: usize, counts: Counts, alg: IrregularAlg) -> Schedule {
    assert_eq!(counts.num_ranks(), p);
    match alg {
        IrregularAlg::Bine => {
            reduce_scatter(p, ReduceScatterAlg::Bine(crate::NonContigStrategy::Permute))
                .with_counts(counts)
        }
        IrregularAlg::Ring => reduce_scatter(p, ReduceScatterAlg::Ring).with_counts(counts),
        other => panic!("{} is not a reduce_scatterv algorithm", other.name()),
    }
}

/// Algorithm selector shared by the four v-variants. Not every algorithm
/// applies to every v-variant — see [`irregular_algorithms`] for the
/// catalog of valid combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrregularAlg {
    /// Träff-style count-aware tree (gatherv/scatterv, any rank count).
    Traff,
    /// The regular Bine routing with irregular sizing (pow2 rank counts).
    Bine,
    /// The regular distance-doubling binomial tree with irregular sizing
    /// (gatherv/scatterv, pow2 rank counts).
    BinomialDd,
    /// Ring routing with irregular sizing (allgatherv/reduce_scatterv, any
    /// rank count).
    Ring,
}

impl IrregularAlg {
    /// Harness name.
    pub fn name(&self) -> &'static str {
        match self {
            IrregularAlg::Traff => "traff",
            IrregularAlg::Bine => "bine",
            IrregularAlg::BinomialDd => "binomial-dd",
            IrregularAlg::Ring => "ring",
        }
    }

    /// Parses the harness name back into a selector.
    pub fn from_name(name: &str) -> Option<IrregularAlg> {
        [
            IrregularAlg::Traff,
            IrregularAlg::Bine,
            IrregularAlg::BinomialDd,
            IrregularAlg::Ring,
        ]
        .into_iter()
        .find(|a| a.name() == name)
    }
}

/// The v-variant algorithms competing for `collective`, in catalog order.
/// Empty for collectives without an irregular variant (the v-variants cover
/// gather, scatter, allgather and reduce-scatter).
pub fn irregular_algorithms(collective: Collective) -> Vec<IrregularAlg> {
    match collective {
        Collective::Gather | Collective::Scatter => vec![
            IrregularAlg::Traff,
            IrregularAlg::Bine,
            IrregularAlg::BinomialDd,
        ],
        Collective::Allgather | Collective::ReduceScatter => {
            vec![IrregularAlg::Bine, IrregularAlg::Ring]
        }
        _ => Vec::new(),
    }
}

/// Builds the irregular schedule for `collective` with algorithm `name`
/// (optionally `+segS`-suffixed for pipelining), or `None` for an unknown
/// or inapplicable algorithm name.
///
/// # Panics
/// Like the regular [`crate::build`], panics when the algorithm exists but
/// cannot be built at this rank count (e.g. a butterfly at non-pow2 `p`).
pub fn build_irregular(
    collective: Collective,
    name: &str,
    p: usize,
    root: usize,
    counts: &Counts,
) -> Option<Schedule> {
    let (base, segments) = crate::catalog::split_segments(name);
    let alg = IrregularAlg::from_name(base)?;
    if !irregular_algorithms(collective).contains(&alg) {
        return None;
    }
    let counts = counts.clone();
    let sched = match collective {
        Collective::Gather => gatherv(p, root, counts, alg),
        Collective::Scatter => scatterv(p, root, counts, alg),
        Collective::Allgather => allgatherv(p, counts, alg),
        Collective::ReduceScatter => reduce_scatterv(p, counts, alg),
        _ => return None,
    };
    Some(if segments > 1 {
        sched.segmented(segments)
    } else {
        sched
    })
}

/// The collectives that have v-variants, in [`Collective::ALL`] order.
pub const IRREGULAR_COLLECTIVES: [Collective; 4] = [
    Collective::Gather,
    Collective::Scatter,
    Collective::Allgather,
    Collective::ReduceScatter,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn some_counts(p: usize) -> Vec<Counts> {
        let mut mixed: Vec<u64> = (0..p as u64).map(|i| i % 3).collect();
        mixed[0] += 1; // keep the total non-zero even when every i % 3 == 0
        vec![
            Counts::new(vec![1; p]),
            Counts::new((1..=p as u64).collect()),
            SizeDist::OneHeavy.counts(p, 0),
            Counts::new(mixed),
        ]
    }

    #[test]
    fn traff_tree_places_heavy_ranks_near_the_root() {
        let p = 16;
        let counts = Counts::new((1..=p as u64).collect());
        let tree = TraffTree::new(p, 0, &counts);
        // Along every root-to-leaf path the counts are non-increasing.
        for r in 0..p {
            if let Some(parent) = tree.parent(r) {
                if parent != 0 {
                    assert!(
                        counts.count(parent) >= counts.count(r),
                        "parent {parent} lighter than child {r}"
                    );
                }
            }
        }
        // Every rank appears in the root's subtree exactly once.
        let segs: HashSet<u32> = tree.subtree_segments(0).iter().copied().collect();
        assert_eq!(segs.len(), p);
    }

    #[test]
    fn traff_gatherv_delivers_every_segment_to_the_root_at_any_rank_count() {
        for p in [2usize, 3, 5, 8, 12, 17, 32] {
            for counts in some_counts(p) {
                let root = p / 3;
                let sched = gatherv(p, root, counts, IrregularAlg::Traff);
                assert!(sched.validate().is_ok(), "p={p}");
                let mut held: Vec<HashSet<u32>> =
                    (0..p).map(|r| HashSet::from([r as u32])).collect();
                for step in &sched.steps {
                    let snap = held.clone();
                    for m in &step.messages {
                        for b in &m.blocks {
                            if let BlockId::Segment(i) = b {
                                assert!(snap[m.src].contains(i), "p={p}: sender misses block");
                                held[m.dst].insert(*i);
                            }
                        }
                    }
                }
                assert_eq!(held[root].len(), p, "p={p}");
            }
        }
    }

    #[test]
    fn traff_scatterv_delivers_each_rank_its_segment() {
        for p in [2usize, 6, 16, 23] {
            let counts = SizeDist::Linear.counts(p, 0);
            let sched = scatterv(p, p - 1, counts, IrregularAlg::Traff);
            assert!(sched.validate().is_ok(), "p={p}");
            let mut held: Vec<HashSet<u32>> = (0..p).map(|_| HashSet::new()).collect();
            held[p - 1] = (0..p as u32).collect();
            for step in &sched.steps {
                let snap = held.clone();
                for m in &step.messages {
                    for b in &m.blocks {
                        if let BlockId::Segment(i) = b {
                            assert!(snap[m.src].contains(i), "p={p}: sender misses block");
                            held[m.dst].insert(*i);
                        }
                    }
                }
            }
            for (r, set) in held.iter().enumerate() {
                assert!(
                    set.contains(&(r as u32)),
                    "p={p}: rank {r} missing its block"
                );
            }
        }
    }

    #[test]
    fn one_heavy_traff_gatherv_moves_almost_nothing() {
        // When the root already holds everything, every transfer is a
        // zero-count segment: total network bytes collapse to the max(1)
        // floors only... and with the heavy rank at the root, to zero-size
        // blocks entirely.
        let p = 16;
        let root = 4;
        let counts = SizeDist::OneHeavy.counts(p, root);
        let sched = gatherv(p, root, counts, IrregularAlg::Traff);
        assert_eq!(sched.total_network_bytes(1 << 20), 0);
    }

    #[test]
    fn equal_counts_reuse_the_regular_routing_with_identical_bytes() {
        let p = 16;
        let n = 1 << 20;
        let regular = gather(p, 0, GatherAlg::BinomialDistanceDoubling);
        let v = gatherv(p, 0, Counts::new(vec![7; p]), IrregularAlg::BinomialDd);
        assert_eq!(v.total_network_bytes(n), regular.total_network_bytes(n));
        assert_eq!(
            v.max_bytes_sent_by_rank(n),
            regular.max_bytes_sent_by_rank(n)
        );
    }

    #[test]
    fn build_irregular_honours_segment_suffixes_and_rejects_unknown_names() {
        let p = 8;
        let counts = Counts::new(vec![1; p]);
        let seg = build_irregular(Collective::Allgather, "ring+seg4", p, 0, &counts).unwrap();
        assert!(seg.algorithm.ends_with("+seg4"));
        assert!(seg.counts.is_some());
        assert!(build_irregular(Collective::Allgather, "traff", p, 0, &counts).is_none());
        assert!(build_irregular(Collective::Broadcast, "traff", p, 0, &counts).is_none());
        assert!(build_irregular(Collective::Gather, "nope", p, 0, &counts).is_none());
    }

    #[test]
    fn size_dist_round_trips_and_materialises() {
        for d in SizeDist::ALL {
            assert_eq!(SizeDist::from_name(d.name()), Some(d));
        }
        assert_eq!(SizeDist::Uniform.counts(4, 0).per_rank(), &[1, 1, 1, 1]);
        assert_eq!(SizeDist::Linear.counts(4, 0).per_rank(), &[1, 2, 3, 4]);
        assert_eq!(SizeDist::OneHeavy.counts(4, 2).per_rank(), &[0, 0, 1, 0]);
    }
}
