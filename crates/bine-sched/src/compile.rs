//! Lowering a [`Schedule`] into the dense form the executors run.
//!
//! A [`Schedule`] is optimised for inspection: every step holds a list of
//! [`crate::Message`]s whose blocks are symbolic [`BlockId`]s. Interpreting
//! that form over data is allocation- and hash-bound — every executor step
//! rescans the message list per rank and hashes `BlockId`s in its inner loop.
//!
//! [`CompiledSchedule`] is the execution form, resolved **once** per
//! schedule:
//!
//! * every `BlockId` is interned to a dense `u32` by a [`BlockInterner`]
//!   (flat `Vec`-backed, so executors index arrays instead of hashing),
//! * every message becomes a [`CompiledSend`] whose block list is a range in
//!   one flat index array,
//! * per step, the sends are grouped by source rank (CSR layout —
//!   [`CompiledSchedule::sends_from`]) and the *receive side* is a CSR list
//!   of send references per destination rank, in schedule order
//!   ([`CompiledSchedule::recvs_to`]), which is exactly the order the
//!   reference interpreter applies payloads in.
//!
//! The semantics are unchanged: compiling and executing a schedule is
//! bit-identical to interpreting it (cross-checked in `bine-exec`).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::schedule::{BlockId, Collective, Counts, Rank, Schedule, TransferKind};

/// Source of process-unique [`CompiledSchedule`] identities.
static NEXT_IDENTITY: AtomicU64 = AtomicU64::new(0);

/// Dense interning of the [`BlockId`]s referenced by one schedule.
///
/// Index 0..len map 1:1 onto the distinct blocks, in first-appearance order.
#[derive(Debug, Clone, Default)]
pub struct BlockInterner {
    ids: Vec<BlockId>,
    lookup: HashMap<BlockId, u32>,
}

impl BlockInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense index of `id`, interning it on first sight.
    pub fn intern(&mut self, id: BlockId) -> u32 {
        if let Some(&idx) = self.lookup.get(&id) {
            return idx;
        }
        let idx = u32::try_from(self.ids.len()).expect("more than u32::MAX distinct blocks");
        self.ids.push(id);
        self.lookup.insert(id, idx);
        idx
    }

    /// Returns the dense index of `id` if it was interned.
    pub fn index_of(&self, id: &BlockId) -> Option<u32> {
        self.lookup.get(id).copied()
    }

    /// Returns the block behind a dense index.
    pub fn resolve(&self, index: u32) -> BlockId {
        self.ids[index as usize]
    }

    /// Number of distinct interned blocks.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over `(dense index, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, BlockId)> + '_ {
        self.ids.iter().enumerate().map(|(i, &b)| (i as u32, b))
    }
}

/// One message of one step, in execution form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledSend {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Copy or reduce semantics at the receiver.
    pub kind: TransferKind,
    /// Number of contiguous memory regions of the originating message
    /// (carried through for cost/simulation models; executors ignore it).
    pub segments: u32,
    /// Start of this send's block list in [`CompiledSchedule::block_index_slice`].
    pub blocks_start: u32,
    /// End (exclusive) of this send's block list.
    pub blocks_end: u32,
    /// Position of the originating message within its step — the order the
    /// reference interpreter applies payloads in, preserved per receiver.
    pub order: u32,
}

impl CompiledSend {
    /// Number of blocks this send carries.
    pub fn num_blocks(&self) -> usize {
        (self.blocks_end - self.blocks_start) as usize
    }

    /// Whether this send is a local (intra-rank) buffer move.
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

/// The execution form of a [`Schedule`]. Build with
/// [`CompiledSchedule::compile`] (or [`Schedule::compile`]).
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// Number of participating ranks.
    pub num_ranks: usize,
    /// The collective the schedule implements.
    pub collective: Collective,
    /// Root rank for rooted collectives, 0 otherwise.
    pub root: Rank,
    /// Human-readable algorithm name, carried over from the schedule.
    pub algorithm: String,
    /// Process-unique identity (see [`CompiledSchedule::identity`]).
    identity: u64,
    num_steps: usize,
    blocks: BlockInterner,
    /// All sends, grouped by step, within a step sorted by source rank
    /// (stable, so `order` stays ascending per source).
    sends: Vec<CompiledSend>,
    /// Concatenated per-send dense block lists.
    block_indices: Vec<u32>,
    /// Per step: range into `sends`. Length `num_steps + 1`.
    step_offsets: Vec<u32>,
    /// Per step, per source rank: range into `sends` (CSR over the step's
    /// src-sorted sends). Length `num_steps * (num_ranks + 1)`.
    send_offsets: Vec<u32>,
    /// Send indices sorted by (step, destination rank, schedule order).
    recv_lists: Vec<u32>,
    /// Per step, per destination rank: range into `recv_lists`.
    /// Length `num_steps * (num_ranks + 1)`.
    recv_offsets: Vec<u32>,
    /// Irregular per-rank counts, carried over from the schedule (`None`
    /// for regular collectives). Byte-resolving consumers (cost model, DES)
    /// must go through [`CompiledSchedule::block_bytes`].
    counts: Option<Counts>,
}

impl CompiledSchedule {
    /// Lowers `schedule` into execution form.
    pub fn compile(schedule: &Schedule) -> Self {
        let p = schedule.num_ranks;
        let num_steps = schedule.steps.len();
        let mut blocks = BlockInterner::new();
        let mut sends: Vec<CompiledSend> = Vec::new();
        let mut block_indices: Vec<u32> = Vec::new();
        let mut step_offsets: Vec<u32> = Vec::with_capacity(num_steps + 1);
        let mut send_offsets: Vec<u32> = Vec::with_capacity(num_steps * (p + 1));
        let mut recv_lists: Vec<u32> = Vec::new();
        let mut recv_offsets: Vec<u32> = Vec::with_capacity(num_steps * (p + 1));

        step_offsets.push(0);
        for step in &schedule.steps {
            let step_base = sends.len();
            for (order, m) in step.messages.iter().enumerate() {
                let blocks_start = block_indices.len() as u32;
                block_indices.extend(m.blocks.iter().map(|b| blocks.intern(*b)));
                sends.push(CompiledSend {
                    src: m.src as u32,
                    dst: m.dst as u32,
                    kind: m.kind,
                    segments: m.segments,
                    blocks_start,
                    blocks_end: block_indices.len() as u32,
                    order: order as u32,
                });
            }
            // Group the step's sends by source (stable → `order` ascending
            // within a source) and CSR-index them.
            sends[step_base..].sort_by_key(|s| (s.src, s.order));
            let step_sends = &sends[step_base..];
            let mut cursor = 0usize;
            for src in 0..p as u32 {
                send_offsets.push((step_base + cursor) as u32);
                while cursor < step_sends.len() && step_sends[cursor].src == src {
                    cursor += 1;
                }
            }
            send_offsets.push(sends.len() as u32);

            // Receive side: send indices per destination, in schedule order.
            let mut by_dst: Vec<u32> = (step_base as u32..sends.len() as u32).collect();
            by_dst.sort_by_key(|&i| (sends[i as usize].dst, sends[i as usize].order));
            let mut cursor = 0usize;
            for dst in 0..p as u32 {
                recv_offsets.push((recv_lists.len() + cursor) as u32);
                while cursor < by_dst.len() && sends[by_dst[cursor] as usize].dst == dst {
                    cursor += 1;
                }
            }
            let base = recv_lists.len();
            recv_offsets.push((base + by_dst.len()) as u32);
            recv_lists.extend(by_dst);

            step_offsets.push(sends.len() as u32);
        }

        Self {
            num_ranks: p,
            collective: schedule.collective,
            root: schedule.root,
            algorithm: schedule.algorithm.clone(),
            identity: NEXT_IDENTITY.fetch_add(1, Ordering::Relaxed),
            num_steps,
            blocks,
            sends,
            block_indices,
            step_offsets,
            send_offsets,
            recv_lists,
            recv_offsets,
            counts: schedule.counts.clone(),
        }
    }

    /// A process-unique identity assigned at [`CompiledSchedule::compile`]
    /// time. Clones share the identity of their original — their contents
    /// are indistinguishable — so consumers that derive data from a compiled
    /// schedule (e.g. the route/dependency cache of `bine_net::sim`) can use
    /// it as a cache key without hashing the schedule itself.
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// Number of synchronous steps.
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }

    /// The dense block interning.
    pub fn blocks(&self) -> &BlockInterner {
        &self.blocks
    }

    /// Irregular per-rank counts, if the originating schedule had any.
    pub fn counts(&self) -> Option<&Counts> {
        self.counts.as_ref()
    }

    /// Size of block `b` in bytes for vector size `n`, honouring the
    /// irregular per-rank counts when present (the compiled-side twin of
    /// [`Schedule::block_bytes`]).
    pub fn block_bytes(&self, b: BlockId, n: u64) -> u64 {
        match (&self.counts, b) {
            (Some(c), BlockId::Segment(i)) => c.segment_bytes(i, n),
            _ => b.bytes(n, self.num_ranks),
        }
    }

    /// Number of distinct blocks referenced anywhere in the schedule.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of sends over all steps.
    pub fn num_sends(&self) -> usize {
        self.sends.len()
    }

    /// All sends of one step, sorted by source rank.
    pub fn step_sends(&self, step: usize) -> &[CompiledSend] {
        let lo = self.step_offsets[step] as usize;
        let hi = self.step_offsets[step + 1] as usize;
        &self.sends[lo..hi]
    }

    /// The range of global send indices belonging to `step`.
    pub fn step_send_range(&self, step: usize) -> Range<usize> {
        self.step_offsets[step] as usize..self.step_offsets[step + 1] as usize
    }

    /// The send with global index `index`.
    pub fn send(&self, index: usize) -> &CompiledSend {
        &self.sends[index]
    }

    /// The sends issued by `rank` in `step` (pre-resolved; no scan).
    pub fn sends_from(&self, step: usize, rank: usize) -> &[CompiledSend] {
        let row = step * (self.num_ranks + 1) + rank;
        let lo = self.send_offsets[row] as usize;
        let hi = self.send_offsets[row + 1] as usize;
        &self.sends[lo..hi]
    }

    /// Global send indices targeting `rank` in `step`, in schedule order —
    /// the exact order the reference interpreter applies payloads in.
    pub fn recvs_to(&self, step: usize, rank: usize) -> &[u32] {
        let row = step * (self.num_ranks + 1) + rank;
        let lo = self.recv_offsets[row] as usize;
        let hi = self.recv_offsets[row + 1] as usize;
        &self.recv_lists[lo..hi]
    }

    /// The dense block indices carried by `send`.
    pub fn block_index_slice(&self, send: &CompiledSend) -> &[u32] {
        &self.block_indices[send.blocks_start as usize..send.blocks_end as usize]
    }

    /// Total number of block payloads moved in `step` (the staging-buffer
    /// size an executor needs for the step).
    pub fn step_payload_count(&self, step: usize) -> usize {
        self.step_sends(step).iter().map(|s| s.num_blocks()).sum()
    }
}

impl Schedule {
    /// Lowers this schedule into execution form (see [`CompiledSchedule`]).
    pub fn compile(&self) -> CompiledSchedule {
        CompiledSchedule::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{
        allreduce, alltoall, broadcast, AllreduceAlg, AlltoallAlg, BroadcastAlg,
    };
    use crate::schedule::Message;

    fn schedules_under_test() -> Vec<Schedule> {
        vec![
            broadcast(16, 3, BroadcastAlg::BineTree),
            broadcast(16, 0, BroadcastAlg::BineScatterAllgather),
            allreduce(32, AllreduceAlg::BineLarge),
            allreduce(32, AllreduceAlg::Ring),
            alltoall(8, AlltoallAlg::Bine),
        ]
    }

    #[test]
    fn interner_is_a_bijection_in_first_appearance_order() {
        let mut interner = BlockInterner::new();
        assert_eq!(interner.intern(BlockId::Full), 0);
        assert_eq!(interner.intern(BlockId::Segment(4)), 1);
        assert_eq!(interner.intern(BlockId::Full), 0);
        assert_eq!(interner.index_of(&BlockId::Segment(4)), Some(1));
        assert_eq!(interner.index_of(&BlockId::Segment(5)), None);
        assert_eq!(interner.resolve(1), BlockId::Segment(4));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn compiled_sends_cover_every_message_block_exactly_once() {
        for sched in schedules_under_test() {
            let compiled = sched.compile();
            assert_eq!(compiled.num_steps(), sched.num_steps());
            for (step_idx, step) in sched.steps.iter().enumerate() {
                let total_blocks: usize = step.messages.iter().map(|m| m.blocks.len()).sum();
                let compiled_blocks: usize = compiled
                    .step_sends(step_idx)
                    .iter()
                    .map(|s| s.num_blocks())
                    .sum();
                assert_eq!(
                    compiled_blocks, total_blocks,
                    "{} step {step_idx}",
                    sched.algorithm
                );
                assert_eq!(compiled.step_payload_count(step_idx), total_blocks);
            }
        }
    }

    #[test]
    fn per_rank_send_lists_match_a_message_scan() {
        for sched in schedules_under_test() {
            let compiled = sched.compile();
            for (step_idx, step) in sched.steps.iter().enumerate() {
                for rank in 0..sched.num_ranks {
                    let scanned: Vec<&Message> =
                        step.messages.iter().filter(|m| m.src == rank).collect();
                    let resolved = compiled.sends_from(step_idx, rank);
                    assert_eq!(resolved.len(), scanned.len());
                    for (send, msg) in resolved.iter().zip(&scanned) {
                        assert_eq!(send.dst as usize, msg.dst);
                        assert_eq!(send.kind, msg.kind);
                        let blocks: Vec<BlockId> = compiled
                            .block_index_slice(send)
                            .iter()
                            .map(|&i| compiled.blocks().resolve(i))
                            .collect();
                        assert_eq!(blocks, msg.blocks);
                    }
                }
            }
        }
    }

    #[test]
    fn recv_lists_preserve_schedule_order_per_destination() {
        for sched in schedules_under_test() {
            let compiled = sched.compile();
            for (step_idx, step) in sched.steps.iter().enumerate() {
                for rank in 0..sched.num_ranks {
                    let scanned: Vec<&Message> =
                        step.messages.iter().filter(|m| m.dst == rank).collect();
                    let resolved = compiled.recvs_to(step_idx, rank);
                    assert_eq!(resolved.len(), scanned.len());
                    let mut last_order = None;
                    for (&send_idx, msg) in resolved.iter().zip(&scanned) {
                        let send = compiled.send(send_idx as usize);
                        assert_eq!(send.src as usize, msg.src);
                        assert!(last_order < Some(send.order), "schedule order violated");
                        last_order = Some(send.order);
                    }
                }
            }
        }
    }

    #[test]
    fn identities_are_unique_per_compile_and_shared_by_clones() {
        let sched = allreduce(8, AllreduceAlg::RecursiveDoubling);
        let a = sched.compile();
        let b = sched.compile();
        assert_ne!(a.identity(), b.identity());
        assert_eq!(a.identity(), a.clone().identity());
    }

    #[test]
    fn interning_is_dense_over_referenced_blocks() {
        let sched = allreduce(64, AllreduceAlg::BineLarge);
        let compiled = sched.compile();
        // A segment-based allreduce references exactly the p segments.
        assert_eq!(compiled.num_blocks(), 64);
        let mut seen = vec![false; compiled.num_blocks()];
        for (idx, _) in compiled.blocks().iter() {
            seen[idx as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
