//! Schedule segmentation: the pipelining transform.
//!
//! MPI libraries pipeline large collectives by splitting each transfer into
//! fixed-size segments so that a rank can forward segment *c* while segment
//! *c + 1* is still arriving (Barchet-Estefanel & Mounié's tuned
//! intra-cluster collectives; Karonis et al.'s multilevel collectives). The
//! synchronous cost model cannot see that overlap — only the discrete-event
//! simulator in `bine-net` can — but the *schedule transform* lives here,
//! next to the generators it rewrites.
//!
//! [`segment_schedule`] splits every message's block list into at most `S`
//! contiguous chunks and expands each synchronous step into up to `S`
//! sub-steps: chunk `c` of every message of the original step travels in
//! sub-step `c`. Because every block is carried by exactly one chunk, each
//! block still experiences exactly the same sequence of transfers and
//! reductions in the same order, so a segmented schedule executes
//! **bit-identically** to the original on every `bine-exec` executor (this
//! is property-tested there), and its `bine-net` traffic accounting is
//! invariant apart from the message count:
//!
//! * total / global / per-link bytes are unchanged (blocks are partitioned,
//!   never duplicated),
//! * the number of network messages grows, which is exactly the latency
//!   price of pipelining that shifts algorithm crossover points.
//!
//! Messages carrying a single block (for example the `Full`-vector messages
//! of tree broadcasts and recursive-doubling allreduce) cannot be split at
//! block granularity and pass through unchanged — those algorithms genuinely
//! do not pipeline in this model, which is what makes the segmented-vs-flat
//! comparison in `bine-bench` interesting.

use crate::schedule::{contiguity_of, Message, Schedule, Step};

/// Splits `blocks`-many items into at most `chunks` contiguous, balanced
/// parts, returning the part boundaries (`parts[i]..parts[i + 1]`).
fn chunk_bounds(blocks: usize, chunks: usize) -> Vec<usize> {
    let parts = chunks.min(blocks).max(1);
    let base = blocks / parts;
    let rem = blocks % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    let mut at = 0;
    bounds.push(0);
    for i in 0..parts {
        at += base + usize::from(i < rem);
        bounds.push(at);
    }
    bounds
}

/// Splits `schedule` into `chunks` pipeline segments (see the module docs).
///
/// `chunks == 1` returns the schedule unchanged (same algorithm name); for
/// `chunks > 1` the algorithm name gains a `+seg{chunks}` suffix so that
/// segmented variants remain distinguishable in catalogs and reports.
///
/// # Panics
/// Panics if `chunks == 0`.
pub fn segment_schedule(schedule: &Schedule, chunks: usize) -> Schedule {
    assert!(chunks >= 1, "a schedule needs at least one segment");
    if chunks == 1 {
        return schedule.clone();
    }
    let p = schedule.num_ranks;
    let mut out = Schedule::new(
        p,
        schedule.collective,
        format!("{}+seg{chunks}", schedule.algorithm),
        schedule.root,
    );
    out.counts = schedule.counts.clone();
    for step in &schedule.steps {
        let mut substeps: Vec<Step> = (0..chunks).map(|_| Step::new()).collect();
        for m in &step.messages {
            let bounds = chunk_bounds(m.blocks.len(), chunks);
            if bounds.len() == 2 {
                // Unsplittable (or single-chunk) message: travels whole, in
                // the first sub-step, with its original segment count.
                substeps[0].push(m.clone());
                continue;
            }
            // The non-contiguity strategies annotate messages with an
            // explicit segment count that deliberately differs from the
            // block-index contiguity (e.g. a virtually permuted buffer is
            // one region regardless of the indices it carries). Preserve
            // that: recompute contiguity per chunk only when the original
            // annotation was the computed one, otherwise distribute the
            // annotated regions proportionally over the chunks.
            let computed = contiguity_of(&m.blocks, p);
            for (c, w) in bounds.windows(2).enumerate() {
                let part = m.blocks[w[0]..w[1]].to_vec();
                let msg = if m.segments == computed {
                    Message::new(m.src, m.dst, part, m.kind, p)
                } else {
                    let share = (m.segments as u64 * (w[1] - w[0]) as u64)
                        .div_ceil(m.blocks.len() as u64)
                        .max(1) as u32;
                    Message::with_segments(m.src, m.dst, part, m.kind, share)
                };
                substeps[c].push(msg);
            }
        }
        for sub in substeps {
            if !sub.is_empty() {
                out.push_step(sub);
            }
        }
    }
    out
}

impl Schedule {
    /// Returns this schedule split into `chunks` pipeline segments (see
    /// [`segment_schedule`]).
    pub fn segmented(&self, chunks: usize) -> Schedule {
        segment_schedule(self, chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{
        allreduce, alltoall, broadcast, AllreduceAlg, AlltoallAlg, BroadcastAlg,
    };

    #[test]
    fn chunk_bounds_are_balanced_and_cover() {
        assert_eq!(chunk_bounds(8, 4), vec![0, 2, 4, 6, 8]);
        assert_eq!(chunk_bounds(7, 4), vec![0, 2, 4, 6, 7]);
        assert_eq!(chunk_bounds(2, 4), vec![0, 1, 2]);
        assert_eq!(chunk_bounds(1, 4), vec![0, 1]);
    }

    #[test]
    fn single_chunk_is_identity() {
        let sched = allreduce(16, AllreduceAlg::BineLarge);
        let seg = sched.segmented(1);
        assert_eq!(seg.num_steps(), sched.num_steps());
        assert_eq!(seg.algorithm, sched.algorithm);
    }

    #[test]
    fn segmentation_preserves_bytes_and_grows_messages() {
        let sched = allreduce(32, AllreduceAlg::BineLarge);
        let n = 1 << 20;
        for chunks in [2usize, 4, 8] {
            let seg = sched.segmented(chunks);
            assert!(seg.validate().is_ok(), "chunks={chunks}");
            assert_eq!(seg.total_network_bytes(n), sched.total_network_bytes(n));
            assert!(seg.messages().count() > sched.messages().count());
            assert!(seg.num_steps() > sched.num_steps());
            assert_eq!(seg.algorithm, format!("bine-large+seg{chunks}"));
        }
    }

    #[test]
    fn explicit_segment_annotations_are_preserved_proportionally() {
        use crate::catalog::build;
        use crate::schedule::Collective;
        // "bine-send" virtually permutes the buffer: every message is
        // annotated as one contiguous region, and so must its chunks be.
        let send = build(Collective::ReduceScatter, "bine-send", 16, 0).unwrap();
        let seg = send.segmented(4);
        for (_, m) in seg.messages() {
            assert_eq!(m.segments, 1, "chunk of a permuted-buffer message");
        }
        // "bine-block-by-block" sends every block as its own region: a chunk
        // carrying k blocks is k regions.
        let bbb = build(Collective::ReduceScatter, "bine-block-by-block", 16, 0).unwrap();
        let seg = bbb.segmented(4);
        for (_, m) in seg.messages() {
            assert_eq!(
                m.segments,
                m.blocks.len() as u32,
                "block-by-block chunks stay one region per block"
            );
        }
    }

    #[test]
    fn full_vector_messages_are_unsplittable() {
        let sched = broadcast(16, 0, BroadcastAlg::BinomialDistanceDoubling);
        let seg = sched.segmented(8);
        assert_eq!(seg.num_steps(), sched.num_steps());
        assert_eq!(seg.messages().count(), sched.messages().count());
    }

    #[test]
    fn per_destination_block_order_is_preserved() {
        // Every (dst, block) pair must see its incoming transfers in the
        // same relative order as in the unsegmented schedule; with one
        // network receive per rank per step this reduces to each block being
        // carried exactly once per original step.
        let sched = alltoall(8, AlltoallAlg::Bine);
        let seg = sched.segmented(3);
        let per_pair = |s: &crate::Schedule| {
            let mut map: std::collections::BTreeMap<(usize, usize), Vec<crate::BlockId>> =
                Default::default();
            for (_, m) in s.messages() {
                map.entry((m.src, m.dst)).or_default().extend(&m.blocks);
            }
            map
        };
        assert_eq!(
            per_pair(&sched),
            per_pair(&seg),
            "per-(src, dst) block order must be preserved"
        );
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_chunks_is_rejected() {
        let sched = allreduce(8, AllreduceAlg::BineLarge);
        let _ = sched.segmented(0);
    }
}
