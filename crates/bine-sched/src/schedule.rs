//! The communication-schedule model.
//!
//! A [`Schedule`] is the step-by-step description of a collective operation:
//! which rank sends which data blocks to which rank at every synchronous
//! step, and whether the receiver copies or reduces the payload. Schedules
//! are produced by the generators in [`crate::collectives`], executed over
//! real data by `bine-exec`, and mapped onto network models by `bine-net`.
//!
//! Keeping the schedule explicit — rather than hiding it inside an MPI
//! library — is what lets this reproduction count global-link traffic and
//! model runtime for every algorithm on every topology with a single code
//! path.

use std::sync::Arc;

use bine_core::block::linear_segments;

/// A rank identifier.
pub type Rank = usize;

/// The collective operation a schedule implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// MPI_Bcast: the root's vector ends up on every rank.
    Broadcast,
    /// MPI_Reduce: the elementwise reduction of all vectors ends up on the root.
    Reduce,
    /// MPI_Gather: block `r` of every rank `r` ends up on the root.
    Gather,
    /// MPI_Scatter: the root's block `r` ends up on rank `r`.
    Scatter,
    /// MPI_Allgather: block `r` of every rank ends up on every rank.
    Allgather,
    /// MPI_Reduce_scatter: rank `r` ends up with the reduction of block `r`.
    ReduceScatter,
    /// MPI_Allreduce: every rank ends up with the reduction of all vectors.
    Allreduce,
    /// MPI_Alltoall: rank `r` ends up with block `(i, r)` from every rank `i`.
    Alltoall,
}

impl Collective {
    /// All eight collectives implemented in this crate.
    pub const ALL: [Collective; 8] = [
        Collective::Broadcast,
        Collective::Reduce,
        Collective::Gather,
        Collective::Scatter,
        Collective::Allgather,
        Collective::ReduceScatter,
        Collective::Allreduce,
        Collective::Alltoall,
    ];

    /// Lower-case name as used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            Collective::Broadcast => "bcast",
            Collective::Reduce => "reduce",
            Collective::Gather => "gather",
            Collective::Scatter => "scatter",
            Collective::Allgather => "allgather",
            Collective::ReduceScatter => "reduce-scatter",
            Collective::Allreduce => "allreduce",
            Collective::Alltoall => "alltoall",
        }
    }

    /// Parses the lower-case harness name back into a collective (the
    /// inverse of [`Collective::name`], used when loading decision tables).
    pub fn from_name(name: &str) -> Option<Collective> {
        Collective::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Whether the collective has a root rank.
    pub fn is_rooted(&self) -> bool {
        matches!(
            self,
            Collective::Broadcast | Collective::Reduce | Collective::Gather | Collective::Scatter
        )
    }
}

/// Identifies a unit of data carried by a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockId {
    /// The whole vector (`n` bytes). Used by broadcast, reduce and the
    /// small-vector (recursive-doubling) allreduce.
    Full,
    /// The `i`-th of `p` equal segments of the vector (`n / p` bytes).
    Segment(u32),
    /// The alltoall block travelling from rank `origin` to rank `dest`
    /// (`n / p` bytes, where `n` is the per-rank send buffer).
    Pairwise {
        /// Rank whose send buffer the block comes from.
        origin: u32,
        /// Rank whose receive buffer the block must end up in.
        dest: u32,
    },
}

impl BlockId {
    /// Size of this block in bytes for a collective over `p` ranks operating
    /// on vectors of `n` bytes.
    ///
    /// Segments round **up** (`ceil(n / p)`): for non-divisible vector sizes
    /// the last segment is short, but every transfer of the other `p − 1`
    /// segments really carries `ceil(n / p)` bytes, so rounding down would
    /// systematically undercount modelled traffic.
    pub fn bytes(&self, n: u64, p: usize) -> u64 {
        match self {
            BlockId::Full => n,
            BlockId::Segment(_) | BlockId::Pairwise { .. } => n.div_ceil(p as u64).max(1),
        }
    }
}

/// Per-rank element counts of an irregular (v-variant) collective.
///
/// Regular collectives split the `n`-byte vector into `p` equal segments;
/// the v-variants (`gatherv`, `scatterv`, `allgatherv`, `reduce_scatterv`)
/// instead let rank `i` own a share proportional to `counts[i]`. The counts
/// are dimensionless weights: segment `i` of an `n`-byte operation carries
/// `ceil(n · cᵢ / Σc)` bytes (zero when `cᵢ = 0`), which degenerates
/// *bit-exactly* to the regular `ceil(n / p)` sizing when all counts are
/// equal — the equivalence the irregular regression tests pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counts {
    per_rank: Arc<Vec<u64>>,
    total: u64,
}

impl Counts {
    /// Creates a count vector.
    ///
    /// # Panics
    /// Panics on an empty vector or when every count is zero (an operation
    /// moving no data has no meaningful schedule).
    pub fn new(per_rank: Vec<u64>) -> Self {
        assert!(!per_rank.is_empty(), "counts must cover at least one rank");
        let total: u64 = per_rank.iter().sum();
        assert!(total > 0, "at least one rank must contribute data");
        Self {
            per_rank: Arc::new(per_rank),
            total,
        }
    }

    /// Number of ranks covered.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// The count of rank `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.per_rank[i]
    }

    /// The per-rank counts.
    pub fn per_rank(&self) -> &[u64] {
        &self.per_rank
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether every rank has the same count (the regular special case).
    pub fn is_uniform(&self) -> bool {
        self.per_rank.iter().all(|&c| c == self.per_rank[0])
    }

    /// Bytes of segment `i` when the whole operation moves `n` bytes:
    /// `0` for a zero-count rank, otherwise `max(1, ceil(n · cᵢ / Σc))`.
    pub fn segment_bytes(&self, i: u32, n: u64) -> u64 {
        Counts::share_bytes(self.per_rank[i as usize], self.total, n)
    }

    /// The [`Counts::segment_bytes`] formula on raw values, for callers that
    /// cache `(count, total)` pairs away from the `Counts` itself (the cost
    /// summaries of `bine-net`). The product is taken in `u128` so huge
    /// vectors times huge counts cannot overflow.
    pub fn share_bytes(count: u64, total: u64, n: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let share = ((n as u128) * (count as u128)).div_ceil(total as u128) as u64;
        share.max(1)
    }
}

/// What the receiver does with an incoming payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Store the received blocks (broadcast/gather/scatter/allgather/alltoall).
    Copy,
    /// Combine the received blocks elementwise with the local partial result
    /// (reduce/reduce-scatter/allreduce).
    Reduce,
}

/// A point-to-point transfer within one step of a schedule.
///
/// A message with `src == dst` models a local buffer reorganisation (e.g.
/// the block permutation of the `permute` strategy); it moves no bytes over
/// the network but is charged a memory-copy cost by the cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Blocks carried by the message.
    pub blocks: Vec<BlockId>,
    /// Copy or reduce semantics at the receiver.
    pub kind: TransferKind,
    /// Number of contiguous memory regions the sender must touch to build
    /// this message (1 = a single contiguous send). Used by the cost model
    /// to charge the overhead the paper discusses in Sec. 4.3.1.
    pub segments: u32,
}

impl Message {
    /// Creates a message, computing the contiguous-segment count from the
    /// block indices (segments are assumed to be laid out in index order).
    pub fn new(src: Rank, dst: Rank, blocks: Vec<BlockId>, kind: TransferKind, p: usize) -> Self {
        let segs = contiguity_of(&blocks, p);
        Self {
            src,
            dst,
            blocks,
            kind,
            segments: segs,
        }
    }

    /// Creates a message with an explicitly provided segment count (used by
    /// the non-contiguous-data strategies that reorganise the buffer).
    pub fn with_segments(
        src: Rank,
        dst: Rank,
        blocks: Vec<BlockId>,
        kind: TransferKind,
        segments: u32,
    ) -> Self {
        Self {
            src,
            dst,
            blocks,
            kind,
            segments,
        }
    }

    /// Total payload bytes for vector size `n` over `p` ranks.
    pub fn bytes(&self, n: u64, p: usize) -> u64 {
        self.blocks.iter().map(|b| b.bytes(n, p)).sum()
    }

    /// Whether this message is a local (intra-rank) buffer move.
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

/// Number of contiguous memory regions spanned by a set of blocks, assuming
/// blocks are laid out in index order in the buffer.
pub fn contiguity_of(blocks: &[BlockId], p: usize) -> u32 {
    let mut idx: Vec<u32> = blocks
        .iter()
        .filter_map(|b| match b {
            BlockId::Segment(i) => Some(*i),
            BlockId::Pairwise { dest, .. } => Some(*dest),
            BlockId::Full => None,
        })
        .collect();
    if idx.is_empty() {
        return 1;
    }
    idx.sort_unstable();
    idx.dedup();
    linear_segments(&idx, p) as u32
}

/// One synchronous step of a schedule: all messages in a step are considered
/// to be in flight at the same time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Step {
    /// The messages exchanged in this step.
    pub messages: Vec<Message>,
}

impl Step {
    /// Creates an empty step.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a message to the step.
    pub fn push(&mut self, m: Message) {
        self.messages.push(m);
    }

    /// Whether the step contains no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// A complete communication schedule for one collective invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of participating ranks.
    pub num_ranks: usize,
    /// The collective this schedule implements.
    pub collective: Collective,
    /// Human-readable algorithm name (e.g. `"bine-dh-tree"`).
    pub algorithm: String,
    /// Root rank for rooted collectives, 0 otherwise.
    pub root: Rank,
    /// The synchronous steps, in execution order.
    pub steps: Vec<Step>,
    /// Per-rank element counts for irregular (v-variant) schedules; `None`
    /// for the regular collectives. When set, [`BlockId::Segment`] blocks
    /// are sized by [`Counts::segment_bytes`] instead of the uniform
    /// `ceil(n / p)` split — resolve bytes through
    /// [`Schedule::block_bytes`] / [`Schedule::message_bytes`].
    pub counts: Option<Counts>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new(
        num_ranks: usize,
        collective: Collective,
        algorithm: impl Into<String>,
        root: Rank,
    ) -> Self {
        Self {
            num_ranks,
            collective,
            algorithm: algorithm.into(),
            root,
            steps: Vec::new(),
            counts: None,
        }
    }

    /// Attaches per-rank counts, turning this into an irregular schedule.
    ///
    /// # Panics
    /// Panics if the count vector does not cover exactly `num_ranks` ranks.
    pub fn with_counts(mut self, counts: Counts) -> Self {
        assert_eq!(
            counts.num_ranks(),
            self.num_ranks,
            "counts must cover every rank of the schedule"
        );
        self.counts = Some(counts);
        self
    }

    /// Size of block `b` in bytes for vector size `n`, honouring the
    /// irregular per-rank counts when present.
    pub fn block_bytes(&self, b: BlockId, n: u64) -> u64 {
        match (&self.counts, b) {
            (Some(c), BlockId::Segment(i)) => c.segment_bytes(i, n),
            _ => b.bytes(n, self.num_ranks),
        }
    }

    /// Total payload bytes of message `m` for vector size `n`, honouring
    /// the irregular per-rank counts when present.
    pub fn message_bytes(&self, m: &Message, n: u64) -> u64 {
        match &self.counts {
            None => m.bytes(n, self.num_ranks),
            Some(_) => m.blocks.iter().map(|&b| self.block_bytes(b, n)).sum(),
        }
    }

    /// Appends a step.
    pub fn push_step(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Iterates over every message of every step, annotated with its step
    /// index.
    pub fn messages(&self) -> impl Iterator<Item = (usize, &Message)> {
        self.steps
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.messages.iter().map(move |m| (i, m)))
    }

    /// Total bytes moved over the network (local messages excluded) for
    /// vector size `n`.
    pub fn total_network_bytes(&self, n: u64) -> u64 {
        self.messages()
            .filter(|(_, m)| !m.is_local())
            .map(|(_, m)| self.message_bytes(m, n))
            .sum()
    }

    /// Largest number of bytes any single rank sends over the whole schedule
    /// (a proxy for the per-rank bandwidth term of the alpha–beta model).
    pub fn max_bytes_sent_by_rank(&self, n: u64) -> u64 {
        let mut per_rank = vec![0u64; self.num_ranks];
        for (_, m) in self.messages() {
            if !m.is_local() {
                per_rank[m.src] += self.message_bytes(m, n);
            }
        }
        per_rank.into_iter().max().unwrap_or(0)
    }

    /// Largest number of bytes any single rank receives over the whole
    /// schedule (the bottleneck for reduction-heavy collectives, where every
    /// received byte must also be combined locally).
    pub fn max_bytes_received_by_rank(&self, n: u64) -> u64 {
        let mut per_rank = vec![0u64; self.num_ranks];
        for (_, m) in self.messages() {
            if !m.is_local() {
                per_rank[m.dst] += self.message_bytes(m, n);
            }
        }
        per_rank.into_iter().max().unwrap_or(0)
    }

    /// Appends all steps of another schedule (used to compose e.g.
    /// reduce-scatter + allgather into an allreduce).
    pub fn extend_with(&mut self, other: Schedule) {
        self.steps.extend(other.steps);
    }

    /// Basic structural validation: ranks in range, no rank appears as the
    /// source or destination of two different network messages within the
    /// same step (single-ported model), and no empty messages.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(c) = &self.counts {
            if c.num_ranks() != self.num_ranks {
                return Err(format!(
                    "counts cover {} ranks but the schedule has {}",
                    c.num_ranks(),
                    self.num_ranks
                ));
            }
        }
        for (i, step) in self.steps.iter().enumerate() {
            let mut sending = vec![false; self.num_ranks];
            let mut receiving = vec![false; self.num_ranks];
            for m in &step.messages {
                if m.src >= self.num_ranks || m.dst >= self.num_ranks {
                    return Err(format!("step {i}: rank out of range in {m:?}"));
                }
                if m.blocks.is_empty() {
                    return Err(format!("step {i}: empty message {m:?}"));
                }
                if m.is_local() {
                    continue;
                }
                if sending[m.src] {
                    return Err(format!("step {i}: rank {} sends twice", m.src));
                }
                if receiving[m.dst] {
                    return Err(format!("step {i}: rank {} receives twice", m.dst));
                }
                sending[m.src] = true;
                receiving[m.dst] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes() {
        assert_eq!(BlockId::Full.bytes(1024, 8), 1024);
        assert_eq!(BlockId::Segment(3).bytes(1024, 8), 128);
        assert_eq!(BlockId::Pairwise { origin: 0, dest: 1 }.bytes(1024, 8), 128);
        // Tiny vectors never round down to zero bytes.
        assert_eq!(BlockId::Segment(0).bytes(4, 8), 1);
        // Non-divisible sizes round up, not down: 1000 / 3 → 334-byte blocks.
        assert_eq!(BlockId::Segment(1).bytes(1000, 3), 334);
        assert_eq!(BlockId::Pairwise { origin: 0, dest: 2 }.bytes(1000, 3), 334);
    }

    #[test]
    fn contiguity() {
        let p = 8;
        let seg = |i| BlockId::Segment(i);
        assert_eq!(contiguity_of(&[seg(0), seg(1), seg(2)], p), 1);
        assert_eq!(contiguity_of(&[seg(0), seg(2), seg(4)], p), 3);
        assert_eq!(contiguity_of(&[seg(6), seg(7), seg(0)], p), 2); // no wrap in memory
        assert_eq!(contiguity_of(&[BlockId::Full], p), 1);
    }

    #[test]
    fn equal_counts_size_segments_exactly_like_the_regular_split() {
        // The irregular sizing must degenerate bit-exactly to ceil(n/p)
        // when every rank contributes the same count, for any common count.
        for p in [3usize, 4, 8, 17] {
            for k in [1u64, 2, 7, 1000] {
                let c = Counts::new(vec![k; p]);
                for n in [1u64, 4, 1000, 1 << 20, (8 << 20) + 17] {
                    for i in 0..p as u32 {
                        assert_eq!(
                            c.segment_bytes(i, n),
                            BlockId::Segment(i).bytes(n, p),
                            "p={p} k={k} n={n} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_count_segments_carry_no_bytes_and_heavy_ones_carry_the_rest() {
        // One rank holds everything: its segment is the whole vector, the
        // zero-count ranks carry nothing.
        let c = Counts::new(vec![0, 5, 0, 0]);
        assert_eq!(c.segment_bytes(0, 1 << 20), 0);
        assert_eq!(c.segment_bytes(1, 1 << 20), 1 << 20);
        assert_eq!(c.segment_bytes(2, 1 << 20), 0);
        // Tiny vectors never round a non-zero share down to zero bytes.
        let skew = Counts::new(vec![1, 1_000_000]);
        assert_eq!(skew.segment_bytes(0, 4), 1);
    }

    #[test]
    fn irregular_message_bytes_follow_the_counts() {
        let mut sched = Schedule::new(4, Collective::Allgather, "test", 0);
        let mut step = Step::new();
        step.push(Message::new(
            0,
            1,
            vec![BlockId::Segment(0), BlockId::Segment(2)],
            TransferKind::Copy,
            4,
        ));
        sched.push_step(step);
        let sched = sched.with_counts(Counts::new(vec![3, 1, 0, 4]));
        // n = 800, total = 8: segment 0 = ceil(800·3/8) = 300, segment 2 = 0.
        assert_eq!(sched.total_network_bytes(800), 300);
        assert_eq!(sched.max_bytes_sent_by_rank(800), 300);
        assert!(sched.validate().is_ok());
    }

    #[test]
    fn validation_catches_count_rank_mismatch() {
        let mut sched = Schedule::new(4, Collective::Allgather, "test", 0);
        sched.counts = Some(Counts::new(vec![1, 2]));
        assert!(sched.validate().is_err());
    }

    #[test]
    fn validation_catches_double_send() {
        let mut sched = Schedule::new(4, Collective::Broadcast, "test", 0);
        let mut step = Step::new();
        step.push(Message::new(
            0,
            1,
            vec![BlockId::Full],
            TransferKind::Copy,
            4,
        ));
        step.push(Message::new(
            0,
            2,
            vec![BlockId::Full],
            TransferKind::Copy,
            4,
        ));
        sched.push_step(step);
        assert!(sched.validate().is_err());
    }

    #[test]
    fn byte_accounting() {
        let mut sched = Schedule::new(4, Collective::Allgather, "test", 0);
        let mut step = Step::new();
        step.push(Message::new(
            0,
            1,
            vec![BlockId::Segment(0)],
            TransferKind::Copy,
            4,
        ));
        step.push(Message::new(
            2,
            3,
            vec![BlockId::Segment(2), BlockId::Segment(3)],
            TransferKind::Copy,
            4,
        ));
        step.push(Message::new(
            1,
            1,
            vec![BlockId::Segment(1)],
            TransferKind::Copy,
            4,
        )); // local
        sched.push_step(step);
        assert_eq!(sched.total_network_bytes(400), 100 + 200);
        assert_eq!(sched.max_bytes_sent_by_rank(400), 200);
        assert!(sched.validate().is_ok());
    }
}
