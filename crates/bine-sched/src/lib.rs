//! # bine-sched
//!
//! Communication schedules for the eight collectives of the Bine Trees paper
//! (allgather, allreduce, reduce-scatter, alltoall, broadcast, gather,
//! reduce, scatter), each available both in its Bine variant (Sec. 4) and in
//! the baseline variants the paper compares against (binomial trees,
//! recursive doubling/halving, ring, Bruck, Swing).
//!
//! A [`schedule::Schedule`] is an explicit, step-by-step list of
//! point-to-point messages with block-level data semantics. The same
//! schedule object is
//!
//! * executed over real data by `bine-exec` (correctness),
//! * mapped onto Dragonfly / Dragonfly+ / fat-tree / torus models by
//!   `bine-net` (global-link traffic and modelled runtime).
//!
//! ## Quick example
//!
//! ```
//! use bine_sched::collectives::{allreduce, AllreduceAlg};
//!
//! let p = 64;
//! let bine = allreduce(p, AllreduceAlg::BineLarge);
//! let rd = allreduce(p, AllreduceAlg::RecursiveDoubling);
//! // Both are logarithmic, but the large-vector algorithm moves far fewer
//! // bytes per rank.
//! let n = 1 << 20;
//! assert!(bine.max_bytes_sent_by_rank(n) < rd.max_bytes_sent_by_rank(n));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod collectives;
pub mod compile;
pub mod noncontig;
pub mod provider;
pub mod schedule;
pub mod segment;
pub mod synth;
pub mod validate;

pub use catalog::{
    algorithms, bine_default, binomial_default, build, has_algorithm, split_segments, AlgorithmId,
};
pub use collectives::{
    build_irregular, irregular_algorithms, IrregularAlg, SizeDist, IRREGULAR_COLLECTIVES,
};
pub use compile::{BlockInterner, CompiledSchedule, CompiledSend};
pub use noncontig::NonContigStrategy;
pub use provider::{CatalogProvider, ProviderSet, ScheduleProvider, SynthProvider, ViewSource};
pub use schedule::{BlockId, Collective, Counts, Message, Schedule, Step, TransferKind};
pub use segment::segment_schedule;
pub use synth::{is_synth_name, synth_algorithms, SynthSpec, TopoEdge, TopologyView, SYNTH_PREFIX};
pub use validate::{
    validate_schedule, CompletionReport, PendingRecv, RankMap, ScheduleValidator, StallReason,
    ValidationError,
};
