//! The open algorithm-provider abstraction.
//!
//! A [`ScheduleProvider`] maps algorithm *names* to schedules. The static
//! catalog is one provider ([`CatalogProvider`]); topology-aware
//! synthesizers are another ([`SynthProvider`]). A [`ProviderSet`] routes
//! a name to the first provider that claims it and applies the shared
//! `+seg{S}` pipelining convention on top, so the tuner, the selector and
//! the serving layer can build *any* named schedule — catalog or
//! synthesized — through one path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::catalog::{self, split_segments, AlgorithmId};
use crate::schedule::{Collective, Schedule};
use crate::synth::{self, SynthSpec, TopologyView};

/// A source of schedules for a namespace of algorithm names.
///
/// `base` names never carry a `+seg{S}` suffix — [`ProviderSet`] strips it
/// before dispatching and re-applies the segmentation transform after.
pub trait ScheduleProvider: Send + Sync {
    /// Short provider name for diagnostics.
    fn provider_name(&self) -> &'static str;

    /// Whether this provider owns `base` — purely a namespace test; a
    /// claimed name may still fail to build (unknown algorithm, or a
    /// synthesizer without a view for that rank count).
    fn claims(&self, base: &str) -> bool;

    /// The candidates this provider offers for `collective` at `nodes`
    /// ranks. Catalog candidates are rank-count-independent; synthesized
    /// ones depend on the topology view for `nodes`.
    fn algorithms(&self, collective: Collective, nodes: usize) -> Vec<AlgorithmId>;

    /// Builds the schedule for a claimed base name, or `None` if it cannot
    /// be built for this (collective, nodes) pair.
    fn build(
        &self,
        collective: Collective,
        base: &str,
        nodes: usize,
        root: usize,
    ) -> Option<Schedule>;
}

/// The static hand-built catalog as a provider. Claims every name outside
/// the `synth:` namespace.
#[derive(Debug, Default, Clone, Copy)]
pub struct CatalogProvider;

impl ScheduleProvider for CatalogProvider {
    fn provider_name(&self) -> &'static str {
        "catalog"
    }

    fn claims(&self, base: &str) -> bool {
        !synth::is_synth_name(base)
    }

    fn algorithms(&self, collective: Collective, _nodes: usize) -> Vec<AlgorithmId> {
        catalog::algorithms(collective)
    }

    fn build(
        &self,
        collective: Collective,
        base: &str,
        nodes: usize,
        root: usize,
    ) -> Option<Schedule> {
        catalog::build(collective, base, nodes, root)
    }
}

/// A function producing the topology view for a given rank count, or
/// `None` when no view exists at that size (e.g. more ranks than the
/// modelled system has nodes).
pub type ViewSource = dyn Fn(usize) -> Option<TopologyView> + Send + Sync;

/// The topology-aware synthesizers as a provider. Claims the `synth:`
/// namespace; derives (and caches) one [`TopologyView`] per rank count
/// from its view source.
pub struct SynthProvider {
    source: Arc<ViewSource>,
    views: Mutex<HashMap<usize, Option<Arc<TopologyView>>>>,
}

impl SynthProvider {
    /// A provider deriving views on demand from `source`.
    pub fn new(source: Arc<ViewSource>) -> Self {
        Self {
            source,
            views: Mutex::new(HashMap::new()),
        }
    }

    /// A provider with one fixed view, answering only for that view's
    /// exact rank count (test fixtures, single-job deployments).
    pub fn fixed(view: TopologyView) -> Self {
        let view = Arc::new(view);
        let p = view.num_ranks();
        Self::new(Arc::new(move |nodes| (nodes == p).then(|| (*view).clone())))
    }

    /// The (cached) view for `nodes` ranks. Views whose rank count
    /// disagrees with `nodes` are discarded — a provider must never hand a
    /// schedule built for a different communicator size.
    pub fn view_for(&self, nodes: usize) -> Option<Arc<TopologyView>> {
        self.views
            .lock()
            .expect("view cache poisoned")
            .entry(nodes)
            .or_insert_with(|| {
                (self.source)(nodes)
                    .filter(|v| v.num_ranks() == nodes)
                    .map(Arc::new)
            })
            .clone()
    }
}

impl ScheduleProvider for SynthProvider {
    fn provider_name(&self) -> &'static str {
        "synth"
    }

    fn claims(&self, base: &str) -> bool {
        synth::is_synth_name(base)
    }

    fn algorithms(&self, collective: Collective, nodes: usize) -> Vec<AlgorithmId> {
        match self.view_for(nodes) {
            Some(view) => synth::synth_algorithms(collective, &view),
            None => Vec::new(),
        }
    }

    fn build(
        &self,
        collective: Collective,
        base: &str,
        nodes: usize,
        root: usize,
    ) -> Option<Schedule> {
        let spec = SynthSpec::parse(base)?;
        let view = self.view_for(nodes)?;
        spec.synthesize(collective, &view, root)
    }
}

/// An ordered set of providers behind the catalog's `build` contract:
/// split the `+seg{S}` suffix, dispatch the base name to the first
/// claiming provider, re-apply segmentation. Cheap to clone and share.
#[derive(Clone)]
pub struct ProviderSet {
    providers: Vec<Arc<dyn ScheduleProvider>>,
}

impl std::fmt::Debug for ProviderSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.providers.iter().map(|p| p.provider_name()).collect();
        f.debug_struct("ProviderSet")
            .field("providers", &names)
            .finish()
    }
}

impl Default for ProviderSet {
    fn default() -> Self {
        Self::catalog_only()
    }
}

impl ProviderSet {
    /// Just the static catalog — the behaviour of the whole stack before
    /// synthesis existed, and the fallback when no topology is known.
    pub fn catalog_only() -> Self {
        Self {
            providers: vec![Arc::new(CatalogProvider)],
        }
    }

    /// Catalog plus synthesizers fed by `source`.
    pub fn with_synth(source: Arc<ViewSource>) -> Self {
        Self {
            providers: vec![
                Arc::new(CatalogProvider),
                Arc::new(SynthProvider::new(source)),
            ],
        }
    }

    /// Catalog plus synthesizers over one fixed view.
    pub fn with_view(view: TopologyView) -> Self {
        Self {
            providers: vec![
                Arc::new(CatalogProvider),
                Arc::new(SynthProvider::fixed(view)),
            ],
        }
    }

    /// Appends a provider (consulted after the existing ones).
    pub fn push(&mut self, provider: Arc<dyn ScheduleProvider>) {
        self.providers.push(provider);
    }

    /// Whether any provider claims `name`'s base.
    pub fn claims(&self, name: &str) -> bool {
        let (base, _) = split_segments(name);
        self.providers.iter().any(|p| p.claims(base))
    }

    /// Builds a named schedule: `+seg{S}` handling plus provider dispatch.
    /// Mirrors [`crate::catalog::build`]'s contract (including `+seg1`
    /// rejection via the canonical `split_segments`).
    pub fn build(
        &self,
        collective: Collective,
        name: &str,
        nodes: usize,
        root: usize,
    ) -> Option<Schedule> {
        let (base, chunks) = split_segments(name);
        let provider = self.providers.iter().find(|p| p.claims(base))?;
        let sched = provider.build(collective, base, nodes, root)?;
        Some(if chunks > 1 {
            sched.segmented(chunks)
        } else {
            sched
        })
    }

    /// Every candidate all providers offer for `collective` at `nodes`.
    pub fn algorithms(&self, collective: Collective, nodes: usize) -> Vec<AlgorithmId> {
        self.providers
            .iter()
            .flat_map(|p| p.algorithms(collective, nodes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_only_matches_catalog_build() {
        let set = ProviderSet::catalog_only();
        for (collective, name) in [
            (Collective::Allreduce, "bine-large"),
            (Collective::Allreduce, "bine-large+seg4"),
            (Collective::Broadcast, "binomial-dd"),
            (Collective::Allreduce, "nonsense"),
            (Collective::Allreduce, "bine-large+seg1"),
            (Collective::Broadcast, "synth:forestcoll:k=2"),
        ] {
            let via_set = set.build(collective, name, 16, 0);
            let via_catalog = catalog::build(collective, name, 16, 0);
            assert_eq!(via_set, via_catalog, "{collective:?} {name}");
        }
    }

    #[test]
    fn synth_names_dispatch_to_the_synthesizer() {
        let view = TopologyView::clustered(&[8, 8], (100.0, 0.3), (5.0, 25.0)).unwrap();
        let set = ProviderSet::with_view(view);
        let sched = set
            .build(Collective::Broadcast, "synth:multilevel:tiers=2", 16, 0)
            .expect("synth build");
        assert_eq!(sched.algorithm, "synth:multilevel:tiers=2");
        // Segmented variant round-trips the composed name.
        let seg = set
            .build(Collective::Broadcast, "synth:forestcoll:k=2+seg4", 16, 0)
            .expect("segmented synth build");
        assert_eq!(seg.algorithm, "synth:forestcoll:k=2+seg4");
        // No view at that size -> no schedule.
        assert!(set
            .build(Collective::Broadcast, "synth:multilevel:tiers=2", 8, 0)
            .is_none());
        // Catalog names still work through the same set.
        assert!(set
            .build(Collective::Broadcast, "binomial-dd", 16, 0)
            .is_some());
        assert!(set.claims("synth:multilevel:tiers=2+seg8"));
        assert!(!ProviderSet::catalog_only().claims("synth:multilevel:tiers=2"));
    }

    #[test]
    fn provider_algorithms_merge() {
        let view = TopologyView::clustered(&[8, 8], (100.0, 0.3), (5.0, 25.0)).unwrap();
        let set = ProviderSet::with_view(view);
        let algs = set.algorithms(Collective::Broadcast, 16);
        assert!(algs.iter().any(|a| !a.is_synthesized()));
        assert!(algs.iter().any(|a| a.is_synthesized()));
        // At a size without a view only the catalog answers.
        assert!(set
            .algorithms(Collective::Broadcast, 8)
            .iter()
            .all(|a| !a.is_synthesized()));
    }
}
