//! A string-keyed catalog of every (collective, algorithm) pair, used by the
//! benchmark harness and the examples to enumerate and build schedules
//! without hard-coding enum variants.

use crate::collectives::{
    allgather, allreduce, alltoall, broadcast, gather, reduce, reduce_scatter, scatter,
    AllgatherAlg, AllreduceAlg, AlltoallAlg, BroadcastAlg, GatherAlg, ReduceAlg, ReduceScatterAlg,
    ScatterAlg,
};
use crate::noncontig::NonContigStrategy;
use crate::schedule::{Collective, Schedule};

/// A named algorithm for a given collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgorithmId {
    /// The collective the algorithm implements.
    pub collective: Collective,
    /// The algorithm name (matches the per-collective enum names).
    pub name: &'static str,
    /// Whether this is one of the paper's Bine algorithms.
    pub is_bine: bool,
    /// Whether this algorithm plays the role of the *binomial-tree /
    /// butterfly baseline* in the paper's head-to-head tables (Tables 3–5).
    pub is_binomial_baseline: bool,
}

/// Lists every algorithm available for `collective`.
pub fn algorithms(collective: Collective) -> Vec<AlgorithmId> {
    let mk = |name, is_bine, is_binomial_baseline| AlgorithmId {
        collective,
        name,
        is_bine,
        is_binomial_baseline,
    };
    match collective {
        Collective::Broadcast => BroadcastAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, BroadcastAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Reduce => ReduceAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, ReduceAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Gather => GatherAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, GatherAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Scatter => ScatterAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, ScatterAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Allgather => AllgatherAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, AllgatherAlg::RecursiveDoubling),
                )
            })
            .collect(),
        Collective::ReduceScatter => ReduceScatterAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, ReduceScatterAlg::RecursiveHalving),
                )
            })
            .collect(),
        Collective::Allreduce => AllreduceAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, AllreduceAlg::RecursiveDoubling),
                )
            })
            .collect(),
        Collective::Alltoall => AlltoallAlg::ALL
            .iter()
            .map(|a| mk(a.name(), a.is_bine(), matches!(a, AlltoallAlg::Bruck)))
            .collect(),
    }
}

/// Builds the schedule for a named algorithm.
///
/// `root` is used only by the rooted collectives. Returns `None` if the name
/// is unknown for that collective.
///
/// A `+seg{S}` suffix with `S >= 2` (e.g. `"bine-large+seg4"`) builds the
/// base algorithm and then applies the pipelining transform of
/// [`crate::segment`] with `S` chunks, so segmented variants are reachable
/// through the same string-keyed path the benchmark harness uses for
/// everything else. `+seg1` is rejected: the unsegmented schedule goes by
/// its bare name (so algorithm names always round-trip through `build`).
pub fn build(collective: Collective, name: &str, p: usize, root: usize) -> Option<Schedule> {
    if let Some((base, chunks)) = name.rsplit_once("+seg") {
        let chunks: usize = chunks.parse().ok().filter(|&c| c >= 2)?;
        return build(collective, base, p, root).map(|s| s.segmented(chunks));
    }
    let sched = match collective {
        Collective::Broadcast => {
            let alg = BroadcastAlg::ALL.into_iter().find(|a| a.name() == name)?;
            broadcast(p, root, alg)
        }
        Collective::Reduce => {
            let alg = ReduceAlg::ALL.into_iter().find(|a| a.name() == name)?;
            reduce(p, root, alg)
        }
        Collective::Gather => {
            let alg = GatherAlg::ALL.into_iter().find(|a| a.name() == name)?;
            gather(p, root, alg)
        }
        Collective::Scatter => {
            let alg = ScatterAlg::ALL.into_iter().find(|a| a.name() == name)?;
            scatter(p, root, alg)
        }
        Collective::Allgather => {
            let alg = AllgatherAlg::ALL.into_iter().find(|a| a.name() == name)?;
            allgather(p, alg)
        }
        Collective::ReduceScatter => {
            let alg = rs_by_name(name)?;
            reduce_scatter(p, alg)
        }
        Collective::Allreduce => {
            let alg = AllreduceAlg::ALL.into_iter().find(|a| a.name() == name)?;
            allreduce(p, alg)
        }
        Collective::Alltoall => {
            let alg = AlltoallAlg::ALL.into_iter().find(|a| a.name() == name)?;
            alltoall(p, alg)
        }
    };
    Some(sched)
}

fn rs_by_name(name: &str) -> Option<ReduceScatterAlg> {
    if let Some(alg) = ReduceScatterAlg::ALL.into_iter().find(|a| a.name() == name) {
        return Some(alg);
    }
    NonContigStrategy::ALL
        .into_iter()
        .map(ReduceScatterAlg::Bine)
        .find(|a| a.name() == name)
}

/// The algorithm the paper treats as "the Bine algorithm" for a collective
/// and a given vector size (`small` switches between the small- and
/// large-vector variants where applicable).
pub fn bine_default(collective: Collective, small_vector: bool) -> &'static str {
    match (collective, small_vector) {
        (Collective::Broadcast, true) => "bine-tree",
        (Collective::Broadcast, false) => "bine-scatter-allgather",
        (Collective::Reduce, true) => "bine-tree",
        (Collective::Reduce, false) => "bine-rs-gather",
        (Collective::Gather, _) | (Collective::Scatter, _) => "bine",
        (Collective::Allgather, _) => "bine",
        (Collective::ReduceScatter, _) => "bine-permute",
        (Collective::Allreduce, true) => "bine-small",
        (Collective::Allreduce, false) => "bine-large",
        (Collective::Alltoall, _) => "bine",
    }
}

/// The binomial-tree / butterfly baseline the paper compares against in
/// Tables 3–5 for a collective and vector-size regime.
pub fn binomial_default(collective: Collective, small_vector: bool) -> &'static str {
    match (collective, small_vector) {
        (Collective::Broadcast, true) => "binomial-dd",
        (Collective::Broadcast, false) => "scatter-allgather",
        (Collective::Reduce, true) => "binomial-dd",
        (Collective::Reduce, false) => "rs-gather",
        (Collective::Gather, _) | (Collective::Scatter, _) => "binomial-dd",
        (Collective::Allgather, _) => "recursive-doubling",
        (Collective::ReduceScatter, _) => "recursive-halving",
        (Collective::Allreduce, true) => "recursive-doubling",
        (Collective::Allreduce, false) => "rabenseifner",
        (Collective::Alltoall, _) => "bruck",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_algorithm_builds() {
        for collective in Collective::ALL {
            let algs = algorithms(collective);
            assert!(!algs.is_empty());
            for alg in algs {
                let sched = build(collective, alg.name, 32, 3).expect(alg.name);
                assert_eq!(sched.collective, collective);
                assert!(sched.validate().is_ok(), "{}", alg.name);
            }
        }
    }

    #[test]
    fn exactly_one_binomial_baseline_per_collective() {
        for collective in Collective::ALL {
            let n = algorithms(collective)
                .iter()
                .filter(|a| a.is_binomial_baseline)
                .count();
            assert_eq!(n, 1, "{collective:?}");
        }
    }

    #[test]
    fn defaults_resolve_to_real_algorithms() {
        for collective in Collective::ALL {
            for small in [true, false] {
                assert!(build(collective, bine_default(collective, small), 16, 0).is_some());
                assert!(build(collective, binomial_default(collective, small), 16, 0).is_some());
            }
        }
    }

    #[test]
    fn segmented_variants_are_reachable_by_name() {
        let seg = build(Collective::Allreduce, "bine-large+seg4", 16, 0).expect("segmented build");
        let base = build(Collective::Allreduce, "bine-large", 16, 0).unwrap();
        assert_eq!(seg.algorithm, "bine-large+seg4");
        assert!(seg.num_steps() > base.num_steps());
        assert!(build(Collective::Allreduce, "bine-large+seg0", 16, 0).is_none());
        // The unsegmented schedule goes by its bare name; "+seg1" would
        // build a schedule whose algorithm name does not round-trip.
        assert!(build(Collective::Allreduce, "bine-large+seg1", 16, 0).is_none());
        assert!(build(Collective::Allreduce, "nonsense+seg4", 16, 0).is_none());
    }

    #[test]
    fn strategy_variants_are_reachable_by_name() {
        for name in ["bine-block-by-block", "bine-send", "bine-two-transmissions"] {
            assert!(
                build(Collective::ReduceScatter, name, 16, 0).is_some(),
                "{name}"
            );
        }
    }
}
