//! A string-keyed catalog of every (collective, algorithm) pair, used by the
//! benchmark harness and the examples to enumerate and build schedules
//! without hard-coding enum variants.

use crate::collectives::{
    allgather, allreduce, alltoall, broadcast, gather, reduce, reduce_scatter, scatter,
    AllgatherAlg, AllreduceAlg, AlltoallAlg, BroadcastAlg, GatherAlg, ReduceAlg, ReduceScatterAlg,
    ScatterAlg,
};
use std::sync::Arc;

use crate::noncontig::NonContigStrategy;
use crate::schedule::{Collective, Schedule};
use crate::synth;

/// A named algorithm for a given collective.
///
/// The name is an *open* identity: catalog algorithms use their enum names
/// (`"bine-large"`), topology-synthesized schedules use the parameterized
/// `synth:` grammar (`"synth:forestcoll:k=2"`), and either may carry a
/// `+seg{S}` pipelining suffix. Identities are owned (`Arc<str>`), so ids
/// minted at runtime by a [`crate::provider::ScheduleProvider`] are
/// first-class citizens of the tuner, the decision tables and the serving
/// layer alongside the static catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AlgorithmId {
    /// The collective the algorithm implements.
    pub collective: Collective,
    /// The algorithm name (catalog enum name or `synth:` grammar).
    name: Arc<str>,
    /// Whether this is one of the paper's Bine algorithms.
    pub is_bine: bool,
    /// Whether this algorithm plays the role of the *binomial-tree /
    /// butterfly baseline* in the paper's head-to-head tables (Tables 3–5).
    pub is_binomial_baseline: bool,
    /// Whether the algorithm takes Θ(p) communication steps (ring,
    /// pairwise) rather than Θ(log p) — the distinction the autotuner's
    /// latency lower bound prunes on.
    pub is_linear: bool,
}

impl AlgorithmId {
    /// Mints an id for `name`. The `is_bine` / `is_binomial_baseline` flags
    /// default to `false` (the catalog sets them for its own entries);
    /// `is_linear` is derived from the base name, since only the catalog's
    /// `ring`/`pairwise` chains take Θ(p) steps — every synthesized schedule
    /// is tree-shaped and logarithmic.
    pub fn new(collective: Collective, name: impl Into<Arc<str>>) -> Self {
        let name = name.into();
        let is_linear = matches!(split_segments(&name).0, "ring" | "pairwise");
        Self {
            collective,
            name,
            is_bine: false,
            is_binomial_baseline: false,
            is_linear,
        }
    }

    /// The algorithm name (including any `+seg{S}` suffix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this id names a topology-synthesized schedule (`synth:` …).
    pub fn is_synthesized(&self) -> bool {
        synth::is_synth_name(&self.name)
    }
    /// Conservative lower bound on the number of nonempty *network* steps of
    /// the schedule this algorithm builds for `p` ranks: `p − 1` for the
    /// linear algorithms (which are chains by construction), otherwise the
    /// information-dissemination bound `ceil(log2 p)` every logarithmic
    /// collective schedule in this crate meets. Validated against the built
    /// schedules by `catalog::tests::metadata_bounds_are_true_lower_bounds`.
    pub fn min_steps(&self, p: usize) -> u64 {
        if p < 2 {
            return 0;
        }
        if self.is_linear {
            (p - 1) as u64
        } else {
            (usize::BITS - (p - 1).leading_zeros()) as u64
        }
    }

    /// Conservative lower bound on the bytes the busiest rank *sends* over
    /// the network, valid for **every** algorithm of the collective (it only
    /// uses what the collective's semantics force out of some rank):
    ///
    /// * scatter/alltoall/allgather/reduce-scatter: `p − 1` blocks must
    ///   leave the root / every rank / the average rank;
    /// * allreduce: every rank's full incompressible vector must leave it;
    /// * broadcast/reduce: the scatter-allgather compositions only move
    ///   `(p − 1)/p · n` through their busiest rank;
    /// * gather: a leaf-only rank sends just its own block.
    ///
    /// Block arithmetic rounds *down* where the real schedules round up, so
    /// the bound stays conservative for non-divisible sizes.
    pub fn min_rank_bytes(&self, n: u64, p: usize) -> u64 {
        if p < 2 {
            return 0;
        }
        let p64 = p as u64;
        let block = n / p64;
        match self.collective {
            Collective::Broadcast | Collective::Reduce => block * (p64 - 1),
            Collective::Gather => block,
            Collective::Scatter | Collective::Allgather | Collective::ReduceScatter => {
                block * (p64 - 1)
            }
            Collective::Allreduce => block * p64,
            Collective::Alltoall => block * (p64 - 1),
        }
    }
}

/// Splits a (possibly tuned) algorithm name into its base name and pipeline
/// chunk count: `"bine-large+seg8"` → `("bine-large", 8)`,
/// `"synth:forestcoll:k=2+seg8"` → `("synth:forestcoll:k=2", 8)`, a bare
/// name → `(name, 1)`. This is the inverse of the `alg+segS` naming
/// convention the catalog, the benchmark harness and the `bine-tune`
/// decision tables share, so it only accepts the *canonical* spelling that
/// `{base}+seg{chunks}` formatting produces: a non-empty base and a plain
/// decimal count ≥ 2 with no sign and no leading zeros. Anything else
/// (`+seg0`, `+seg1`, `+segX`, `+seg08`, `+seg+2`) is returned unsplit so
/// that `build` rejects it rather than silently normalizing it into a name
/// that would not round-trip.
pub fn split_segments(name: &str) -> (&str, usize) {
    if let Some((base, chunks)) = name.rsplit_once("+seg") {
        let canonical = !base.is_empty()
            && !chunks.is_empty()
            && chunks.bytes().all(|b| b.is_ascii_digit())
            && !chunks.starts_with('0');
        if canonical {
            if let Some(chunks) = chunks.parse().ok().filter(|&c| c >= 2) {
                return (base, chunks);
            }
        }
    }
    (name, 1)
}

/// Whether `name` (base name or `+seg{S}`-suffixed) is a name the *catalog*
/// can build for `collective`, without building it. Synthesized `synth:`
/// names are not catalog names; check them with
/// [`crate::synth::SynthSpec::parse`]. Decision-table loading uses this to
/// reject stale picks at parse time instead of deep in the serve path.
pub fn has_algorithm(collective: Collective, name: &str) -> bool {
    let (base, _) = split_segments(name);
    match collective {
        Collective::Broadcast => BroadcastAlg::ALL.iter().any(|a| a.name() == base),
        Collective::Reduce => ReduceAlg::ALL.iter().any(|a| a.name() == base),
        Collective::Gather => GatherAlg::ALL.iter().any(|a| a.name() == base),
        Collective::Scatter => ScatterAlg::ALL.iter().any(|a| a.name() == base),
        Collective::Allgather => AllgatherAlg::ALL.iter().any(|a| a.name() == base),
        Collective::ReduceScatter => rs_by_name(base).is_some(),
        Collective::Allreduce => AllreduceAlg::ALL.iter().any(|a| a.name() == base),
        Collective::Alltoall => AlltoallAlg::ALL.iter().any(|a| a.name() == base),
    }
}

/// Lists every algorithm available for `collective`.
pub fn algorithms(collective: Collective) -> Vec<AlgorithmId> {
    let mk = |name: &'static str, is_bine, is_binomial_baseline| AlgorithmId {
        collective,
        name: Arc::from(name),
        is_bine,
        is_binomial_baseline,
        is_linear: matches!(name, "ring" | "pairwise"),
    };
    match collective {
        Collective::Broadcast => BroadcastAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, BroadcastAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Reduce => ReduceAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, ReduceAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Gather => GatherAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, GatherAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Scatter => ScatterAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, ScatterAlg::BinomialDistanceDoubling),
                )
            })
            .collect(),
        Collective::Allgather => AllgatherAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, AllgatherAlg::RecursiveDoubling),
                )
            })
            .collect(),
        Collective::ReduceScatter => ReduceScatterAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, ReduceScatterAlg::RecursiveHalving),
                )
            })
            .collect(),
        Collective::Allreduce => AllreduceAlg::ALL
            .iter()
            .map(|a| {
                mk(
                    a.name(),
                    a.is_bine(),
                    matches!(a, AllreduceAlg::RecursiveDoubling),
                )
            })
            .collect(),
        Collective::Alltoall => AlltoallAlg::ALL
            .iter()
            .map(|a| mk(a.name(), a.is_bine(), matches!(a, AlltoallAlg::Bruck)))
            .collect(),
    }
}

/// Builds the schedule for a named algorithm.
///
/// `root` is used only by the rooted collectives. Returns `None` if the name
/// is unknown for that collective.
///
/// A `+seg{S}` suffix with `S >= 2` (e.g. `"bine-large+seg4"`) builds the
/// base algorithm and then applies the pipelining transform of
/// [`crate::segment`] with `S` chunks, so segmented variants are reachable
/// through the same string-keyed path the benchmark harness uses for
/// everything else. `+seg1` is rejected: the unsegmented schedule goes by
/// its bare name (so algorithm names always round-trip through `build`).
pub fn build(collective: Collective, name: &str, p: usize, root: usize) -> Option<Schedule> {
    let (base, chunks) = split_segments(name);
    if chunks > 1 {
        return build(collective, base, p, root).map(|s| s.segmented(chunks));
    }
    let sched = match collective {
        Collective::Broadcast => {
            let alg = BroadcastAlg::ALL.into_iter().find(|a| a.name() == name)?;
            broadcast(p, root, alg)
        }
        Collective::Reduce => {
            let alg = ReduceAlg::ALL.into_iter().find(|a| a.name() == name)?;
            reduce(p, root, alg)
        }
        Collective::Gather => {
            let alg = GatherAlg::ALL.into_iter().find(|a| a.name() == name)?;
            gather(p, root, alg)
        }
        Collective::Scatter => {
            let alg = ScatterAlg::ALL.into_iter().find(|a| a.name() == name)?;
            scatter(p, root, alg)
        }
        Collective::Allgather => {
            let alg = AllgatherAlg::ALL.into_iter().find(|a| a.name() == name)?;
            allgather(p, alg)
        }
        Collective::ReduceScatter => {
            let alg = rs_by_name(name)?;
            reduce_scatter(p, alg)
        }
        Collective::Allreduce => {
            let alg = AllreduceAlg::ALL.into_iter().find(|a| a.name() == name)?;
            allreduce(p, alg)
        }
        Collective::Alltoall => {
            let alg = AlltoallAlg::ALL.into_iter().find(|a| a.name() == name)?;
            alltoall(p, alg)
        }
    };
    Some(sched)
}

fn rs_by_name(name: &str) -> Option<ReduceScatterAlg> {
    if let Some(alg) = ReduceScatterAlg::ALL.into_iter().find(|a| a.name() == name) {
        return Some(alg);
    }
    NonContigStrategy::ALL
        .into_iter()
        .map(ReduceScatterAlg::Bine)
        .find(|a| a.name() == name)
}

/// The algorithm the paper treats as "the Bine algorithm" for a collective
/// and a given vector size (`small` switches between the small- and
/// large-vector variants where applicable).
pub fn bine_default(collective: Collective, small_vector: bool) -> &'static str {
    match (collective, small_vector) {
        (Collective::Broadcast, true) => "bine-tree",
        (Collective::Broadcast, false) => "bine-scatter-allgather",
        (Collective::Reduce, true) => "bine-tree",
        (Collective::Reduce, false) => "bine-rs-gather",
        (Collective::Gather, _) | (Collective::Scatter, _) => "bine",
        (Collective::Allgather, _) => "bine",
        (Collective::ReduceScatter, _) => "bine-permute",
        (Collective::Allreduce, true) => "bine-small",
        (Collective::Allreduce, false) => "bine-large",
        (Collective::Alltoall, _) => "bine",
    }
}

/// The binomial-tree / butterfly baseline the paper compares against in
/// Tables 3–5 for a collective and vector-size regime.
pub fn binomial_default(collective: Collective, small_vector: bool) -> &'static str {
    match (collective, small_vector) {
        (Collective::Broadcast, true) => "binomial-dd",
        (Collective::Broadcast, false) => "scatter-allgather",
        (Collective::Reduce, true) => "binomial-dd",
        (Collective::Reduce, false) => "rs-gather",
        (Collective::Gather, _) | (Collective::Scatter, _) => "binomial-dd",
        (Collective::Allgather, _) => "recursive-doubling",
        (Collective::ReduceScatter, _) => "recursive-halving",
        (Collective::Allreduce, true) => "recursive-doubling",
        (Collective::Allreduce, false) => "rabenseifner",
        (Collective::Alltoall, _) => "bruck",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_algorithm_builds() {
        for collective in Collective::ALL {
            let algs = algorithms(collective);
            assert!(!algs.is_empty());
            for alg in algs {
                let sched = build(collective, alg.name(), 32, 3)
                    .unwrap_or_else(|| panic!("{}", alg.name()));
                assert_eq!(sched.collective, collective);
                assert!(sched.validate().is_ok(), "{}", alg.name());
                assert!(has_algorithm(collective, alg.name()), "{}", alg.name());
            }
        }
    }

    #[test]
    fn exactly_one_binomial_baseline_per_collective() {
        for collective in Collective::ALL {
            let n = algorithms(collective)
                .iter()
                .filter(|a| a.is_binomial_baseline)
                .count();
            assert_eq!(n, 1, "{collective:?}");
        }
    }

    #[test]
    fn defaults_resolve_to_real_algorithms() {
        for collective in Collective::ALL {
            for small in [true, false] {
                assert!(build(collective, bine_default(collective, small), 16, 0).is_some());
                assert!(build(collective, binomial_default(collective, small), 16, 0).is_some());
            }
        }
    }

    #[test]
    fn segmented_variants_are_reachable_by_name() {
        let seg = build(Collective::Allreduce, "bine-large+seg4", 16, 0).expect("segmented build");
        let base = build(Collective::Allreduce, "bine-large", 16, 0).unwrap();
        assert_eq!(seg.algorithm, "bine-large+seg4");
        assert!(seg.num_steps() > base.num_steps());
        assert!(build(Collective::Allreduce, "bine-large+seg0", 16, 0).is_none());
        // The unsegmented schedule goes by its bare name; "+seg1" would
        // build a schedule whose algorithm name does not round-trip.
        assert!(build(Collective::Allreduce, "bine-large+seg1", 16, 0).is_none());
        assert!(build(Collective::Allreduce, "nonsense+seg4", 16, 0).is_none());
    }

    #[test]
    fn split_segments_round_trips_catalog_names() {
        assert_eq!(split_segments("bine-large"), ("bine-large", 1));
        assert_eq!(split_segments("bine-large+seg8"), ("bine-large", 8));
        assert_eq!(split_segments("ring+seg2"), ("ring", 2));
        // Malformed suffixes come back unsplit so `build` rejects them.
        assert_eq!(split_segments("bine-large+seg1"), ("bine-large+seg1", 1));
        assert_eq!(split_segments("bine-large+seg0"), ("bine-large+seg0", 1));
        assert_eq!(split_segments("bine-large+segX"), ("bine-large+segX", 1));
    }

    #[test]
    fn split_segments_round_trips_parameterized_names() {
        // The synth grammar embeds `:` and `=`; the suffix split must not
        // care.
        assert_eq!(
            split_segments("synth:forestcoll:k=2+seg8"),
            ("synth:forestcoll:k=2", 8)
        );
        assert_eq!(
            split_segments("synth:multilevel:tiers=2"),
            ("synth:multilevel:tiers=2", 1)
        );
        // Round-trip: split then re-format must reproduce the input
        // byte-for-byte for every split that succeeds.
        for name in [
            "bine-large+seg8",
            "synth:forestcoll:k=2+seg16",
            "synth:multilevel:tiers=2+seg4",
        ] {
            let (base, chunks) = split_segments(name);
            assert!(chunks > 1, "{name}");
            assert_eq!(format!("{base}+seg{chunks}"), name);
        }
    }

    #[test]
    fn split_segments_rejects_non_canonical_suffixes() {
        // Each of these would parse as a number but does not round-trip
        // through `{base}+seg{chunks}` formatting, so it must come back
        // unsplit (and `build` must reject it).
        for name in [
            "bine-large+seg08", // leading zero
            "bine-large+seg+2", // sign accepted by usize::parse
            "bine-large+seg 2", // whitespace
            "synth:forestcoll:k=2+seg02",
            "+seg4", // empty base
        ] {
            assert_eq!(split_segments(name), (name, 1), "{name}");
            assert!(
                build(Collective::Allreduce, name, 16, 0).is_none(),
                "{name}"
            );
        }
        // But a canonical suffix after a weird-looking base still splits.
        assert_eq!(split_segments("a+seg2+seg4"), ("a+seg2", 4));
    }

    #[test]
    fn has_algorithm_matches_build() {
        for collective in Collective::ALL {
            for name in [
                "bine-large",
                "ring",
                "nonsense",
                "bine-large+seg4",
                "bine-large+seg0",
                "synth:forestcoll:k=2",
                "binomial-dd",
                "bine-block-by-block",
            ] {
                assert_eq!(
                    has_algorithm(collective, name),
                    build(collective, name, 16, 0).is_some(),
                    "{collective:?} {name}"
                );
            }
        }
    }

    #[test]
    fn metadata_bounds_are_true_lower_bounds() {
        // The autotuner prunes candidates on these closed forms without
        // building their schedules, so an over-estimate would silently
        // change decision tables. Validate them against the real schedules
        // at power-of-two rank counts — the only counts the tuning grids
        // sweep, and all several generators (broadcast, reduce) accept —
        // with awkward (non-divisible) vector sizes.
        for collective in Collective::ALL {
            for p in [2usize, 4, 8, 16, 32, 64] {
                for alg in algorithms(collective) {
                    let sched = build(collective, alg.name(), p, 0)
                        .unwrap_or_else(|| panic!("{}", alg.name()));
                    let network_steps = sched
                        .steps
                        .iter()
                        .filter(|s| s.messages.iter().any(|m| !m.is_local()))
                        .count() as u64;
                    assert!(
                        alg.min_steps(p) <= network_steps,
                        "{} p={p}: min_steps {} > actual {network_steps}",
                        alg.name(),
                        alg.min_steps(p)
                    );
                    for n in [32u64, 1000, 65536, (1 << 20) + 13] {
                        assert!(
                            alg.min_rank_bytes(n, p) <= sched.max_bytes_sent_by_rank(n),
                            "{} p={p} n={n}: min_rank_bytes {} > actual {}",
                            alg.name(),
                            alg.min_rank_bytes(n, p),
                            sched.max_bytes_sent_by_rank(n)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn only_ring_and_pairwise_are_linear() {
        for collective in Collective::ALL {
            for alg in algorithms(collective) {
                assert_eq!(
                    alg.is_linear,
                    alg.name() == "ring" || alg.name() == "pairwise",
                    "{}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn strategy_variants_are_reachable_by_name() {
        for name in ["bine-block-by-block", "bine-send", "bine-two-transmissions"] {
            assert!(
                build(Collective::ReduceScatter, name, 16, 0).is_some(),
                "{name}"
            );
        }
    }
}
