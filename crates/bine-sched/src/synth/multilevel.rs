//! Multilevel (hierarchy-aware) tree synthesis in the style of Karonis et
//! al.: treat intra-group and inter-group links as distinct tiers and run
//! the collective as a two-level composition — a binomial exchange among
//! one *leader* per group over the slow tier, and per-group binomial
//! exchanges over the fast tier, with all groups' local phases packed into
//! shared steps.
//!
//! On fabrics where the inter-group latency dominates (GPU islands,
//! oversubscribed fat trees) this collapses the number of slow-tier rounds
//! from ~log₂ p (a topology-oblivious binomial tree under a fragmented
//! allocation) to exactly ⌈log₂ G⌉ for G groups.

use crate::schedule::{BlockId, Collective, Message, Schedule, Step, TransferKind};
use crate::synth::view::TopologyView;

/// Binomial doubling rounds over an ordered member list: in round `j`,
/// member `i < 2^j` exchanges with member `i + 2^j`. `list[0]` is the
/// subtree root. Returns `(from_index, to_index)` pairs per round, in
/// *broadcast* direction (root outwards).
fn doubling_rounds(len: usize) -> Vec<Vec<(usize, usize)>> {
    let mut rounds = Vec::new();
    let mut span = 1usize;
    while span < len {
        let round: Vec<(usize, usize)> = (0..span)
            .filter(|i| i + span < len)
            .map(|i| (i, i + span))
            .collect();
        rounds.push(round);
        span *= 2;
    }
    rounds
}

/// The per-group member lists, each led by its leader: the root leads its
/// own group; every other group is led by its smallest rank. The root's
/// group is listed first.
fn group_lists(view: &TopologyView, root: usize) -> Vec<Vec<usize>> {
    let mut by_group: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for r in 0..view.num_ranks() {
        by_group.entry(view.group_of(r)).or_default().push(r);
    }
    let root_group = view.group_of(root);
    let mut lists = Vec::new();
    for (g, mut members) in by_group {
        members.sort_unstable();
        let leader = if g == root_group { root } else { members[0] };
        members.retain(|&m| m != leader);
        let mut list = vec![leader];
        list.extend(members);
        if g == root_group {
            lists.insert(0, list);
        } else {
            lists.push(list);
        }
    }
    lists
}

/// Emits the two broadcast phases as steps: inter-leader rounds first,
/// then the per-group rounds packed side by side (group rank sets are
/// disjoint, so the single-ported constraint holds by construction).
fn broadcast_steps(view: &TopologyView, root: usize) -> Vec<Step> {
    let p = view.num_ranks();
    let lists = group_lists(view, root);
    let leaders: Vec<usize> = lists.iter().map(|l| l[0]).collect();
    let mut steps = Vec::new();
    for round in doubling_rounds(leaders.len()) {
        let mut step = Step::new();
        for (fi, ti) in round {
            step.push(Message::new(
                leaders[fi],
                leaders[ti],
                vec![BlockId::Full],
                TransferKind::Copy,
                p,
            ));
        }
        steps.push(step);
    }
    let local_rounds: Vec<Vec<Vec<(usize, usize)>>> = lists
        .iter()
        .map(|list| doubling_rounds(list.len()))
        .collect();
    let depth = local_rounds.iter().map(Vec::len).max().unwrap_or(0);
    for j in 0..depth {
        let mut step = Step::new();
        for (list, rounds) in lists.iter().zip(&local_rounds) {
            let Some(round) = rounds.get(j) else { continue };
            for &(fi, ti) in round {
                step.push(Message::new(
                    list[fi],
                    list[ti],
                    vec![BlockId::Full],
                    TransferKind::Copy,
                    p,
                ));
            }
        }
        steps.push(step);
    }
    steps
}

/// The reduce phases are the broadcast phases mirrored: local rounds run
/// first and in reverse with flipped edges (children fold into their
/// parent with [`TransferKind::Reduce`]), then the leader rounds fold into
/// the root.
fn reduce_steps(view: &TopologyView, root: usize) -> Vec<Step> {
    let p = view.num_ranks();
    let lists = group_lists(view, root);
    let leaders: Vec<usize> = lists.iter().map(|l| l[0]).collect();
    let mut steps = Vec::new();
    let local_rounds: Vec<Vec<Vec<(usize, usize)>>> = lists
        .iter()
        .map(|list| doubling_rounds(list.len()))
        .collect();
    let depth = local_rounds.iter().map(Vec::len).max().unwrap_or(0);
    // Deepest rounds first: reversing the broadcast order makes every
    // child fold in before its parent is itself consumed upwards.
    for j in (0..depth).rev() {
        let mut step = Step::new();
        for (list, rounds) in lists.iter().zip(&local_rounds) {
            let Some(round) = rounds.get(j) else { continue };
            for &(fi, ti) in round {
                step.push(Message::new(
                    list[ti],
                    list[fi],
                    vec![BlockId::Full],
                    TransferKind::Reduce,
                    p,
                ));
            }
        }
        steps.push(step);
    }
    for round in doubling_rounds(leaders.len()).into_iter().rev() {
        let mut step = Step::new();
        for (fi, ti) in round {
            step.push(Message::new(
                leaders[ti],
                leaders[fi],
                vec![BlockId::Full],
                TransferKind::Reduce,
                p,
            ));
        }
        steps.push(step);
    }
    steps
}

/// Synthesizes the multilevel schedule for `collective` on `view`.
///
/// `tiers == 1` ignores the hierarchy (one flat binomial tree — mostly a
/// debugging identity); `tiers == 2` is the leader/local composition. On a
/// single-group view both degrade to the flat tree. Supported collectives:
/// broadcast, reduce and allreduce (reduce-to-root composed with
/// broadcast).
pub fn build(
    collective: Collective,
    view: &TopologyView,
    root: usize,
    tiers: usize,
) -> Option<Schedule> {
    let p = view.num_ranks();
    if p < 2 || root >= p || !(1..=2).contains(&tiers) {
        return None;
    }
    // A flat binomial is the one-group special case of the same emitters.
    let flat;
    let view = if tiers == 1 && view.num_groups() > 1 {
        flat = TopologyView::clustered(&[p], (1.0, 1.0), (1.0, 1.0)).ok()?;
        // `clustered` groups ranks 0..p identically; group ids differ from
        // the original view but only the grouping matters here.
        &flat
    } else {
        view
    };
    let name = crate::synth::SynthSpec::Multilevel { tiers }.name();
    let mut sched = Schedule::new(p, collective, name, root);
    let steps = match collective {
        Collective::Broadcast => broadcast_steps(view, root),
        Collective::Reduce => reduce_steps(view, root),
        Collective::Allreduce => {
            // Non-rooted: fold into rank 0, then fan back out.
            let mut s = reduce_steps(view, 0);
            s.extend(broadcast_steps(view, 0));
            s
        }
        _ => return None,
    };
    for step in steps {
        sched.push_step(step);
    }
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_schedule;

    fn views() -> Vec<TopologyView> {
        vec![
            TopologyView::full_mesh(16, 10.0, 1.0),
            TopologyView::clustered(&[4, 4, 4, 4], (100.0, 0.3), (5.0, 25.0)).unwrap(),
            TopologyView::clustered(&[5, 3, 7], (100.0, 0.3), (5.0, 25.0)).unwrap(),
            TopologyView::clustered(&[1, 1, 1, 1, 1], (10.0, 1.0), (10.0, 1.0)).unwrap(),
        ]
    }

    #[test]
    fn all_collectives_validate_on_all_views() {
        for view in views() {
            for collective in [
                Collective::Broadcast,
                Collective::Reduce,
                Collective::Allreduce,
            ] {
                for tiers in [1, 2] {
                    let root = if collective.is_rooted() { 2 } else { 0 };
                    let sched = build(collective, &view, root, tiers)
                        .unwrap_or_else(|| panic!("{collective:?} tiers={tiers}"));
                    sched
                        .validate()
                        .unwrap_or_else(|e| panic!("{collective:?} tiers={tiers}: {e}"));
                    validate_schedule(&sched)
                        .unwrap_or_else(|e| panic!("{collective:?} tiers={tiers}: {e:?}"));
                }
            }
        }
    }

    #[test]
    fn leader_rounds_scale_with_groups_not_ranks() {
        // 4 groups of 8: the slow tier should see exactly log2(4) = 2
        // cross-group rounds, not log2(32) = 5.
        let view = TopologyView::clustered(&[8, 8, 8, 8], (100.0, 0.3), (5.0, 25.0)).unwrap();
        let sched = build(Collective::Broadcast, &view, 0, 2).unwrap();
        let cross_steps = sched
            .steps
            .iter()
            .filter(|s| {
                s.messages
                    .iter()
                    .any(|m| view.group_of(m.src) != view.group_of(m.dst))
            })
            .count();
        assert_eq!(cross_steps, 2);
        assert_eq!(sched.num_steps(), 2 + 3); // + log2(8) local rounds
    }

    #[test]
    fn unsupported_collectives_are_refused() {
        let view = TopologyView::full_mesh(8, 10.0, 1.0);
        assert!(build(Collective::Alltoall, &view, 0, 2).is_none());
        assert!(build(Collective::Allgather, &view, 0, 2).is_none());
        assert!(build(Collective::Broadcast, &view, 0, 3).is_none());
    }
}
