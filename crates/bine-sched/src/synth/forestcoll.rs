//! ForestColl-style broadcast synthesis: `k` edge-disjoint spanning trees
//! over the topology view, found by binary-searching the bottleneck
//! capacity, each carrying an interleaved share of the `p` segments so the
//! trees stream in parallel.
//!
//! The search follows the ForestColl recipe (SNIPPETS.md snippet 2): for a
//! candidate tree count `k`, binary-search the largest capacity threshold
//! `c` such that `k` edge-disjoint spanning trees still exist using only
//! edges of capacity ≥ `c` (feasibility checked by deterministic greedy
//! peeling), then pick the `k` maximizing the aggregate bottleneck rate
//! `k · c*(k)`. Steps are packed greedily under the single-ported
//! constraint the rest of the stack assumes (one network send and one
//! network receive per rank per step), and pipelining composes through the
//! ordinary `+seg{S}` segment machinery.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::schedule::{BlockId, Collective, Message, Schedule, Step, TransferKind};
use crate::synth::view::TopologyView;

/// Largest tree count the synthesizer considers. Beyond a handful of trees
/// the per-tree segment share stops paying for the extra edges on every
/// fabric this repository models.
pub const MAX_TREES: usize = 4;

/// A spanning tree as (parent, child) edges in the order the greedy peel
/// grew them — i.e. parents always appear as children of earlier edges, so
/// the order is a valid delivery order.
type Tree = Vec<(usize, usize)>;

/// Heap entry for the Prim frontier: ordered so the max element is the
/// highest-capacity edge, ties broken by lower tier (locality), then by the
/// most recently reached parent, then by lower edge index — a total order,
/// so peeling is deterministic.
///
/// The recency tie-break matters for edge-disjointness: preferring the
/// freshest parent grows *path-shaped* trees through regions of equal
/// capacity instead of stars. A star exhausts its center's edges in the
/// first tree and makes every later tree infeasible even on fabrics (like
/// a full mesh) that comfortably host `MAX_TREES` disjoint trees.
struct FrontierEdge {
    bandwidth: f64,
    tier: usize,
    parent_order: usize,
    edge: usize,
}

impl PartialEq for FrontierEdge {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for FrontierEdge {}
impl PartialOrd for FrontierEdge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierEdge {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bandwidth
            .total_cmp(&other.bandwidth)
            .then(other.tier.cmp(&self.tier))
            .then(self.parent_order.cmp(&other.parent_order))
            .then(other.edge.cmp(&self.edge))
    }
}

/// Greedily peels `k` edge-disjoint spanning trees rooted at `root` using
/// only edges with capacity ≥ `threshold`. Each tree is grown Prim-style
/// from the root with a lazy-deletion frontier heap (stale entries — edge
/// already used or both endpoints reached — are skipped on pop), so a
/// single tree costs O(E log E) rather than a frontier rescan per edge.
fn peel(view: &TopologyView, root: usize, k: usize, threshold: f64) -> Option<Vec<Tree>> {
    let p = view.num_ranks();
    let adj = view.adjacency();
    let edges = view.edges();
    let mut used = vec![false; edges.len()];
    let mut trees = Vec::with_capacity(k);
    for _ in 0..k {
        // reach_order[r] = Some(i) once r was the i-th rank reached.
        let mut reach_order: Vec<Option<usize>> = vec![None; p];
        reach_order[root] = Some(0);
        let mut heap = BinaryHeap::with_capacity(adj[root].len());
        let grow = |rank: usize,
                    order: usize,
                    reach_order: &[Option<usize>],
                    used: &[bool],
                    heap: &mut BinaryHeap<FrontierEdge>| {
            for &ei in &adj[rank] {
                let e = &edges[ei];
                if used[ei] || e.bandwidth_gib_s < threshold {
                    continue;
                }
                let other = if e.a == rank { e.b } else { e.a };
                if reach_order[other].is_none() {
                    heap.push(FrontierEdge {
                        bandwidth: e.bandwidth_gib_s,
                        tier: e.tier,
                        parent_order: order,
                        edge: ei,
                    });
                }
            }
        };
        grow(root, 0, &reach_order, &used, &mut heap);
        let mut tree: Tree = Vec::with_capacity(p - 1);
        while tree.len() < p - 1 {
            let fe = heap.pop()?;
            if used[fe.edge] {
                continue;
            }
            let e = &edges[fe.edge];
            // The edge was pushed with exactly one endpoint reached; if the
            // other side got reached meanwhile the entry is stale.
            let (parent, child) = match (reach_order[e.a].is_some(), reach_order[e.b].is_some()) {
                (true, false) => (e.a, e.b),
                (false, true) => (e.b, e.a),
                _ => continue,
            };
            used[fe.edge] = true;
            let order = tree.len() + 1;
            reach_order[child] = Some(order);
            tree.push((parent, child));
            grow(child, order, &reach_order, &used, &mut heap);
        }
        trees.push(tree);
    }
    Some(trees)
}

/// The capacity threshold search for a fixed `k`: the largest edge
/// capacity `c` (among the distinct capacities present in the view) for
/// which `k` edge-disjoint spanning trees exist, together with the trees.
fn best_threshold(view: &TopologyView, root: usize, k: usize) -> Option<(f64, Vec<Tree>)> {
    let mut caps: Vec<f64> = view.edges().iter().map(|e| e.bandwidth_gib_s).collect();
    caps.sort_by(|x, y| x.partial_cmp(y).expect("finite capacities"));
    caps.dedup();
    // Feasibility is monotone in the threshold (raising it only removes
    // edges), so binary-search the distinct capacities for the highest
    // feasible one.
    peel(view, root, k, caps[0])?;
    let (mut lo, mut hi) = (0usize, caps.len() - 1); // lo always feasible
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if peel(view, root, k, caps[mid]).is_some() {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    peel(view, root, k, caps[lo]).map(|trees| (caps[lo], trees))
}

/// Picks the tree count maximizing the aggregate bottleneck rate
/// `k · c*(k)` (ties go to the smaller `k`, which needs fewer steps).
/// Returns `None` when the view is too small to host even one tree.
pub fn best_k(view: &TopologyView, root: usize) -> Option<usize> {
    let p = view.num_ranks();
    if p < 2 {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for k in 1..=MAX_TREES.min(p) {
        let Some((cap, _)) = best_threshold(view, root, k) else {
            break; // more trees only need more edges
        };
        let rate = k as f64 * cap;
        if best.as_ref().is_none_or(|&(_, b)| rate > b * (1.0 + 1e-9)) {
            best = Some((k, rate));
        }
    }
    best.map(|(k, _)| k)
}

/// Synthesizes the `k`-tree pipelined broadcast schedule for `view`.
///
/// The vector's `p` segments are dealt round-robin to the trees (tree `t`
/// carries segments `{s : s ≡ t (mod k)}`), every tree spans all ranks, and
/// the step packer fills each step with as many ready tree edges as the
/// single-ported constraint admits. The result satisfies the broadcast
/// postcondition in its all-segments form: every rank ends up holding all
/// `p` segments.
pub fn build(view: &TopologyView, root: usize, k: usize) -> Option<Schedule> {
    let p = view.num_ranks();
    if p < 2 || k == 0 || k > p || root >= p {
        return None;
    }
    let (_, trees) = best_threshold(view, root, k)?;
    let seg_sets: Vec<Vec<BlockId>> = (0..k)
        .map(|t| {
            (0..p as u32)
                .filter(|s| *s as usize % k == t)
                .map(BlockId::Segment)
                .collect()
        })
        .collect();

    let name = crate::synth::SynthSpec::ForestColl { k }.name();
    let mut sched = Schedule::new(p, Collective::Broadcast, name, root);
    // delivered[t][r] = step index after which rank r holds tree t's
    // segments (root holds everything before step 0).
    let mut delivered: Vec<Vec<Option<usize>>> = vec![vec![None; p]; k];
    for d in delivered.iter_mut() {
        d[root] = Some(0); // sentinel: usable from step 0 onwards
    }
    let mut next_edge = vec![0usize; k]; // per-tree progress pointer
    let mut scheduled = 0usize;
    let total: usize = trees.iter().map(|t| t.len()).sum();
    let mut step_idx = 0usize;
    while scheduled < total {
        let mut step = Step::new();
        let mut send_busy = vec![false; p];
        let mut recv_busy = vec![false; p];
        // Round-robin over trees, consuming each tree's edges in peel
        // order (parents always precede children) as they become ready.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for t in 0..k {
                let Some(&(parent, child)) = trees[t].get(next_edge[t]) else {
                    continue;
                };
                let ready = delivered[t][parent].is_some_and(|d| d <= step_idx);
                if ready && !send_busy[parent] && !recv_busy[child] {
                    step.push(Message::new(
                        parent,
                        child,
                        seg_sets[t].clone(),
                        TransferKind::Copy,
                        p,
                    ));
                    send_busy[parent] = true;
                    recv_busy[child] = true;
                    delivered[t][child] = Some(step_idx + 1);
                    next_edge[t] += 1;
                    scheduled += 1;
                    progressed = true;
                }
            }
        }
        // At the start of a step no port is busy and every tree's next
        // edge has its parent delivered by an earlier step (peel order),
        // so the step is never empty while work remains.
        assert!(!step.is_empty(), "step packer stalled");
        sched.push_step(step);
        step_idx += 1;
    }
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_schedule;

    #[test]
    fn full_mesh_builds_and_validates() {
        for p in [2usize, 3, 5, 8, 16, 17] {
            let view = TopologyView::full_mesh(p, 10.0, 1.0);
            let k = best_k(&view, 0).unwrap();
            assert!(k >= 1);
            let sched = build(&view, 0, k).unwrap();
            assert_eq!(sched.num_ranks, p);
            validate_schedule(&sched).unwrap_or_else(|e| panic!("p={p} k={k}: {e:?}"));
            sched.validate().unwrap();
        }
    }

    #[test]
    fn full_mesh_prefers_multiple_trees() {
        // On a uniform mesh with plenty of edges, every extra tree adds
        // bandwidth at the same bottleneck, so the search maxes out.
        let view = TopologyView::full_mesh(16, 10.0, 1.0);
        assert_eq!(best_k(&view, 0), Some(MAX_TREES));
    }

    #[test]
    fn two_ranks_single_tree() {
        let view = TopologyView::full_mesh(2, 10.0, 1.0);
        assert_eq!(best_k(&view, 0), Some(1));
        assert!(build(&view, 0, 2).is_none()); // only one edge exists
        let sched = build(&view, 0, 1).unwrap();
        assert_eq!(sched.num_steps(), 1);
    }

    #[test]
    fn clustered_view_builds_from_any_root() {
        let view = TopologyView::clustered(&[4, 4, 4], (100.0, 0.3), (5.0, 25.0)).unwrap();
        for root in 0..view.num_ranks() {
            let k = best_k(&view, root).unwrap();
            let sched = build(&view, root, k).unwrap();
            assert_eq!(sched.root, root);
            validate_schedule(&sched).unwrap_or_else(|e| panic!("root={root}: {e:?}"));
        }
    }

    #[test]
    fn deterministic() {
        let view = TopologyView::clustered(&[8, 8], (50.0, 0.5), (4.0, 10.0)).unwrap();
        let k = best_k(&view, 0).unwrap();
        let a = build(&view, 0, k).unwrap();
        let b = build(&view, 0, k).unwrap();
        assert_eq!(a, b);
    }
}
