//! Topology-aware schedule synthesis.
//!
//! Where the catalog ([`crate::catalog`]) holds hand-built algorithms that
//! exist for every rank count, the synthesizers in this module *derive* a
//! schedule from a concrete topology — so the result only exists for the
//! [`TopologyView`] it was derived from, and is named by the parameterized
//! `synth:` grammar rather than a static enum name:
//!
//! ```text
//! synth:forestcoll:k=2        k edge-disjoint pipelined spanning trees
//! synth:multilevel:tiers=2    hierarchy-aware leader/local trees
//! synth:multilevel:tiers=2+seg8   … pipelined via the segment machinery
//! ```
//!
//! Parameters use the canonical `key=value` decimal spelling (no signs, no
//! leading zeros) so every name round-trips through
//! [`SynthSpec::parse`]/[`SynthSpec::name`] and through
//! [`crate::catalog::split_segments`]. Synthesized schedules satisfy the
//! same invariants as catalog ones — single-ported steps, validator-clean
//! ([`crate::validate::ScheduleValidator`]), executable bit-identically by
//! every executor — which is what lets them flow through the tuner,
//! decision tables and serving layer unchanged.

mod forestcoll;
mod multilevel;
mod view;

pub use forestcoll::MAX_TREES;
pub use view::{TopoEdge, TopologyView};

use crate::catalog::AlgorithmId;
use crate::schedule::{Collective, Schedule};

/// Name prefix reserved for synthesized algorithm identities.
pub const SYNTH_PREFIX: &str = "synth:";

/// Whether `name` is in the synthesized-identity namespace (it may still
/// fail to parse as a [`SynthSpec`]).
pub fn is_synth_name(name: &str) -> bool {
    name.starts_with(SYNTH_PREFIX)
}

/// A parsed synthesized-algorithm identity: the synthesizer family plus
/// its parameters. `parse` and `name` round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthSpec {
    /// ForestColl-style `k` edge-disjoint pipelined spanning trees.
    ForestColl {
        /// Number of edge-disjoint trees streaming in parallel.
        k: usize,
    },
    /// Karonis-style multilevel hierarchy-aware trees.
    Multilevel {
        /// Hierarchy levels used: 1 = flat, 2 = leader/local.
        tiers: usize,
    },
}

/// Parses one canonical `key=value` decimal parameter.
fn parse_param(params: &str, key: &str) -> Option<usize> {
    let val = params.strip_prefix(key)?.strip_prefix('=')?;
    let canonical = !val.is_empty()
        && val.bytes().all(|b| b.is_ascii_digit())
        && (val.len() == 1 || !val.starts_with('0'));
    if !canonical {
        return None;
    }
    val.parse().ok()
}

impl SynthSpec {
    /// Parses a base name (no `+seg` suffix — strip it first with
    /// [`crate::catalog::split_segments`]). Returns `None` for anything
    /// that does not round-trip through [`SynthSpec::name`], including
    /// out-of-range parameters.
    pub fn parse(name: &str) -> Option<Self> {
        let rest = name.strip_prefix(SYNTH_PREFIX)?;
        let (family, params) = rest.split_once(':')?;
        match family {
            "forestcoll" => {
                let k = parse_param(params, "k")?;
                (1..=MAX_TREES)
                    .contains(&k)
                    .then_some(SynthSpec::ForestColl { k })
            }
            "multilevel" => {
                let tiers = parse_param(params, "tiers")?;
                (1..=2)
                    .contains(&tiers)
                    .then_some(SynthSpec::Multilevel { tiers })
            }
            _ => None,
        }
    }

    /// The canonical name this spec goes by everywhere (tables, caches,
    /// schedule `algorithm` fields).
    pub fn name(&self) -> String {
        match self {
            SynthSpec::ForestColl { k } => format!("{SYNTH_PREFIX}forestcoll:k={k}"),
            SynthSpec::Multilevel { tiers } => format!("{SYNTH_PREFIX}multilevel:tiers={tiers}"),
        }
    }

    /// Which collectives this synthesizer can emit.
    pub fn supports(&self, collective: Collective) -> bool {
        match self {
            SynthSpec::ForestColl { .. } => matches!(collective, Collective::Broadcast),
            SynthSpec::Multilevel { .. } => matches!(
                collective,
                Collective::Broadcast | Collective::Reduce | Collective::Allreduce
            ),
        }
    }

    /// Synthesizes the schedule for `collective` on `view`. Returns `None`
    /// when the spec does not support the collective or the view cannot
    /// host it (e.g. fewer edge-disjoint trees than `k` asks for).
    pub fn synthesize(
        &self,
        collective: Collective,
        view: &TopologyView,
        root: usize,
    ) -> Option<Schedule> {
        if !self.supports(collective) {
            return None;
        }
        match *self {
            SynthSpec::ForestColl { k } => forestcoll::build(view, root, k),
            SynthSpec::Multilevel { tiers } => multilevel::build(collective, view, root, tiers),
        }
    }
}

/// Enumerates the synthesized candidates worth tuning for `collective` on
/// `view`: the ForestColl forest with the rate-optimal tree count (found
/// by the binary search over bottleneck capacities, rooted at 0 like every
/// tuned schedule), and the two-tier multilevel trees when the view
/// actually has a hierarchy to exploit.
pub fn synth_algorithms(collective: Collective, view: &TopologyView) -> Vec<AlgorithmId> {
    let mut specs: Vec<SynthSpec> = Vec::new();
    if collective == Collective::Broadcast {
        if let Some(k) = forestcoll::best_k(view, 0) {
            specs.push(SynthSpec::ForestColl { k });
        }
    }
    let groups = view.num_groups();
    if groups > 1 && groups < view.num_ranks() {
        let spec = SynthSpec::Multilevel { tiers: 2 };
        if spec.supports(collective) {
            specs.push(spec);
        }
    }
    specs
        .into_iter()
        .map(|s| AlgorithmId::new(collective, s.name()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_round_trip() {
        for spec in [
            SynthSpec::ForestColl { k: 1 },
            SynthSpec::ForestColl { k: 4 },
            SynthSpec::Multilevel { tiers: 1 },
            SynthSpec::Multilevel { tiers: 2 },
        ] {
            assert_eq!(SynthSpec::parse(&spec.name()), Some(spec));
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for name in [
            "synth:forestcoll",         // no params
            "synth:forestcoll:k=0",     // out of range
            "synth:forestcoll:k=5",     // above MAX_TREES
            "synth:forestcoll:k=02",    // leading zero
            "synth:forestcoll:k=+2",    // sign
            "synth:forestcoll:k=",      // empty
            "synth:forestcoll:j=2",     // wrong key
            "synth:multilevel:tiers=3", // deeper than the view model
            "synth:unknown:k=2",        // unknown family
            "forestcoll:k=2",           // missing prefix
            "synth:",                   // empty family
        ] {
            assert_eq!(SynthSpec::parse(name), None, "{name}");
        }
    }

    #[test]
    fn candidates_key_off_the_hierarchy() {
        let flat = TopologyView::full_mesh(8, 10.0, 1.0);
        let clustered = TopologyView::clustered(&[4, 4], (100.0, 0.3), (5.0, 25.0)).unwrap();
        let flat_bcast = synth_algorithms(Collective::Broadcast, &flat);
        assert_eq!(flat_bcast.len(), 1, "forest only on a flat mesh");
        assert!(flat_bcast[0].name().starts_with("synth:forestcoll"));
        let clustered_bcast = synth_algorithms(Collective::Broadcast, &clustered);
        assert_eq!(clustered_bcast.len(), 2);
        let ar = synth_algorithms(Collective::Allreduce, &clustered);
        assert_eq!(ar.len(), 1);
        assert_eq!(ar[0].name(), "synth:multilevel:tiers=2");
        assert!(ar[0].is_synthesized());
        assert!(!ar[0].is_linear);
        assert!(synth_algorithms(Collective::Alltoall, &clustered).is_empty());
    }

    #[test]
    fn synthesized_ids_carry_valid_metadata_bounds() {
        // The tuner prunes on min_steps/min_rank_bytes without building;
        // check the closed forms hold for the synthesized schedules too.
        let view = TopologyView::clustered(&[4, 4, 4, 4], (100.0, 0.3), (5.0, 25.0)).unwrap();
        let p = view.num_ranks();
        for collective in [Collective::Broadcast, Collective::Allreduce] {
            for id in synth_algorithms(collective, &view) {
                let spec = SynthSpec::parse(id.name()).unwrap();
                let sched = spec.synthesize(collective, &view, 0).unwrap();
                let network_steps = sched
                    .steps
                    .iter()
                    .filter(|s| s.messages.iter().any(|m| !m.is_local()))
                    .count() as u64;
                assert!(id.min_steps(p) <= network_steps, "{}", id.name());
                for n in [1000u64, 65536, (1 << 20) + 13] {
                    assert!(
                        id.min_rank_bytes(n, p) <= sched.max_bytes_sent_by_rank(n),
                        "{} n={n}",
                        id.name()
                    );
                }
            }
        }
    }
}
