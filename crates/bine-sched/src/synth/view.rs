//! The link-capacity/tier view of a topology that schedule synthesis
//! consumes.
//!
//! `bine-net` owns the physical topology models (Dragonfly, fat tree,
//! torus) but depends on this crate, so synthesis cannot consume a
//! `Topology` directly. Instead the synthesizers work on a
//! [`TopologyView`]: an undirected weighted graph over the *ranks of one
//! allocation*, where each edge carries the bottleneck bandwidth and total
//! latency of the route between two ranks plus a locality tier. `bine-net`
//! derives a view from any `(Topology, Allocation)` pair
//! (`bine_net::synth_view`); tests build synthetic views directly.

/// One undirected edge of a [`TopologyView`], with `a < b`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoEdge {
    /// Lower-numbered endpoint rank.
    pub a: usize,
    /// Higher-numbered endpoint rank.
    pub b: usize,
    /// Bottleneck bandwidth of the route between the endpoints, GiB/s.
    pub bandwidth_gib_s: f64,
    /// End-to-end latency of the route, microseconds.
    pub latency_us: f64,
    /// Locality tier: 0 for intra-group routes, 1 for routes that cross a
    /// group (island) boundary. Synthesis prefers lower tiers on ties.
    pub tier: usize,
}

/// An undirected capacity/tier graph over the ranks of one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyView {
    num_ranks: usize,
    group_of: Vec<usize>,
    edges: Vec<TopoEdge>,
}

impl TopologyView {
    /// Builds a view and checks its invariants: every edge has `a < b <
    /// num_ranks` and positive finite bandwidth, no duplicate edges, and
    /// the graph is connected (a disconnected fabric cannot host a
    /// collective at all).
    pub fn new(group_of: Vec<usize>, edges: Vec<TopoEdge>) -> Result<Self, String> {
        let num_ranks = group_of.len();
        if num_ranks == 0 {
            return Err("view has no ranks".into());
        }
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            if e.a >= e.b || e.b >= num_ranks {
                return Err(format!(
                    "edge ({}, {}) is not a < b < {num_ranks}",
                    e.a, e.b
                ));
            }
            if !(e.bandwidth_gib_s > 0.0 && e.bandwidth_gib_s.is_finite()) {
                return Err(format!(
                    "edge ({}, {}) has non-positive bandwidth {}",
                    e.a, e.b, e.bandwidth_gib_s
                ));
            }
            if !(e.latency_us >= 0.0 && e.latency_us.is_finite()) {
                return Err(format!(
                    "edge ({}, {}) has invalid latency {}",
                    e.a, e.b, e.latency_us
                ));
            }
            if !seen.insert((e.a, e.b)) {
                return Err(format!("duplicate edge ({}, {})", e.a, e.b));
            }
        }
        let view = Self {
            num_ranks,
            group_of,
            edges,
        };
        if num_ranks > 1 && !view.is_connected() {
            return Err("view is not connected".into());
        }
        Ok(view)
    }

    /// A uniform full mesh — the view of an ideal (topology-oblivious)
    /// fabric, and the smallest useful synthetic test fixture.
    pub fn full_mesh(num_ranks: usize, bandwidth_gib_s: f64, latency_us: f64) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_ranks {
            for b in a + 1..num_ranks {
                edges.push(TopoEdge {
                    a,
                    b,
                    bandwidth_gib_s,
                    latency_us,
                    tier: 0,
                });
            }
        }
        Self::new(vec![0; num_ranks], edges).expect("full mesh is always valid")
    }

    /// A clustered (islands-of-ranks) view: full mesh at `(local_bw,
    /// local_lat)` inside each group, and `(global_bw, global_lat)` tier-1
    /// edges between every cross-group rank pair — the shape `bine-net`
    /// derives for a fat tree or Dragonfly allocation.
    pub fn clustered(
        group_sizes: &[usize],
        local: (f64, f64),
        global: (f64, f64),
    ) -> Result<Self, String> {
        let mut group_of = Vec::new();
        for (g, &size) in group_sizes.iter().enumerate() {
            if size == 0 {
                return Err(format!("group {g} is empty"));
            }
            group_of.extend(std::iter::repeat_n(g, size));
        }
        let num_ranks = group_of.len();
        let mut edges = Vec::new();
        for a in 0..num_ranks {
            for b in a + 1..num_ranks {
                let (bw, lat, tier) = if group_of[a] == group_of[b] {
                    (local.0, local.1, 0)
                } else {
                    (global.0, global.1, 1)
                };
                edges.push(TopoEdge {
                    a,
                    b,
                    bandwidth_gib_s: bw,
                    latency_us: lat,
                    tier,
                });
            }
        }
        Self::new(group_of, edges)
    }

    /// Number of ranks in the view.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The group (island) a rank belongs to.
    pub fn group_of(&self, rank: usize) -> usize {
        self.group_of[rank]
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        let mut groups: Vec<usize> = self.group_of.clone();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// The undirected edges.
    pub fn edges(&self) -> &[TopoEdge] {
        &self.edges
    }

    /// Edge indices incident to each rank.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_ranks];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.a].push(i);
            adj[e.b].push(i);
        }
        adj
    }

    fn is_connected(&self) -> bool {
        let adj = self.adjacency();
        let mut seen = vec![false; self.num_ranks];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for &ei in &adj[r] {
                let e = &self.edges[ei];
                let other = if e.a == r { e.b } else { e.a };
                if !seen[other] {
                    seen[other] = true;
                    stack.push(other);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_views() {
        assert!(TopologyView::new(vec![], vec![]).is_err());
        // a >= b
        assert!(TopologyView::new(
            vec![0, 0],
            vec![TopoEdge {
                a: 1,
                b: 1,
                bandwidth_gib_s: 1.0,
                latency_us: 1.0,
                tier: 0
            }]
        )
        .is_err());
        // disconnected
        assert!(TopologyView::new(vec![0, 0, 0], vec![]).is_err());
        // zero bandwidth
        assert!(TopologyView::new(
            vec![0, 0],
            vec![TopoEdge {
                a: 0,
                b: 1,
                bandwidth_gib_s: 0.0,
                latency_us: 1.0,
                tier: 0
            }]
        )
        .is_err());
    }

    #[test]
    fn clustered_shape() {
        let v = TopologyView::clustered(&[4, 4, 4], (100.0, 0.3), (5.0, 25.0)).unwrap();
        assert_eq!(v.num_ranks(), 12);
        assert_eq!(v.num_groups(), 3);
        assert_eq!(v.edges().len(), 12 * 11 / 2);
        let cross = v.edges().iter().filter(|e| e.tier == 1).count();
        assert_eq!(cross, 3 * 4 * 4);
        assert_eq!(v.group_of(0), 0);
        assert_eq!(v.group_of(11), 2);
    }
}
