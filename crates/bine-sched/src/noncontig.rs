//! Strategies for transmitting the non-contiguous data blocks that arise in
//! distance-doubling Bine collectives (Sec. 4.3.1, Appendix B).
//!
//! Distance-doubling Bine subtrees are not contiguous in the rank space, so a
//! reduce-scatter (or the scatter phase of a large-vector collective) must
//! either pay per-segment overhead, reorganise the buffer, or change the
//! communication pattern. The paper evaluates four options, all of which are
//! modelled by the schedule generators in this crate.

/// How a schedule deals with non-contiguous block sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NonContigStrategy {
    /// Transmit each block independently. High per-message overhead for
    /// small vectors, but maximal overlap opportunities.
    BlockByBlock,
    /// Permute the buffer up front (block `i` → position `reverse(ν(i))`) so
    /// that every transmission is a single contiguous range. Costs one local
    /// pass over the vector.
    #[default]
    Permute,
    /// Send contiguous ranges *as if* the permutation had been applied and
    /// fix up ownership with one extra communication step at the end (or let
    /// a following collective undo the permutation implicitly).
    Send,
    /// Use a distance-halving rather than distance-doubling butterfly, which
    /// keeps blocks circularly contiguous (at most two linear segments) at
    /// the price of more traffic on global links.
    TwoTransmissions,
}

impl NonContigStrategy {
    /// All four strategies, in the order used by Fig. 14.
    pub const ALL: [NonContigStrategy; 4] = [
        NonContigStrategy::BlockByBlock,
        NonContigStrategy::Permute,
        NonContigStrategy::Send,
        NonContigStrategy::TwoTransmissions,
    ];

    /// One-letter code used in Fig. 14 (B, P, S, T).
    pub fn code(&self) -> char {
        match self {
            NonContigStrategy::BlockByBlock => 'B',
            NonContigStrategy::Permute => 'P',
            NonContigStrategy::Send => 'S',
            NonContigStrategy::TwoTransmissions => 'T',
        }
    }

    /// Full name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            NonContigStrategy::BlockByBlock => "block-by-block",
            NonContigStrategy::Permute => "permute",
            NonContigStrategy::Send => "send",
            NonContigStrategy::TwoTransmissions => "two-transmissions",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let codes: std::collections::HashSet<char> =
            NonContigStrategy::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes.len(), 4);
    }
}
