//! Static schedule validation and survivability analysis.
//!
//! Every consumer of a [`CompiledSchedule`] — the executors in `bine-exec`,
//! the discrete-event simulator in `bine-net` — *assumes* a set of
//! invariants the schedule generators are trusted to uphold: sends only move
//! blocks their sender holds, the dependency structure is acyclic (so
//! nothing can deadlock), every rank ends up holding the collective's
//! postcondition block set, and the step structure respects the
//! single-ported port model. [`ScheduleValidator`] *proves* those invariants
//! for any schedule — regular, segmented (`+segS`) or irregular
//! (v-variants with per-rank [`Counts`](crate::Counts)) — instead of
//! assuming them:
//!
//! * **possession** ([`ScheduleValidator::check_delivery`]) — replays the
//!   schedule symbolically, tracking for every `(rank, block)` the set of
//!   ranks whose contribution the block embodies. A send of a block its
//!   source does not hold is rejected with the same diagnosis the executors
//!   panic with at runtime; a reduce whose payload overlaps the
//!   destination's accumulated contributions (data counted twice) is
//!   rejected as a duplicate contribution; and at the end every rank must
//!   satisfy the collective's postcondition (counts-aware: zero-count
//!   segments of a v-variant are exempt).
//! * **deadlock-freedom** ([`ScheduleValidator::check_acyclic`]) — rebuilds
//!   the exact dependency graph the DES executes (read-after-write edges,
//!   chained writes per block, per-rank FIFO send ports) and runs a
//!   topological check over it.
//! * **well-formedness** ([`ScheduleValidator::check_well_formed`]) — ranks
//!   and block indices in range, non-empty block lists, at most one network
//!   send and one network receive per rank per step (single-ported model),
//!   counts covering every rank.
//! * **byte conservation** ([`ScheduleValidator::check_traffic`]) — the
//!   schedule's own byte accounting must agree with an independently
//!   measured `bine_net::traffic::TrafficReport` (passed as raw totals so
//!   the crates stay layered).
//!
//! On top of the same possession engine sits the **survivability analysis**
//! ([`ScheduleValidator::survivors`]): given a set of crashed ranks it
//! computes which surviving ranks can still satisfy their postcondition,
//! which are stalled, and the set of pending receives that became
//! undeliverable — the stall cut a recovery layer needs to decide what to
//! rebuild. [`ScheduleValidator::completion_with_dropped`] is the
//! generalised form the DES uses to diagnose a stalled simulation: it takes
//! the exact sends the simulator refused to start (rank crashes *and* link
//! cuts) and propagates the cascade.

use std::collections::HashMap;

use crate::compile::CompiledSchedule;
use crate::schedule::{BlockId, Collective, Schedule, TransferKind};

/// A set of ranks, used to track which ranks' contributions a block
/// embodies. Backed by a flat word vector so unions and comparisons are a
/// few machine ops even at hundreds of ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RankSet {
    words: Vec<u64>,
}

impl RankSet {
    fn empty(p: usize) -> Self {
        Self {
            words: vec![0; p.div_ceil(64)],
        }
    }

    fn singleton(p: usize, rank: usize) -> Self {
        let mut s = Self::empty(p);
        s.words[rank / 64] |= 1 << (rank % 64);
        s
    }

    fn full(p: usize) -> Self {
        let mut s = Self::empty(p);
        for r in 0..p {
            s.words[r / 64] |= 1 << (r % 64);
        }
        s
    }

    fn is_full(&self, p: usize) -> bool {
        *self == Self::full(p)
    }

    fn intersects(&self, other: &Self) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn union_in_place(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Lowest rank present in both sets (for diagnostics).
    fn first_common(&self, other: &Self) -> Option<usize> {
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let both = a & b;
            if both != 0 {
                return Some(w * 64 + both.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// A violated schedule invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A send's source or destination rank is outside `0..num_ranks`.
    RankOutOfRange {
        /// Step of the offending send.
        step: usize,
        /// The out-of-range rank.
        rank: usize,
    },
    /// An interned block references a segment or pairwise index outside the
    /// rank range.
    BlockOutOfRange {
        /// The offending block.
        block: BlockId,
    },
    /// A send carries no blocks.
    EmptyMessage {
        /// Step of the offending send.
        step: usize,
        /// Sending rank.
        rank: usize,
    },
    /// A rank issues two network sends in one step (single-ported model).
    MultipleSends {
        /// The offending step.
        step: usize,
        /// The rank sending twice.
        rank: usize,
    },
    /// A rank receives two network messages in one step (single-ported
    /// model).
    MultipleReceives {
        /// The offending step.
        step: usize,
        /// The rank receiving twice.
        rank: usize,
    },
    /// A message was annotated with zero contiguous regions.
    ZeroSegments {
        /// Step of the offending send.
        step: usize,
        /// Sending rank.
        rank: usize,
    },
    /// The irregular counts do not cover exactly `num_ranks` ranks.
    CountsMismatch {
        /// Ranks covered by the counts.
        counts: usize,
        /// Ranks of the schedule.
        ranks: usize,
    },
    /// A rank sends a block it does not hold at that step — the executors
    /// would panic, the DES would stall.
    MissingBlock {
        /// Step of the offending send.
        step: usize,
        /// The sending rank.
        rank: usize,
        /// The block it does not hold.
        block: BlockId,
    },
    /// A reduce payload overlaps the destination's accumulated
    /// contributions: some rank's data would be counted twice.
    DuplicateContribution {
        /// Step of the offending reduce.
        step: usize,
        /// The receiving rank.
        rank: usize,
        /// The block being reduced.
        block: BlockId,
        /// A rank whose contribution would be double-counted.
        duplicated: usize,
    },
    /// A rank ends the schedule without the collective's postcondition
    /// block set.
    Incomplete {
        /// The under-delivered rank.
        rank: usize,
        /// A required block that is missing or only partially combined.
        block: BlockId,
    },
    /// The dependency graph the DES would execute contains a cycle: the
    /// schedule can deadlock.
    CyclicDependency {
        /// Sends whose dependencies resolved before the cycle.
        resolved: usize,
        /// Total sends.
        total: usize,
    },
    /// The schedule's byte accounting disagrees with the measured traffic
    /// report.
    ByteMismatch {
        /// Bytes the schedule says it moves over the network.
        schedule_bytes: u64,
        /// Bytes the traffic report measured.
        reported_bytes: u64,
    },
    /// The schedule's network-message count disagrees with the measured
    /// traffic report.
    MessageCountMismatch {
        /// Network messages in the schedule.
        schedule_messages: u64,
        /// Network messages the traffic report measured.
        reported_messages: u64,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::RankOutOfRange { step, rank } => {
                write!(f, "step {step}: rank {rank} out of range")
            }
            ValidationError::BlockOutOfRange { block } => {
                write!(f, "block {block:?} indexes outside the rank range")
            }
            ValidationError::EmptyMessage { step, rank } => {
                write!(f, "step {step}: rank {rank} sends an empty message")
            }
            ValidationError::MultipleSends { step, rank } => {
                write!(f, "step {step}: rank {rank} sends twice")
            }
            ValidationError::MultipleReceives { step, rank } => {
                write!(f, "step {step}: rank {rank} receives twice")
            }
            ValidationError::ZeroSegments { step, rank } => {
                write!(f, "step {step}: rank {rank} sends zero contiguous regions")
            }
            ValidationError::CountsMismatch { counts, ranks } => {
                write!(
                    f,
                    "counts cover {counts} ranks but the schedule has {ranks}"
                )
            }
            ValidationError::MissingBlock { step, rank, block } => {
                write!(
                    f,
                    "step {step}: rank {rank} sends block {block:?} it does not hold"
                )
            }
            ValidationError::DuplicateContribution {
                step,
                rank,
                block,
                duplicated,
            } => write!(
                f,
                "step {step}: rank {rank} reduces block {block:?} with rank {duplicated}'s \
                 contribution counted twice"
            ),
            ValidationError::Incomplete { rank, block } => write!(
                f,
                "rank {rank} ends without a complete {block:?} (postcondition violated)"
            ),
            ValidationError::CyclicDependency { resolved, total } => write!(
                f,
                "dependency cycle: only {resolved} of {total} sends can ever issue"
            ),
            ValidationError::ByteMismatch {
                schedule_bytes,
                reported_bytes,
            } => write!(
                f,
                "byte conservation violated: schedule accounts {schedule_bytes} network bytes, \
                 traffic report measured {reported_bytes}"
            ),
            ValidationError::MessageCountMismatch {
                schedule_messages,
                reported_messages,
            } => write!(
                f,
                "message conservation violated: schedule has {schedule_messages} network \
                 messages, traffic report measured {reported_messages}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Why a pending receive can never be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The send itself was killed by a fault (crashed endpoint or severed
    /// link) — a root cause of the stall cut.
    Crashed,
    /// The sender is alive but wedged: it waits (transitively) on data that
    /// can never arrive — a cascade effect.
    Blocked,
}

/// A receive that can never complete once the given ranks are dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRecv {
    /// Step of the undeliverable send.
    pub step: usize,
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Root cause vs cascade (the `Crashed` entries are the minimal stall
    /// cut; every `Blocked` entry is downstream of one of them).
    pub reason: StallReason,
}

/// Outcome of a survivability analysis: which ranks can still satisfy the
/// collective's postcondition once some ranks are dead, and which receives
/// became undeliverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionReport {
    /// The ranks declared dead.
    pub dead: Vec<usize>,
    /// Surviving ranks that still end up satisfying their postcondition.
    pub completed: Vec<usize>,
    /// Surviving ranks whose postcondition can no longer be met.
    pub stalled: Vec<usize>,
    /// Every receive that can never be satisfied, in schedule order. The
    /// [`StallReason::Crashed`] entries form the minimal stall cut.
    pub undeliverable: Vec<PendingRecv>,
}

impl CompletionReport {
    /// Whether every surviving rank still satisfies its postcondition.
    pub fn all_survivors_complete(&self) -> bool {
        self.stalled.is_empty()
    }
}

/// A dense remap of surviving ranks onto `0..survivors`, preserving the
/// relative order of the survivors. This is the communicator-shrink step of
/// ULFM-style recovery: a schedule rebuilt at the shrunk size runs over new
/// ranks `0..s`, and the map translates state between the two rank spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankMap {
    to_new: Vec<Option<usize>>,
    to_old: Vec<usize>,
}

impl RankMap {
    /// Builds the dense map for `p` original ranks with `dead` removed
    /// (duplicates in `dead` are tolerated).
    ///
    /// # Panics
    /// Panics if a dead rank is out of range or no rank survives.
    pub fn dense(p: usize, dead: &[usize]) -> Self {
        let mut alive = vec![true; p];
        for &d in dead {
            assert!(d < p, "dead rank {d} out of range for {p} ranks");
            alive[d] = false;
        }
        let mut to_new = vec![None; p];
        let mut to_old = Vec::new();
        for (old, &ok) in alive.iter().enumerate() {
            if ok {
                to_new[old] = Some(to_old.len());
                to_old.push(old);
            }
        }
        assert!(
            !to_old.is_empty(),
            "all {p} ranks dead: nothing to shrink to"
        );
        Self { to_new, to_old }
    }

    /// Number of ranks before the shrink.
    pub fn num_old(&self) -> usize {
        self.to_new.len()
    }

    /// Number of surviving ranks.
    pub fn num_survivors(&self) -> usize {
        self.to_old.len()
    }

    /// The shrunk-communicator rank of `old`, or `None` if it is dead.
    pub fn new_rank(&self, old: usize) -> Option<usize> {
        self.to_new[old]
    }

    /// The original rank behind shrunk rank `new`.
    pub fn old_rank(&self, new: usize) -> usize {
        self.to_old[new]
    }

    /// Whether `old` is dead under this map.
    pub fn is_dead(&self, old: usize) -> bool {
        self.to_new[old].is_none()
    }

    /// The surviving original ranks, ascending (index = new rank).
    pub fn survivors(&self) -> &[usize] {
        &self.to_old
    }
}

/// How a rank's postcondition is expressed in blocks.
enum Post {
    /// No requirement on this rank.
    None,
    /// All listed blocks must be held, fully combined.
    All(Vec<BlockId>),
    /// Either the first set or the second set must be fully combined
    /// (small-vector `Full` form vs large-vector segment form).
    Either(Vec<BlockId>, Vec<BlockId>),
}

/// Static analyzer over one compiled schedule. See the module docs for the
/// invariants; [`ScheduleValidator::validate`] runs them all.
pub struct ScheduleValidator<'a> {
    c: &'a CompiledSchedule,
}

/// Per-rank symbolic possession: interned block index → contribution set.
type Possession = Vec<HashMap<BlockId, RankSet>>;

impl<'a> ScheduleValidator<'a> {
    /// A validator over `compiled`.
    pub fn new(compiled: &'a CompiledSchedule) -> Self {
        Self { c: compiled }
    }

    /// Runs every static invariant: well-formedness, dependency acyclicity
    /// and full delivery. ([`ScheduleValidator::check_traffic`] needs an
    /// externally measured report and is run separately.)
    pub fn validate(&self) -> Result<(), ValidationError> {
        self.check_well_formed()?;
        self.check_acyclic()?;
        self.check_delivery()
    }

    /// Structural invariants: ranks and block indices in range, non-empty
    /// block lists, one network send and one network receive per rank per
    /// step (single-ported model), counts covering every rank.
    pub fn check_well_formed(&self) -> Result<(), ValidationError> {
        let p = self.c.num_ranks;
        if let Some(counts) = self.c.counts() {
            if counts.num_ranks() != p {
                return Err(ValidationError::CountsMismatch {
                    counts: counts.num_ranks(),
                    ranks: p,
                });
            }
        }
        for (_, block) in self.c.blocks().iter() {
            let in_range = match block {
                BlockId::Full => true,
                BlockId::Segment(i) => (i as usize) < p,
                BlockId::Pairwise { origin, dest } => (origin as usize) < p && (dest as usize) < p,
            };
            if !in_range {
                return Err(ValidationError::BlockOutOfRange { block });
            }
        }
        for step in 0..self.c.num_steps() {
            let mut sending = vec![false; p];
            let mut receiving = vec![false; p];
            for i in self.c.step_send_range(step) {
                let s = self.c.send(i);
                let (src, dst) = (s.src as usize, s.dst as usize);
                if src >= p {
                    return Err(ValidationError::RankOutOfRange { step, rank: src });
                }
                if dst >= p {
                    return Err(ValidationError::RankOutOfRange { step, rank: dst });
                }
                if s.num_blocks() == 0 {
                    return Err(ValidationError::EmptyMessage { step, rank: src });
                }
                if s.segments == 0 {
                    return Err(ValidationError::ZeroSegments { step, rank: src });
                }
                if s.is_local() {
                    continue;
                }
                if sending[src] {
                    return Err(ValidationError::MultipleSends { step, rank: src });
                }
                if receiving[dst] {
                    return Err(ValidationError::MultipleReceives { step, rank: dst });
                }
                sending[src] = true;
                receiving[dst] = true;
            }
        }
        Ok(())
    }

    /// Deadlock-freedom: rebuilds the dependency graph the DES executes —
    /// read-after-write edges, chained writes per `(rank, block)`, per-rank
    /// FIFO send ports — and verifies it is acyclic by a topological
    /// elimination (Kahn's algorithm over the compiled CSR).
    pub fn check_acyclic(&self) -> Result<(), ValidationError> {
        let c = self.c;
        let p = c.num_ranks;
        let num_sends = c.num_sends();
        // in-degree per send + forward adjacency, mirroring the DES's static
        // dependency analysis (sends read the pre-step state, writes to the
        // same block chain, one send port per rank).
        let mut indeg = vec![0u32; num_sends];
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); num_sends];
        let mut latest_write: Vec<HashMap<u32, u32>> = vec![HashMap::new(); p];
        let mut last_send_of: Vec<Option<u32>> = vec![None; p];
        for step in 0..c.num_steps() {
            let range = c.step_send_range(step);
            for i in range.clone() {
                let s = c.send(i);
                let mut push_dep = |w: u32| {
                    if !edges[w as usize].contains(&(i as u32)) {
                        edges[w as usize].push(i as u32);
                        indeg[i] += 1;
                    }
                };
                // Read-after-write at the sender.
                for &b in c.block_index_slice(s) {
                    if let Some(&w) = latest_write[s.src as usize].get(&b) {
                        push_dep(w);
                    }
                }
                // FIFO send port at the sender.
                if let Some(prev) = last_send_of[s.src as usize] {
                    push_dep(prev);
                }
                last_send_of[s.src as usize] = Some(i as u32);
            }
            for i in range {
                let s = c.send(i);
                let dst = s.dst as usize;
                // Chained writes at the destination.
                for &b in c.block_index_slice(s) {
                    if let Some(&w) = latest_write[dst].get(&b) {
                        if w != i as u32 && !edges[w as usize].contains(&(i as u32)) {
                            edges[w as usize].push(i as u32);
                            indeg[i] += 1;
                        }
                    }
                }
                for &b in c.block_index_slice(s) {
                    latest_write[dst].insert(b, i as u32);
                }
            }
        }
        let mut queue: Vec<u32> = (0..num_sends as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .collect();
        let mut resolved = 0usize;
        while let Some(i) = queue.pop() {
            resolved += 1;
            for &d in &edges[i as usize] {
                indeg[d as usize] -= 1;
                if indeg[d as usize] == 0 {
                    queue.push(d);
                }
            }
        }
        if resolved != num_sends {
            return Err(ValidationError::CyclicDependency {
                resolved,
                total: num_sends,
            });
        }
        Ok(())
    }

    /// Byte and message conservation against an independently measured
    /// traffic report (`bine_net::traffic::TrafficReport`, passed as its
    /// `total_bytes` and `messages` so the crates stay layered): the
    /// schedule's own accounting at vector size `n` must agree exactly.
    pub fn check_traffic(
        &self,
        n: u64,
        reported_bytes: u64,
        reported_messages: u64,
    ) -> Result<(), ValidationError> {
        let mut bytes = 0u64;
        let mut messages = 0u64;
        for step in 0..self.c.num_steps() {
            for i in self.c.step_send_range(step) {
                let s = self.c.send(i);
                if s.is_local() {
                    continue;
                }
                messages += 1;
                bytes += self
                    .c
                    .block_index_slice(s)
                    .iter()
                    .map(|&b| self.c.block_bytes(self.c.blocks().resolve(b), n))
                    .sum::<u64>();
            }
        }
        if bytes != reported_bytes {
            return Err(ValidationError::ByteMismatch {
                schedule_bytes: bytes,
                reported_bytes,
            });
        }
        if messages != reported_messages {
            return Err(ValidationError::MessageCountMismatch {
                schedule_messages: messages,
                reported_messages,
            });
        }
        Ok(())
    }

    /// Full delivery: replays the schedule symbolically (two-phase per step,
    /// exactly like the executors: sends read the pre-step state, payloads
    /// apply per destination in schedule order) and verifies that every send
    /// is backed by possession, no reduce double-counts a contribution, and
    /// every rank ends holding the collective's postcondition block set.
    pub fn check_delivery(&self) -> Result<(), ValidationError> {
        let c = self.c;
        let p = c.num_ranks;
        let mut held = self.initial_possession();
        let mut staged: Vec<Option<Vec<RankSet>>> = Vec::new();
        for step in 0..c.num_steps() {
            let range = c.step_send_range(step);
            // Gather phase: read the pre-step state.
            staged.clear();
            staged.resize(range.len(), None);
            for i in range.clone() {
                let s = c.send(i);
                let mut payload = Vec::with_capacity(s.num_blocks());
                for &bi in c.block_index_slice(s) {
                    let b = c.blocks().resolve(bi);
                    match held[s.src as usize].get(&b) {
                        Some(set) => payload.push(set.clone()),
                        None => {
                            return Err(ValidationError::MissingBlock {
                                step,
                                rank: s.src as usize,
                                block: b,
                            });
                        }
                    }
                }
                staged[i - range.start] = Some(payload);
            }
            // Apply phase: per destination, in schedule order.
            for (dst, held_dst) in held.iter_mut().enumerate() {
                for &si in c.recvs_to(step, dst) {
                    let s = c.send(si as usize);
                    let payload = staged[si as usize - range.start]
                        .as_ref()
                        .expect("staged in gather phase");
                    for (&bi, set) in c.block_index_slice(s).iter().zip(payload) {
                        let b = c.blocks().resolve(bi);
                        match s.kind {
                            TransferKind::Copy => {
                                held_dst.insert(b, set.clone());
                            }
                            TransferKind::Reduce => match held_dst.get_mut(&b) {
                                Some(acc) => {
                                    if acc.intersects(set) {
                                        let duplicated = acc
                                            .first_common(set)
                                            .expect("intersection is non-empty");
                                        return Err(ValidationError::DuplicateContribution {
                                            step,
                                            rank: dst,
                                            block: b,
                                            duplicated,
                                        });
                                    }
                                    acc.union_in_place(set);
                                }
                                None => {
                                    held_dst.insert(b, set.clone());
                                }
                            },
                        }
                    }
                }
            }
        }
        // Postcondition.
        for rank in 0..p {
            if let Some(block) = self.first_unsatisfied(&held, rank) {
                return Err(ValidationError::Incomplete { rank, block });
            }
        }
        Ok(())
    }

    /// Survivability: which ranks can still satisfy the postcondition when
    /// `dead` ranks crash before the collective starts. A dead rank's sends
    /// and receives never happen; surviving ranks wedge on the first send
    /// they cannot back with data (single send port — everything behind it
    /// is stuck too), and the cascade is propagated to a fixed point.
    pub fn survivors(&self, dead: &[usize]) -> CompletionReport {
        let c = self.c;
        let mut dropped = vec![false; c.num_sends()];
        for step in 0..c.num_steps() {
            for i in c.step_send_range(step) {
                let s = c.send(i);
                if dead.contains(&(s.src as usize)) || dead.contains(&(s.dst as usize)) {
                    dropped[i] = true;
                }
            }
        }
        self.completion(&dropped, dead)
    }

    /// The generalised survivability engine used by the DES stall diagnosis:
    /// `dropped_sends` are the global send indices a faulted run refused to
    /// start (crashed endpoints *and* severed links), `dead` the crashed
    /// ranks. Propagates the wedge cascade over the remaining sends and
    /// reports per-rank completion.
    pub fn completion_with_dropped(
        &self,
        dropped_sends: &[u32],
        dead: &[usize],
    ) -> CompletionReport {
        let mut dropped = vec![false; self.c.num_sends()];
        for &i in dropped_sends {
            dropped[i as usize] = true;
        }
        self.completion(&dropped, dead)
    }

    fn completion(&self, initially_dropped: &[bool], dead: &[usize]) -> CompletionReport {
        let c = self.c;
        let p = c.num_ranks;
        let mut is_dead = vec![false; p];
        for &d in dead {
            if d < p {
                is_dead[d] = true;
            }
        }
        let mut held = self.initial_possession();
        let mut wedged = vec![false; p];
        let mut undeliverable = Vec::new();
        let mut staged: Vec<Option<Vec<RankSet>>> = Vec::new();
        for step in 0..c.num_steps() {
            let range = c.step_send_range(step);
            staged.clear();
            staged.resize(range.len(), None);
            // Gather phase over the pre-step state. The step's sends are
            // sorted by (src, order), so iterating the range visits each
            // rank's queue in FIFO order — a wedge stops everything behind
            // it in the rank's queue.
            for i in range.clone() {
                let s = c.send(i);
                let rank = s.src as usize;
                if initially_dropped[i] {
                    undeliverable.push(PendingRecv {
                        step,
                        src: rank,
                        dst: s.dst as usize,
                        reason: StallReason::Crashed,
                    });
                    continue;
                }
                if is_dead[rank] || is_dead[s.dst as usize] {
                    undeliverable.push(PendingRecv {
                        step,
                        src: rank,
                        dst: s.dst as usize,
                        reason: StallReason::Crashed,
                    });
                    continue;
                }
                if wedged[rank] {
                    undeliverable.push(PendingRecv {
                        step,
                        src: rank,
                        dst: s.dst as usize,
                        reason: StallReason::Blocked,
                    });
                    continue;
                }
                let payload: Option<Vec<RankSet>> = c
                    .block_index_slice(s)
                    .iter()
                    .map(|&bi| held[rank].get(&c.blocks().resolve(bi)).cloned())
                    .collect();
                match payload {
                    Some(payload) => staged[i - range.start] = Some(payload),
                    None => {
                        // The data this send needs never arrived: the
                        // rank waits forever — wedged from here on.
                        wedged[rank] = true;
                        undeliverable.push(PendingRecv {
                            step,
                            src: rank,
                            dst: s.dst as usize,
                            reason: StallReason::Blocked,
                        });
                    }
                }
            }
            // Apply phase: only sends that actually happened.
            for dst in 0..p {
                if is_dead[dst] {
                    continue;
                }
                for &si in c.recvs_to(step, dst) {
                    let Some(payload) = staged[si as usize - range.start].as_ref() else {
                        continue;
                    };
                    let s = c.send(si as usize);
                    for (&bi, set) in c.block_index_slice(s).iter().zip(payload) {
                        let b = c.blocks().resolve(bi);
                        match s.kind {
                            TransferKind::Copy => {
                                held[dst].insert(b, set.clone());
                            }
                            TransferKind::Reduce => match held[dst].get_mut(&b) {
                                Some(acc) => acc.union_in_place(set),
                                None => {
                                    held[dst].insert(b, set.clone());
                                }
                            },
                        }
                    }
                }
            }
        }
        let mut completed = Vec::new();
        let mut stalled = Vec::new();
        for (rank, &rank_dead) in is_dead.iter().enumerate().take(p) {
            if rank_dead {
                continue;
            }
            if self.first_unsatisfied(&held, rank).is_none() {
                completed.push(rank);
            } else {
                stalled.push(rank);
            }
        }
        let mut dead: Vec<usize> = dead.iter().copied().filter(|&d| d < p).collect();
        dead.sort_unstable();
        dead.dedup();
        CompletionReport {
            dead,
            completed,
            stalled,
            undeliverable,
        }
    }

    /// Initial symbolic possession, mirroring `Workload::initial_state` in
    /// `bine-exec`: the block granularities the schedule actually references
    /// are materialised. Reduction collectives start each block as the
    /// holder's own contribution; movement collectives start blocks fully
    /// formed at their origin.
    fn initial_possession(&self) -> Possession {
        let c = self.c;
        let p = c.num_ranks;
        let uses_full = c.blocks().index_of(&BlockId::Full).is_some();
        let uses_segments = c
            .blocks()
            .iter()
            .any(|(_, b)| matches!(b, BlockId::Segment(_)));
        let mut held: Possession = vec![HashMap::new(); p];
        let give = |held: &mut Possession, rank: usize, block: BlockId, set: RankSet| {
            held[rank].insert(block, set);
        };
        match c.collective {
            Collective::Broadcast => {
                if uses_full || !uses_segments {
                    give(&mut held, c.root, BlockId::Full, RankSet::full(p));
                }
                if uses_segments {
                    for i in 0..p {
                        give(
                            &mut held,
                            c.root,
                            BlockId::Segment(i as u32),
                            RankSet::full(p),
                        );
                    }
                }
            }
            Collective::Reduce | Collective::Allreduce => {
                for r in 0..p {
                    if uses_full || !uses_segments {
                        give(&mut held, r, BlockId::Full, RankSet::singleton(p, r));
                    }
                    if uses_segments {
                        for i in 0..p {
                            give(
                                &mut held,
                                r,
                                BlockId::Segment(i as u32),
                                RankSet::singleton(p, r),
                            );
                        }
                    }
                }
            }
            Collective::ReduceScatter => {
                for r in 0..p {
                    for i in 0..p {
                        give(
                            &mut held,
                            r,
                            BlockId::Segment(i as u32),
                            RankSet::singleton(p, r),
                        );
                    }
                }
            }
            Collective::Gather | Collective::Allgather => {
                for r in 0..p {
                    give(&mut held, r, BlockId::Segment(r as u32), RankSet::full(p));
                }
            }
            Collective::Scatter => {
                for i in 0..p {
                    give(
                        &mut held,
                        c.root,
                        BlockId::Segment(i as u32),
                        RankSet::full(p),
                    );
                }
            }
            Collective::Alltoall => {
                for r in 0..p {
                    for d in 0..p {
                        give(
                            &mut held,
                            r,
                            BlockId::Pairwise {
                                origin: r as u32,
                                dest: d as u32,
                            },
                            RankSet::full(p),
                        );
                    }
                }
            }
        }
        held
    }

    /// The first postcondition block `rank` fails to hold fully combined, or
    /// `None` if the rank's postcondition is satisfied.
    fn first_unsatisfied(&self, held: &Possession, rank: usize) -> Option<BlockId> {
        let check_all = |blocks: &[BlockId]| -> Option<BlockId> {
            blocks
                .iter()
                .find(|b| !self.block_complete(held, rank, **b))
                .copied()
        };
        match self.postcondition(rank) {
            Post::None => None,
            Post::All(blocks) => check_all(&blocks),
            Post::Either(a, b) => {
                if check_all(&a).is_none() {
                    None
                } else {
                    check_all(&b)
                }
            }
        }
    }

    fn block_complete(&self, held: &Possession, rank: usize, block: BlockId) -> bool {
        held[rank]
            .get(&block)
            .is_some_and(|set| set.is_full(self.c.num_ranks))
    }

    /// The collective's postcondition for `rank`, counts-aware: zero-count
    /// segments of a v-variant carry no data and are exempt.
    fn postcondition(&self, rank: usize) -> Post {
        let c = self.c;
        let p = c.num_ranks;
        let seg_required = |i: usize| -> bool {
            match c.counts() {
                Some(counts) => counts.count(i) > 0,
                None => true,
            }
        };
        let all_segments = || -> Vec<BlockId> {
            (0..p)
                .filter(|&i| seg_required(i))
                .map(|i| BlockId::Segment(i as u32))
                .collect()
        };
        match c.collective {
            Collective::Broadcast => Post::Either(vec![BlockId::Full], all_segments()),
            Collective::Reduce => {
                if rank == c.root {
                    Post::Either(vec![BlockId::Full], all_segments())
                } else {
                    Post::None
                }
            }
            Collective::Allreduce => Post::Either(vec![BlockId::Full], all_segments()),
            Collective::ReduceScatter => {
                if seg_required(rank) {
                    Post::All(vec![BlockId::Segment(rank as u32)])
                } else {
                    Post::None
                }
            }
            Collective::Gather => {
                if rank == c.root {
                    Post::All(all_segments())
                } else {
                    Post::None
                }
            }
            Collective::Scatter => {
                if seg_required(rank) {
                    Post::All(vec![BlockId::Segment(rank as u32)])
                } else {
                    Post::None
                }
            }
            Collective::Allgather => Post::All(all_segments()),
            Collective::Alltoall => Post::All(
                (0..p)
                    .map(|o| BlockId::Pairwise {
                        origin: o as u32,
                        dest: rank as u32,
                    })
                    .collect(),
            ),
        }
    }
}

/// Compiles and fully validates `schedule` (well-formedness, acyclicity,
/// delivery) — the one-call form for schedule-producer tests.
pub fn validate_schedule(schedule: &Schedule) -> Result<(), ValidationError> {
    let compiled = schedule.compile();
    ScheduleValidator::new(&compiled).validate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::build;
    use crate::collectives::{allreduce, AllreduceAlg};
    use crate::schedule::{Counts, Message, Step};

    #[test]
    fn every_catalog_algorithm_validates() {
        for collective in Collective::ALL {
            for alg in crate::catalog::algorithms(collective) {
                let sched = build(collective, alg.name(), 16, 3)
                    .unwrap_or_else(|| panic!("{}", alg.name()));
                assert_eq!(
                    validate_schedule(&sched),
                    Ok(()),
                    "{collective:?} {}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn segmented_and_irregular_schedules_validate() {
        let seg = build(Collective::Allreduce, "bine-large+seg4", 16, 0).unwrap();
        assert_eq!(validate_schedule(&seg), Ok(()));
        use crate::collectives::{build_irregular, SizeDist};
        for dist in SizeDist::ALL {
            let counts = dist.counts(8, 0);
            let sched =
                build_irregular(Collective::Gather, "traff", 8, 0, &counts).expect("gatherv");
            assert_eq!(validate_schedule(&sched), Ok(()), "gatherv {}", dist.name());
        }
    }

    #[test]
    fn dropping_a_send_is_rejected_as_incomplete() {
        let mut sched = allreduce(8, AllreduceAlg::RecursiveDoubling);
        let last = sched.steps.len() - 1;
        sched.steps[last].messages.remove(0);
        match validate_schedule(&sched) {
            Err(ValidationError::Incomplete { .. }) => {}
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn swapping_steps_is_rejected() {
        // Swapping the first and last step of a recursive-doubling allreduce
        // makes a rank reduce the same contribution twice (or ship a block it
        // does not yet hold, for algorithms with data-dependent sends).
        let mut sched = allreduce(8, AllreduceAlg::BineLarge);
        let last = sched.steps.len() - 1;
        sched.steps.swap(0, last);
        match validate_schedule(&sched) {
            Err(
                ValidationError::MissingBlock { .. }
                | ValidationError::DuplicateContribution { .. }
                | ValidationError::Incomplete { .. },
            ) => {}
            other => panic!("expected a delivery failure, got {other:?}"),
        }
    }

    #[test]
    fn double_send_is_rejected_as_ill_formed() {
        let mut sched = Schedule::new(4, Collective::Broadcast, "test", 0);
        let mut step = Step::new();
        step.push(Message::new(
            0,
            1,
            vec![BlockId::Full],
            TransferKind::Copy,
            4,
        ));
        step.push(Message::new(
            0,
            2,
            vec![BlockId::Full],
            TransferKind::Copy,
            4,
        ));
        sched.push_step(step);
        let compiled = sched.compile();
        match ScheduleValidator::new(&compiled).check_well_formed() {
            Err(ValidationError::MultipleSends { step: 0, rank: 0 }) => {}
            other => panic!("expected MultipleSends, got {other:?}"),
        }
    }

    #[test]
    fn traffic_conservation_catches_corrupted_counts() {
        // A count-aware tree moves segment `i` across depth(i) edges, so
        // per-segment hop counts differ and a corrupted count cannot cancel
        // out of the total the way it can in a ring (where every segment
        // travels the same p − 1 hops).
        use crate::collectives::{gatherv, IrregularAlg, SizeDist};
        let p = 8;
        let counts = SizeDist::Linear.counts(p, 0);
        let sched = gatherv(p, 0, counts.clone(), IrregularAlg::Traff);
        let n = 1 << 16;
        let true_bytes = sched.total_network_bytes(n);
        let true_msgs = sched.messages().filter(|(_, m)| !m.is_local()).count() as u64;
        let compiled = sched.compile();
        assert_eq!(
            ScheduleValidator::new(&compiled).check_traffic(n, true_bytes, true_msgs),
            Ok(())
        );
        // Corrupt one count: the schedule's accounting shifts away from the
        // measured report.
        let mut corrupted = counts.per_rank().to_vec();
        corrupted[1] *= 3;
        let bad = sched.clone().with_counts(Counts::new(corrupted));
        let bad_compiled = bad.compile();
        match ScheduleValidator::new(&bad_compiled).check_traffic(n, true_bytes, true_msgs) {
            Err(ValidationError::ByteMismatch { .. }) => {}
            other => panic!("expected ByteMismatch, got {other:?}"),
        }
    }

    #[test]
    fn catalog_schedules_are_acyclic_and_byte_conserving() {
        for collective in Collective::ALL {
            let sched = build(
                collective,
                crate::catalog::bine_default(collective, false),
                16,
                0,
            )
            .expect("bine default");
            let compiled = sched.compile();
            let v = ScheduleValidator::new(&compiled);
            assert_eq!(v.check_acyclic(), Ok(()));
            let n = 1 << 20;
            assert_eq!(
                v.check_traffic(
                    n,
                    sched.total_network_bytes(n),
                    sched.messages().filter(|(_, m)| !m.is_local()).count() as u64
                ),
                Ok(()),
                "{collective:?}"
            );
        }
    }

    #[test]
    fn survivors_reports_the_stall_cut_of_a_tree_broadcast() {
        // Killing an interior rank of a broadcast tree stalls its whole
        // subtree; the root's side keeps completing.
        let sched = build(Collective::Broadcast, "binomial-dd", 16, 0).unwrap();
        let compiled = sched.compile();
        let v = ScheduleValidator::new(&compiled);
        let healthy = v.survivors(&[]);
        assert_eq!(healthy.completed.len(), 16);
        assert!(healthy.undeliverable.is_empty());

        let report = v.survivors(&[1]);
        assert_eq!(report.dead, vec![1]);
        assert!(!report.stalled.is_empty(), "rank 1's subtree must stall");
        assert!(report
            .undeliverable
            .iter()
            .any(|r| r.reason == StallReason::Crashed));
        // Every stalled rank is a survivor that never got the root's data.
        for &r in &report.stalled {
            assert_ne!(r, 1);
        }
        // Completed + stalled partition the survivors.
        assert_eq!(report.completed.len() + report.stalled.len(), 15);
    }

    #[test]
    fn survivors_of_an_allreduce_stall_but_the_diagnosis_is_exact() {
        let sched = allreduce(8, AllreduceAlg::RecursiveDoubling);
        let compiled = sched.compile();
        let v = ScheduleValidator::new(&compiled);
        let report = v.survivors(&[3]);
        // A crashed rank's contribution can never reach anyone: every
        // survivor stalls.
        assert_eq!(report.completed, Vec::<usize>::new());
        assert_eq!(report.stalled.len(), 7);
        assert!(report.all_survivors_complete() == report.stalled.is_empty());
    }

    #[test]
    fn rank_map_is_a_dense_order_preserving_bijection() {
        let map = RankMap::dense(8, &[2, 5]);
        assert_eq!(map.num_old(), 8);
        assert_eq!(map.num_survivors(), 6);
        assert_eq!(map.survivors(), &[0, 1, 3, 4, 6, 7]);
        assert_eq!(map.new_rank(3), Some(2));
        assert_eq!(map.new_rank(2), None);
        assert!(map.is_dead(5));
        for new in 0..map.num_survivors() {
            assert_eq!(map.new_rank(map.old_rank(new)), Some(new));
        }
    }

    #[test]
    #[should_panic(expected = "nothing to shrink to")]
    fn rank_map_rejects_killing_everyone() {
        let _ = RankMap::dense(2, &[0, 1]);
    }
}
