//! Property tests for the schedule validator.
//!
//! Two directions, both fuzzed over the whole catalog:
//!
//! * **soundness on real schedules** — every schedule the catalog builds
//!   (all collectives × algorithms × segmentations × irregular
//!   distributions, power-of-two and non-power-of-two rank counts where
//!   the builder supports them) passes [`bine_sched::ScheduleValidator`]
//!   end to end. The validator is the gate the CI sweep runs over the
//!   committed catalog; a false positive here would block good schedules.
//! * **sensitivity to seeded corruption** — schedules mutated in ways
//!   real bugs produce (a dropped send, reordered tree steps, a count
//!   vector that does not match the rank count) are rejected, and with
//!   the *right* diagnosis, not just any error.
//!
//! Builders panic (rather than return `None`) on unsupported rank counts,
//! so every probe runs under `catch_unwind` — a skipped configuration is
//! one the catalog genuinely cannot build, never a silenced failure.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bine_sched::{
    algorithms, build, build_irregular, irregular_algorithms, validate_schedule, Collective,
    Schedule, SizeDist, ValidationError, IRREGULAR_COLLECTIVES,
};
use proptest::prelude::*;

fn any_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(Collective::ALL.to_vec())
}

/// Builds `name` at `p` ranks, treating a builder panic (unsupported rank
/// count) the same as `None`.
fn try_build(collective: Collective, name: &str, p: usize, root: usize) -> Option<Schedule> {
    catch_unwind(AssertUnwindSafe(|| build(collective, name, p, root)))
        .ok()
        .flatten()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Soundness: whatever the catalog builds — any collective, any
    // algorithm, any segmentation, any rank count (power of two or not),
    // any root — the validator accepts it.
    #[test]
    fn every_catalog_schedule_validates(
        collective in any_collective(),
        alg_seed in 0usize..100,
        p in 2usize..=33,
        chunks in prop::sample::select(vec![1usize, 2, 4]),
        root_seed in 0usize..1000,
    ) {
        let algs = algorithms(collective);
        let alg = algs[alg_seed % algs.len()].clone();
        let Some(sched) = try_build(collective, alg.name(), p, root_seed % p) else {
            return Ok(());
        };
        let sched = sched.segmented(chunks);
        prop_assert!(
            validate_schedule(&sched).is_ok(),
            "{}/{} p={p} chunks={chunks}: {:?}",
            collective.name(), alg.name(), validate_schedule(&sched)
        );
    }

    // Soundness over the irregular (v-variant) catalog, including the
    // one-heavy distribution whose zero-count segments are the classic
    // edge case for delivery accounting.
    #[test]
    fn every_irregular_schedule_validates(
        coll_seed in 0usize..4,
        alg_seed in 0usize..100,
        dist in prop::sample::select(SizeDist::ALL.to_vec()),
        p in 2usize..=17,
        chunks in prop::sample::select(vec![1usize, 2]),
    ) {
        let collective = IRREGULAR_COLLECTIVES[coll_seed % IRREGULAR_COLLECTIVES.len()];
        let algs = irregular_algorithms(collective);
        let alg = algs[alg_seed % algs.len()];
        let counts = dist.counts(p, 0);
        let name = if chunks > 1 {
            format!("{}+seg{chunks}", alg.name())
        } else {
            alg.name().to_string()
        };
        let built = catch_unwind(AssertUnwindSafe(|| {
            build_irregular(collective, &name, p, 0, &counts)
        }))
        .ok()
        .flatten();
        let Some(sched) = built else { return Ok(()) };
        prop_assert!(
            validate_schedule(&sched).is_ok(),
            "{}v/{name} p={p} dist={}: {:?}",
            collective.name(), dist.name(), validate_schedule(&sched)
        );
    }

    // Sensitivity: dropping any network send from a schedule in which
    // every send is load-bearing must be caught, and as a *delivery*
    // failure — a later sender missing its payload, or a rank ending
    // without its postcondition — never accepted and never misreported as
    // a structural problem.
    #[test]
    fn dropping_a_send_is_diagnosed_as_a_delivery_failure(
        pick_seed in 0usize..6,
        s in 1u32..=5,
        victim_seed in 0usize..1000,
    ) {
        let picks = [
            (Collective::Allreduce, "recursive-doubling"),
            (Collective::Allreduce, "bine-large"),
            (Collective::Allreduce, "bine-small"),
            (Collective::Broadcast, "binomial-dd"),
            (Collective::Broadcast, "bine-tree"),
            (Collective::Allgather, "ring"),
        ];
        let (collective, name) = picks[pick_seed % picks.len()];
        let p = 1usize << s;
        let Some(mut sched) = try_build(collective, name, p, 0) else {
            return Ok(());
        };
        let total: usize = sched.steps.iter().map(|st| st.messages.len()).sum();
        let mut victim = victim_seed % total;
        for step in &mut sched.steps {
            if victim < step.messages.len() {
                step.messages.remove(victim);
                break;
            }
            victim -= step.messages.len();
        }
        let err = validate_schedule(&sched);
        prop_assert!(
            matches!(
                err,
                Err(ValidationError::MissingBlock { .. })
                    | Err(ValidationError::Incomplete { .. })
            ),
            "{}/{name} p={p}: dropped send #{} gave {err:?}",
            collective.name(), victim_seed % total
        );
    }

    // Sensitivity: reversing the steps of a dissemination tree makes
    // ranks forward data before they have received it — the validator
    // must pin that on the sender's missing block.
    #[test]
    fn reversed_tree_steps_are_diagnosed_as_missing_blocks(
        name in prop::sample::select(vec!["binomial-dd", "bine-tree"]),
        s in 2u32..=5,
        root_seed in 0usize..1000,
    ) {
        let p = 1usize << s;
        let Some(mut sched) = try_build(Collective::Broadcast, name, p, root_seed % p) else {
            return Ok(());
        };
        sched.steps.reverse();
        let err = validate_schedule(&sched);
        prop_assert!(
            matches!(err, Err(ValidationError::MissingBlock { .. })),
            "broadcast/{name} p={p}: reversed steps gave {err:?}"
        );
    }

    // Sensitivity: a count vector covering the wrong number of ranks is a
    // well-formedness failure with the exact mismatch in the diagnosis.
    #[test]
    fn corrupted_irregular_counts_are_diagnosed_as_a_mismatch(
        coll_seed in 0usize..4,
        s in 1u32..=4,
        shrink in 1usize..=2,
    ) {
        let collective = IRREGULAR_COLLECTIVES[coll_seed % IRREGULAR_COLLECTIVES.len()];
        let p = 1usize << s;
        if p <= shrink {
            return Ok(());
        }
        let counts = SizeDist::Linear.counts(p, 0);
        let algs = irregular_algorithms(collective);
        let built = algs.iter().find_map(|alg| {
            catch_unwind(AssertUnwindSafe(|| {
                build_irregular(collective, alg.name(), p, 0, &counts)
            }))
            .ok()
            .flatten()
        });
        let Some(mut sched) = built else { return Ok(()) };
        sched.counts = Some(SizeDist::Linear.counts(p - shrink, 0));
        let err = validate_schedule(&sched);
        prop_assert!(
            matches!(
                err,
                Err(ValidationError::CountsMismatch { counts, ranks })
                    if counts == p - shrink && ranks == p
            ),
            "{}v p={p}: shrunk counts gave {err:?}", collective.name()
        );
    }
}
