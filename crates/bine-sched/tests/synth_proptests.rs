//! Property tests for the schedule synthesizers.
//!
//! The catalog's generators are closed-form and hand-verified; the
//! synthesizers (`synth:forestcoll:*`, `synth:multilevel:*`) derive their
//! schedules from whatever [`TopologyView`] the serving layer hands them,
//! so their correctness obligation is over *random* views: any group
//! structure (power-of-two and non-power-of-two rank counts), any
//! bandwidth hierarchy, any root. Everything a synthesizer emits must
//! pass the same [`bine_sched::ScheduleValidator`] the committed catalog
//! is swept through, and synthesis must be a pure function of
//! `(spec, view, root)` — the tuner commits `synth:` names to the tuning
//! tables, and serving rebuilds from the name alone, so a
//! non-deterministic synthesizer would serve a schedule the tuner never
//! measured.

use bine_sched::{synth_algorithms, validate_schedule, Collective, SynthSpec, TopologyView};
use proptest::prelude::*;

/// The collectives the synthesizers support (tree-shaped dataflow).
fn any_synth_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(vec![
        Collective::Broadcast,
        Collective::Reduce,
        Collective::Allreduce,
    ])
}

/// Island sizes of a random clustered view: 1–4 islands of 1–6 ranks each
/// (total 2–24, power-of-two and not — the extra leading rank guarantees
/// at least two ranks overall).
fn any_group_sizes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..7, 1..5).prop_map(|mut groups| {
        groups[0] += 1;
        groups
    })
}

/// Assembles the view: local/global bandwidths drawn independently —
/// sometimes flat, sometimes a steep hierarchy, sometimes inverted (a
/// "hierarchy" whose islands are the slow part).
fn view_from(groups: &[usize], local_seed: usize, global_seed: usize) -> TopologyView {
    let local = [12.5f64, 100.0, 400.0][local_seed % 3];
    let global = [2.5f64, 25.0, 100.0][global_seed % 3];
    TopologyView::clustered(groups, (local, 0.3), (global, 25.0)).expect("non-empty groups build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Soundness: every candidate the provider enumerates for a view
    // synthesizes at every root and passes the validator — no dropped
    // data, no deadlock, no miscounted bytes, on any fabric shape.
    #[test]
    fn synthesized_schedules_validate_on_random_views(
        groups in any_group_sizes(),
        local_seed in 0usize..3,
        global_seed in 0usize..3,
        collective in any_synth_collective(),
        root_seed in 0usize..1000,
    ) {
        let view = view_from(&groups, local_seed, global_seed);
        let p = view.num_ranks();
        let root = root_seed % p;
        for id in synth_algorithms(collective, &view) {
            let spec = SynthSpec::parse(id.name()).expect("provider emits canonical names");
            // ForestColl's rate-optimal tree count is root-dependent: a k
            // enumerated for root 0 may admit no k edge-disjoint spanning
            // trees from another root. The provider returns None there and
            // serving falls back; only the tuned root must always build.
            let Some(sched) = spec.synthesize(collective, &view, root) else {
                prop_assert!(
                    root != 0,
                    "{}/{:?} p={}: unbuildable at the tuned root", id.name(), collective, p
                );
                continue;
            };
            prop_assert_eq!(sched.num_ranks, p);
            if let Err(e) = validate_schedule(&sched) {
                return Err(TestCaseError::fail(format!(
                    "{}/{:?} p={p} root={root}: {e}",
                    id.name(), collective
                )));
            }
        }
    }

    // Purity: the committed tuning tables store only the `synth:` name;
    // serving must rebuild the exact schedule the tuner measured.
    #[test]
    fn synthesis_is_a_pure_function_of_spec_view_and_root(
        groups in any_group_sizes(),
        local_seed in 0usize..3,
        global_seed in 0usize..3,
        collective in any_synth_collective(),
        root_seed in 0usize..1000,
    ) {
        let view = view_from(&groups, local_seed, global_seed);
        let root = root_seed % view.num_ranks();
        for id in synth_algorithms(collective, &view) {
            let spec = SynthSpec::parse(id.name()).unwrap();
            let a = spec.synthesize(collective, &view, root);
            let b = spec.synthesize(collective, &view, root);
            prop_assert_eq!(a, b, "{} is not deterministic", id.name());
        }
    }
}
