//! Pins the allocation-freedom guarantees of the hot selection paths:
//! after load, `Selector::choose` must be pure binary searches, and the
//! adaptive `ServiceSelector`'s warm pick + observe loop must stay heap-free
//! too — so a hot collective-dispatch path can consult either per call
//! without allocator pressure. Measured with a counting wrapper around the
//! system allocator (tests are their own crates, so the library's
//! `#![forbid(unsafe_code)]` still holds for `bine-tune` itself).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bine_net::ObservedTiming;
use bine_sched::Collective;
use bine_tune::{
    AdaptPolicy, DecisionTable, Entry, Reevaluator, ScoreModel, Selector, ServiceSelector,
};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn table() -> DecisionTable {
    let mut entries = Vec::new();
    for &nodes in &[4usize, 16, 64, 256] {
        for &bytes in &[32u64, 4096, 1 << 20, 64 << 20] {
            entries.push(Entry {
                collective: Collective::Allreduce,
                dist: None,
                nodes,
                vector_bytes: bytes,
                pick: if bytes >= 1 << 20 {
                    "bine-large+seg8".into()
                } else {
                    "recursive-doubling".into()
                },
                model: ScoreModel::Sync,
                time_us: 1.0,
            });
        }
    }
    DecisionTable {
        system: "Testbox".into(),
        entries,
    }
}

#[test]
fn choose_never_allocates_after_load() {
    let selector = Selector::from_table(&table());
    // Warm nothing: choose must be allocation-free from the first call.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0usize;
    for nodes in [1usize, 4, 10, 64, 300, 10_000] {
        for bytes in [1u64, 32, 5000, 1 << 20, 1 << 30] {
            let t = selector
                .choose(Collective::Allreduce, nodes, bytes)
                .expect("allreduce is tuned");
            checksum += t.segments + t.algorithm.len();
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "Selector::choose allocated {} times over 30 lookups",
        after - before
    );
    assert!(checksum > 0);
}

/// The adaptive serving loop's steady state — a warm `compiled_at` hit
/// followed by an `observe_at` that records into the per-entry histogram
/// without diverging — must be allocation-free: the histogram is a fixed
/// array, the cache hit is an `Arc` clone, and the adapt entry is found
/// (not inserted) once warm. Divergence is parked out of reach so the
/// re-evaluation path (which does allocate, off the warm path) never runs.
#[test]
fn warm_service_pick_and_observe_never_allocate() {
    let service = ServiceSelector::from_tables(&[table()]).with_adaptation(
        AdaptPolicy {
            min_samples: 1,
            divergence: 1e12,
            recheck_interval: 16,
        },
        Reevaluator::new(Arc::new(|_, _, _| Vec::new()), Arc::new(|_, _, _, _| None)),
    );
    // Warm up: the first pick compiles and caches the schedule, the first
    // observation inserts the entry's histogram. Both allocate — once.
    let compiled = service
        .compiled_at(0, Collective::Allreduce, 16, 1 << 20)
        .expect("compiled");
    service.observe_at(
        0,
        Collective::Allreduce,
        16,
        1 << 20,
        ObservedTiming::execution(1.0),
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut steps = 0usize;
    for _ in 0..100 {
        let t = service
            .choose_at(0, Collective::Allreduce, 16, 1 << 20)
            .expect("pick");
        steps += t.segments;
        let warm = service
            .compiled_at(0, Collective::Allreduce, 16, 1 << 20)
            .expect("warm hit");
        assert!(Arc::ptr_eq(&warm, &compiled), "same cached schedule");
        service.observe_at(
            0,
            Collective::Allreduce,
            16,
            1 << 20,
            ObservedTiming::execution(1.0),
        );
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm pick + observe allocated {} times over 100 rounds",
        after - before
    );
    assert!(steps > 0);
}
