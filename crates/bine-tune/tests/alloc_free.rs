//! Pins the `Selector::choose` allocation-freedom guarantee: after load,
//! breakpoint lookups must be pure binary searches — no heap traffic — so a
//! hot collective-dispatch path can consult the selector per call without
//! allocator pressure. Measured with a counting wrapper around the system
//! allocator (tests are their own crates, so the library's
//! `#![forbid(unsafe_code)]` still holds for `bine-tune` itself).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bine_sched::Collective;
use bine_tune::{DecisionTable, Entry, ScoreModel, Selector};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn table() -> DecisionTable {
    let mut entries = Vec::new();
    for &nodes in &[4usize, 16, 64, 256] {
        for &bytes in &[32u64, 4096, 1 << 20, 64 << 20] {
            entries.push(Entry {
                collective: Collective::Allreduce,
                nodes,
                vector_bytes: bytes,
                pick: if bytes >= 1 << 20 {
                    "bine-large+seg8".into()
                } else {
                    "recursive-doubling".into()
                },
                model: ScoreModel::Sync,
                time_us: 1.0,
            });
        }
    }
    DecisionTable {
        system: "Testbox".into(),
        entries,
    }
}

#[test]
fn choose_never_allocates_after_load() {
    let selector = Selector::from_table(&table());
    // Warm nothing: choose must be allocation-free from the first call.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0usize;
    for nodes in [1usize, 4, 10, 64, 300, 10_000] {
        for bytes in [1u64, 32, 5000, 1 << 20, 1 << 30] {
            let t = selector
                .choose(Collective::Allreduce, nodes, bytes)
                .expect("allreduce is tuned");
            checksum += t.segments + t.algorithm.len();
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "Selector::choose allocated {} times over 30 lookups",
        after - before
    );
    assert!(checksum > 0);
}
